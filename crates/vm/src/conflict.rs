//! Scatter conflict policies — implementations of the ELS condition.
//!
//! FOL's correctness argument (§3.2 of the paper) rests on a single hardware
//! property, the **exclusive label storing (ELS) condition**: when a vector
//! indirect store writes several elements to the same address, the stored
//! value is exactly one of the written values — *which* one is arbitrary, but
//! it is never an amalgam of bits from several writes. Pipelined vector
//! processors guarantee this for stores of at most one machine word.
//!
//! Real machines differ in which write wins (the S-3800's `VIST` makes no
//! promise; its `VSTX` guarantees element order). To demonstrate — and
//! property-test — that FOL is correct under *any* ELS-conforming hardware,
//! the simulator makes the winner a pluggable [`ConflictPolicy`].

use crate::fault::hash3;

/// Which of several conflicting scatter writes to one address survives.
///
/// Every variant except [`ConflictPolicy::BrokenAmalgam`] satisfies the ELS
/// condition.
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub enum ConflictPolicy {
    /// The element with the lowest vector index wins (as if later writes to a
    /// busy address were suppressed).
    FirstWins,
    /// The element with the highest vector index wins (element order, the
    /// `VSTX` guarantee; also what a naive sequential loop would produce).
    #[default]
    LastWins,
    /// A pseudo-random writer wins, deterministically derived from the given
    /// seed and the machine's scatter sequence number. This models hardware
    /// with parallel pipes whose interleaving is unspecified; running a test
    /// across many seeds explores many interleavings.
    Arbitrary(u64),
    /// An **adversarial but ELS-conforming** winner: exactly one competing
    /// write lands (so every FOL guarantee that rests on ELS must still
    /// hold), but the winner is chosen to do maximum damage to FOL\*'s
    /// detection step — conflicted addresses prefer a writer that *lost* in
    /// the previous scatter, minimizing the set of elements whose writes
    /// survive every scatter of an iteration and so provoking empty
    /// detection sets (the paper's §3.3 livelock). FOL1 is provably immune
    /// (its round sizes are winner-independent, Theorem 5); FOL\* is not,
    /// which is exactly what the livelock countermeasures must absorb.
    ///
    /// The choice is a pure function of the seed, the scatter sequence
    /// number, the address and the cross-scatter memory held by
    /// [`AdversaryState`], so adversarial runs replay exactly.
    Adversarial(u64),
    /// **Violates the ELS condition** — conflicting writes store the XOR of
    /// all competing values, an "amalgam" no single element wrote. This
    /// models broken hardware (e.g. sub-word stores torn across pipes) and
    /// exists solely so tests can demonstrate that FOL's guarantees really
    /// do rest on ELS. Never use it in an algorithm. For seeded, partial and
    /// multi-mode ELS violations use a [`crate::fault::FaultPlan`] instead.
    BrokenAmalgam,
}

/// Cross-scatter memory of [`ConflictPolicy::Adversarial`]: which element
/// positions won the previous scatter. The [`crate::Machine`] owns one and
/// threads it through consecutive scatters; FOL\*'s per-iteration scatters
/// share one live ordering, so "position" identifies the same tuple across
/// the `L` scatters of an iteration.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct AdversaryState {
    recent_winners: std::collections::HashSet<usize>,
}

impl AdversaryState {
    /// A fresh adversary with no memory.
    pub fn new() -> Self {
        Self::default()
    }

    /// Forgets everything (e.g. when the machine's policy is replaced).
    pub fn reset(&mut self) {
        self.recent_winners.clear();
    }
}

impl ConflictPolicy {
    /// True when the policy satisfies the ELS condition (every variant
    /// except [`ConflictPolicy::BrokenAmalgam`]). The lane-health machinery
    /// consults this to distinguish *policy-wide* ELS violations — which no
    /// per-lane quarantine can cure — from localizable lane faults.
    pub fn satisfies_els(&self) -> bool {
        !matches!(self, ConflictPolicy::BrokenAmalgam)
    }

    /// Resolves the winners of one scatter.
    ///
    /// `indices[i]` is the target address of element `i`; returns for each
    /// *position in the scatter* whether that element's write survived, and
    /// performs the surviving writes through `write`. `sequence` is the
    /// machine's scatter counter, folded into the RNG seed so that repeated
    /// scatters under `Arbitrary` see different interleavings while the whole
    /// run stays reproducible.
    ///
    /// The implementation is O(n) via a sort-free two-pass scheme: winners
    /// are chosen per distinct address, then applied.
    pub fn resolve<F>(&self, indices: &[usize], sequence: u64, write: F) -> Vec<bool>
    where
        F: FnMut(usize, usize), // (element position, address)
    {
        self.resolve_with_state(indices, sequence, None, write)
    }

    /// Like [`ConflictPolicy::resolve`], but threads the adversary's
    /// cross-scatter memory. Only [`ConflictPolicy::Adversarial`] consults
    /// (and updates) the state; passing `None` makes the adversary
    /// memoryless, which is still deterministic and ELS-conforming.
    pub fn resolve_with_state<F>(
        &self,
        indices: &[usize],
        sequence: u64,
        state: Option<&mut AdversaryState>,
        mut write: F,
    ) -> Vec<bool>
    where
        F: FnMut(usize, usize), // (element position, address)
    {
        let n = indices.len();
        let mut winner_of: std::collections::HashMap<usize, usize> =
            std::collections::HashMap::with_capacity(n);
        match self {
            ConflictPolicy::FirstWins => {
                for (pos, &addr) in indices.iter().enumerate() {
                    winner_of.entry(addr).or_insert(pos);
                }
            }
            ConflictPolicy::LastWins => {
                for (pos, &addr) in indices.iter().enumerate() {
                    winner_of.insert(addr, pos);
                }
            }
            ConflictPolicy::BrokenAmalgam => {
                panic!("BrokenAmalgam is value-dependent and resolved by the Machine")
            }
            ConflictPolicy::Arbitrary(seed) => {
                // Pick one winner per address with an avalanche hash of
                // (seed, sequence, address) so every competing element is
                // equally likely, independent of vector order, and the whole
                // run replays exactly.
                let mut writers: std::collections::HashMap<usize, Vec<usize>> =
                    std::collections::HashMap::with_capacity(n);
                for (pos, &addr) in indices.iter().enumerate() {
                    writers.entry(addr).or_default().push(pos);
                }
                for (&addr, cands) in &writers {
                    let pick = hash3(*seed, sequence, addr as u64) as usize % cands.len();
                    winner_of.insert(addr, cands[pick]);
                }
            }
            ConflictPolicy::Adversarial(seed) => {
                let empty = std::collections::HashSet::new();
                let recent = state.as_ref().map_or(&empty, |s| &s.recent_winners);
                // Writers per address, in element order.
                let mut writers: std::collections::HashMap<usize, Vec<usize>> =
                    std::collections::HashMap::with_capacity(n);
                for (pos, &addr) in indices.iter().enumerate() {
                    writers.entry(addr).or_default().push(pos);
                }
                for (&addr, cands) in &writers {
                    // Prefer a writer that lost the previous scatter: a
                    // previous winner losing now can no longer survive the
                    // whole iteration, shrinking FOL*'s detection set.
                    let losers: Vec<usize> = cands
                        .iter()
                        .copied()
                        .filter(|p| !recent.contains(p))
                        .collect();
                    let pool = if losers.is_empty() {
                        cands.as_slice()
                    } else {
                        &losers
                    };
                    let pick = hash3(*seed, sequence, addr as u64) as usize % pool.len();
                    winner_of.insert(addr, pool[pick]);
                }
                if let Some(s) = state {
                    s.recent_winners = winner_of.values().copied().collect();
                }
            }
        }
        let mut survived = vec![false; n];
        for (&addr, &pos) in &winner_of {
            survived[pos] = true;
            write(pos, addr);
        }
        survived
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(policy: &ConflictPolicy, indices: &[usize]) -> (Vec<bool>, Vec<(usize, usize)>) {
        let mut writes = Vec::new();
        let survived = policy.resolve(indices, 7, |pos, addr| writes.push((pos, addr)));
        writes.sort_unstable();
        (survived, writes)
    }

    #[test]
    fn first_wins_keeps_earliest() {
        let (survived, writes) = run(&ConflictPolicy::FirstWins, &[5, 2, 5]);
        assert_eq!(survived, vec![true, true, false]);
        assert_eq!(writes, vec![(0, 5), (1, 2)]);
    }

    #[test]
    fn last_wins_keeps_latest() {
        let (survived, writes) = run(&ConflictPolicy::LastWins, &[5, 2, 5]);
        assert_eq!(survived, vec![false, true, true]);
        assert_eq!(writes, vec![(1, 2), (2, 5)]);
    }

    #[test]
    fn arbitrary_is_deterministic_per_seed_and_sequence() {
        let p = ConflictPolicy::Arbitrary(42);
        let a = p.resolve(&[1, 1, 1, 2], 3, |_, _| {});
        let b = p.resolve(&[1, 1, 1, 2], 3, |_, _| {});
        assert_eq!(a, b);
    }

    #[test]
    fn arbitrary_varies_with_sequence() {
        let p = ConflictPolicy::Arbitrary(42);
        let indices = vec![0usize; 32];
        let winners: std::collections::HashSet<usize> = (0..64)
            .map(|seq| {
                p.resolve(&indices, seq, |_, _| {})
                    .iter()
                    .position(|&s| s)
                    .expect("exactly one winner")
            })
            .collect();
        assert!(
            winners.len() > 1,
            "different sequences should pick different winners"
        );
    }

    #[test]
    fn els_exactly_one_winner_per_address() {
        for policy in [
            ConflictPolicy::FirstWins,
            ConflictPolicy::LastWins,
            ConflictPolicy::Arbitrary(1),
            ConflictPolicy::Arbitrary(99),
            ConflictPolicy::Adversarial(1),
            ConflictPolicy::Adversarial(99),
        ] {
            let indices = [3, 3, 3, 1, 1, 0];
            let survived = policy.resolve(&indices, 0, |_, _| {});
            for addr in [0usize, 1, 3] {
                let winners = indices
                    .iter()
                    .enumerate()
                    .filter(|&(pos, &a)| a == addr && survived[pos])
                    .count();
                assert_eq!(winners, 1, "{policy:?}: address {addr}");
            }
        }
    }

    #[test]
    fn adversarial_is_deterministic_and_els_conforming() {
        let p = ConflictPolicy::Adversarial(17);
        let indices = [4usize, 4, 4, 2, 1, 2];
        let a = p.resolve(&indices, 5, |_, _| {});
        let b = p.resolve(&indices, 5, |_, _| {});
        assert_eq!(a, b, "same seed + sequence must replay");
        // Exactly one winner per distinct address.
        assert_eq!(a.iter().filter(|&&s| s).count(), 3);
    }

    #[test]
    fn adversarial_prefers_previous_losers() {
        // Two elements fight over one address across two consecutive
        // scatters (the shape of a FOL* iteration with L = 2): whoever wins
        // the first scatter must lose the second, so no element wins both —
        // the empty-detection livelock the policy exists to provoke.
        let p = ConflictPolicy::Adversarial(3);
        let mut state = AdversaryState::new();
        for seq in 0..16u64 {
            let first = p.resolve_with_state(&[0, 0], 2 * seq, Some(&mut state), |_, _| {});
            let second = p.resolve_with_state(&[0, 0], 2 * seq + 1, Some(&mut state), |_, _| {});
            let w1 = first.iter().position(|&s| s).expect("one winner");
            let w2 = second.iter().position(|&s| s).expect("one winner");
            assert_ne!(
                w1, w2,
                "seq {seq}: previous winner must lose the next scatter"
            );
        }
    }

    #[test]
    fn adversary_state_reset_forgets() {
        let p = ConflictPolicy::Adversarial(3);
        let mut state = AdversaryState::new();
        let _ = p.resolve_with_state(&[0, 0], 0, Some(&mut state), |_, _| {});
        state.reset();
        assert_eq!(state, AdversaryState::default());
    }

    #[test]
    fn no_conflicts_means_everyone_survives() {
        for policy in [
            ConflictPolicy::FirstWins,
            ConflictPolicy::LastWins,
            ConflictPolicy::Arbitrary(5),
            ConflictPolicy::Adversarial(5),
        ] {
            let (survived, writes) = run(&policy, &[4, 2, 9]);
            assert_eq!(survived, vec![true, true, true]);
            assert_eq!(writes.len(), 3);
        }
    }

    #[test]
    #[should_panic(expected = "resolved by the Machine")]
    fn broken_amalgam_cannot_resolve_per_element() {
        let _ = ConflictPolicy::BrokenAmalgam.resolve(&[0, 0], 0, |_, _| {});
    }

    #[test]
    fn els_classification_matches_the_docs() {
        assert!(ConflictPolicy::FirstWins.satisfies_els());
        assert!(ConflictPolicy::LastWins.satisfies_els());
        assert!(ConflictPolicy::Arbitrary(1).satisfies_els());
        assert!(ConflictPolicy::Adversarial(1).satisfies_els());
        assert!(!ConflictPolicy::BrokenAmalgam.satisfies_els());
    }

    #[test]
    fn empty_scatter_is_fine() {
        let survived = ConflictPolicy::LastWins.resolve(&[], 0, |_, _| unreachable!());
        assert!(survived.is_empty());
    }
}
