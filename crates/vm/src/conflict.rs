//! Scatter conflict policies — implementations of the ELS condition.
//!
//! FOL's correctness argument (§3.2 of the paper) rests on a single hardware
//! property, the **exclusive label storing (ELS) condition**: when a vector
//! indirect store writes several elements to the same address, the stored
//! value is exactly one of the written values — *which* one is arbitrary, but
//! it is never an amalgam of bits from several writes. Pipelined vector
//! processors guarantee this for stores of at most one machine word.
//!
//! Real machines differ in which write wins (the S-3800's `VIST` makes no
//! promise; its `VSTX` guarantees element order). To demonstrate — and
//! property-test — that FOL is correct under *any* ELS-conforming hardware,
//! the simulator makes the winner a pluggable [`ConflictPolicy`].

use rand::rngs::SmallRng;
use rand::{RngExt, SeedableRng};

/// Which of several conflicting scatter writes to one address survives.
///
/// Every variant except [`ConflictPolicy::BrokenAmalgam`] satisfies the ELS
/// condition.
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub enum ConflictPolicy {
    /// The element with the lowest vector index wins (as if later writes to a
    /// busy address were suppressed).
    FirstWins,
    /// The element with the highest vector index wins (element order, the
    /// `VSTX` guarantee; also what a naive sequential loop would produce).
    #[default]
    LastWins,
    /// A pseudo-random writer wins, deterministically derived from the given
    /// seed and the machine's scatter sequence number. This models hardware
    /// with parallel pipes whose interleaving is unspecified; running a test
    /// across many seeds explores many interleavings.
    Arbitrary(u64),
    /// **Violates the ELS condition** — conflicting writes store the XOR of
    /// all competing values, an "amalgam" no single element wrote. This
    /// models broken hardware (e.g. sub-word stores torn across pipes) and
    /// exists solely so tests can demonstrate that FOL's guarantees really
    /// do rest on ELS. Never use it in an algorithm.
    BrokenAmalgam,
}

impl ConflictPolicy {
    /// Resolves the winners of one scatter.
    ///
    /// `indices[i]` is the target address of element `i`; returns for each
    /// *position in the scatter* whether that element's write survived, and
    /// performs the surviving writes through `write`. `sequence` is the
    /// machine's scatter counter, folded into the RNG seed so that repeated
    /// scatters under `Arbitrary` see different interleavings while the whole
    /// run stays reproducible.
    ///
    /// The implementation is O(n) via a sort-free two-pass scheme: winners
    /// are chosen per distinct address, then applied.
    pub fn resolve<F>(&self, indices: &[usize], sequence: u64, mut write: F) -> Vec<bool>
    where
        F: FnMut(usize, usize), // (element position, address)
    {
        let n = indices.len();
        let mut winner_of: std::collections::HashMap<usize, usize> =
            std::collections::HashMap::with_capacity(n);
        match self {
            ConflictPolicy::FirstWins => {
                for (pos, &addr) in indices.iter().enumerate() {
                    winner_of.entry(addr).or_insert(pos);
                }
            }
            ConflictPolicy::LastWins => {
                for (pos, &addr) in indices.iter().enumerate() {
                    winner_of.insert(addr, pos);
                }
            }
            ConflictPolicy::BrokenAmalgam => {
                panic!("BrokenAmalgam is value-dependent and resolved by the Machine")
            }
            ConflictPolicy::Arbitrary(seed) => {
                // Reservoir-sample one winner per address so every competing
                // element is equally likely, independent of vector order.
                let mut rng = SmallRng::seed_from_u64(seed ^ sequence.wrapping_mul(0x9E3779B97F4A7C15));
                let mut seen: std::collections::HashMap<usize, u32> =
                    std::collections::HashMap::with_capacity(n);
                for (pos, &addr) in indices.iter().enumerate() {
                    let k = seen.entry(addr).or_insert(0);
                    *k += 1;
                    if *k == 1 || rng.random_range(0..*k) == 0 {
                        winner_of.insert(addr, pos);
                    }
                }
            }
        }
        let mut survived = vec![false; n];
        for (&addr, &pos) in &winner_of {
            survived[pos] = true;
            write(pos, addr);
        }
        survived
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(policy: &ConflictPolicy, indices: &[usize]) -> (Vec<bool>, Vec<(usize, usize)>) {
        let mut writes = Vec::new();
        let survived = policy.resolve(indices, 7, |pos, addr| writes.push((pos, addr)));
        writes.sort_unstable();
        (survived, writes)
    }

    #[test]
    fn first_wins_keeps_earliest() {
        let (survived, writes) = run(&ConflictPolicy::FirstWins, &[5, 2, 5]);
        assert_eq!(survived, vec![true, true, false]);
        assert_eq!(writes, vec![(0, 5), (1, 2)]);
    }

    #[test]
    fn last_wins_keeps_latest() {
        let (survived, writes) = run(&ConflictPolicy::LastWins, &[5, 2, 5]);
        assert_eq!(survived, vec![false, true, true]);
        assert_eq!(writes, vec![(1, 2), (2, 5)]);
    }

    #[test]
    fn arbitrary_is_deterministic_per_seed_and_sequence() {
        let p = ConflictPolicy::Arbitrary(42);
        let a = p.resolve(&[1, 1, 1, 2], 3, |_, _| {});
        let b = p.resolve(&[1, 1, 1, 2], 3, |_, _| {});
        assert_eq!(a, b);
    }

    #[test]
    fn arbitrary_varies_with_sequence() {
        let p = ConflictPolicy::Arbitrary(42);
        let indices = vec![0usize; 32];
        let winners: std::collections::HashSet<usize> = (0..64)
            .map(|seq| {
                p.resolve(&indices, seq, |_, _| {})
                    .iter()
                    .position(|&s| s)
                    .expect("exactly one winner")
            })
            .collect();
        assert!(winners.len() > 1, "different sequences should pick different winners");
    }

    #[test]
    fn els_exactly_one_winner_per_address() {
        for policy in [
            ConflictPolicy::FirstWins,
            ConflictPolicy::LastWins,
            ConflictPolicy::Arbitrary(1),
            ConflictPolicy::Arbitrary(99),
        ] {
            let indices = [3, 3, 3, 1, 1, 0];
            let survived = policy.resolve(&indices, 0, |_, _| {});
            for addr in [0usize, 1, 3] {
                let winners = indices
                    .iter()
                    .enumerate()
                    .filter(|&(pos, &a)| a == addr && survived[pos])
                    .count();
                assert_eq!(winners, 1, "{policy:?}: address {addr}");
            }
        }
    }

    #[test]
    fn no_conflicts_means_everyone_survives() {
        for policy in
            [ConflictPolicy::FirstWins, ConflictPolicy::LastWins, ConflictPolicy::Arbitrary(5)]
        {
            let (survived, writes) = run(&policy, &[4, 2, 9]);
            assert_eq!(survived, vec![true, true, true]);
            assert_eq!(writes.len(), 3);
        }
    }

    #[test]
    #[should_panic(expected = "resolved by the Machine")]
    fn broken_amalgam_cannot_resolve_per_element() {
        let _ = ConflictPolicy::BrokenAmalgam.resolve(&[0, 0], 0, |_, _| {});
    }

    #[test]
    fn empty_scatter_is_fine() {
        let survived = ConflictPolicy::LastWins.resolve(&[], 0, |_, _| unreachable!());
        assert!(survived.is_empty());
    }
}
