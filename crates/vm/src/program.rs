//! Stored vector programs: a small IR, assembler and interpreter.
//!
//! The paper presents FOL as a *vectorization* — a program transformation
//! whose output is a sequence of vector instructions with scalar control
//! around them. [`Machine`]'s method interface is convenient for writing
//! algorithms by hand, but a first-class program representation lets the
//! suite treat vectorized code as *data*: inspect it, disassemble it, count
//! its instructions, and execute it with bounded fuel. The FOL1 kernel is
//! expressed as a [`Program`] in this module's tests and checked against
//! the hand-written implementation.
//!
//! The IR is deliberately small: virtual vector registers `v0…`, mask
//! registers `m0…`, scalar registers `s0…`, a region table bound at run
//! time, structured operands, and two control instructions (conditional and
//! unconditional jumps to resolved labels).

use crate::machine::{AluOp, CmpOp, Machine};
use crate::memory::Region;
use crate::vreg::{Mask, VReg, Word};
use std::fmt;

/// A virtual vector register.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct V(pub u8);

/// A virtual mask register.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct M(pub u8);

/// A virtual scalar register.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct S(pub u8);

/// A region slot, bound to a concrete [`Region`] at execution time.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct R(pub u8);

/// Scalar operand: immediate or register.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Operand {
    /// A literal word.
    Imm(Word),
    /// A scalar register's current value.
    Reg(S),
}

impl From<Word> for Operand {
    fn from(w: Word) -> Self {
        Operand::Imm(w)
    }
}

impl From<S> for Operand {
    fn from(s: S) -> Self {
        Operand::Reg(s)
    }
}

/// One IR instruction.
#[derive(Clone, PartialEq, Eq, Debug)]
#[allow(missing_docs)] // mirrors Machine's documented methods
pub enum Inst {
    /// `dst := [start, start+1, …]` of length `n`.
    Iota {
        dst: V,
        start: Operand,
        n: Operand,
    },
    /// `dst := n` copies of `value`.
    Splat {
        dst: V,
        value: Operand,
        n: Operand,
    },
    Gather {
        dst: V,
        region: R,
        idx: V,
    },
    Scatter {
        region: R,
        idx: V,
        val: V,
    },
    AluS {
        dst: V,
        op: AluOp,
        a: V,
        b: Operand,
    },
    Alu {
        dst: V,
        op: AluOp,
        a: V,
        b: V,
    },
    Cmp {
        dst: M,
        op: CmpOp,
        a: V,
        b: V,
    },
    CmpS {
        dst: M,
        op: CmpOp,
        a: V,
        b: Operand,
    },
    MaskNot {
        dst: M,
        src: M,
    },
    Compress {
        dst: V,
        src: V,
        mask: M,
    },
    /// `dst := popcount(mask)` (a reduction into a scalar register).
    CountTrue {
        dst: S,
        mask: M,
    },
    /// `dst := length of v`.
    Length {
        dst: S,
        src: V,
    },
    /// Scalar arithmetic on registers/immediates.
    SAlu {
        dst: S,
        op: AluOp,
        a: Operand,
        b: Operand,
    },
    /// Jump to `target` when the scalar operand is zero.
    JumpIfZero {
        cond: Operand,
        target: usize,
    },
    /// Unconditional jump.
    Jump {
        target: usize,
    },
    /// Stop execution.
    Halt,
}

impl fmt::Display for Inst {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fn op(o: &Operand) -> String {
            match o {
                Operand::Imm(w) => format!("{w}"),
                Operand::Reg(S(i)) => format!("s{i}"),
            }
        }
        match self {
            Inst::Iota { dst, start, n } => write!(f, "v{} = iota {}, {}", dst.0, op(start), op(n)),
            Inst::Splat { dst, value, n } => {
                write!(f, "v{} = splat {}, {}", dst.0, op(value), op(n))
            }
            Inst::Gather { dst, region, idx } => {
                write!(f, "v{} = gather r{}[v{}]", dst.0, region.0, idx.0)
            }
            Inst::Scatter { region, idx, val } => {
                write!(f, "scatter r{}[v{}] = v{}", region.0, idx.0, val.0)
            }
            Inst::AluS { dst, op: o, a, b } => {
                write!(f, "v{} = {:?}(v{}, {})", dst.0, o, a.0, op(b))
            }
            Inst::Alu { dst, op: o, a, b } => write!(f, "v{} = {:?}(v{}, v{})", dst.0, o, a.0, b.0),
            Inst::Cmp { dst, op: o, a, b } => write!(f, "m{} = {:?}(v{}, v{})", dst.0, o, a.0, b.0),
            Inst::CmpS { dst, op: o, a, b } => {
                write!(f, "m{} = {:?}(v{}, {})", dst.0, o, a.0, op(b))
            }
            Inst::MaskNot { dst, src } => write!(f, "m{} = not m{}", dst.0, src.0),
            Inst::Compress { dst, src, mask } => {
                write!(f, "v{} = compress v{} where m{}", dst.0, src.0, mask.0)
            }
            Inst::CountTrue { dst, mask } => write!(f, "s{} = count_true m{}", dst.0, mask.0),
            Inst::Length { dst, src } => write!(f, "s{} = length v{}", dst.0, src.0),
            Inst::SAlu { dst, op: o, a, b } => {
                write!(f, "s{} = {:?}({}, {})", dst.0, o, op(a), op(b))
            }
            Inst::JumpIfZero { cond, target } => write!(f, "jz {}, @{target}", op(cond)),
            Inst::Jump { target } => write!(f, "jmp @{target}"),
            Inst::Halt => write!(f, "halt"),
        }
    }
}

/// A stored program: straight-line instructions with resolved jump targets.
#[derive(Clone, Default, PartialEq, Eq)]
pub struct Program {
    insts: Vec<Inst>,
}

impl Program {
    /// An empty program.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends an instruction, returning its index (usable as a jump
    /// target for backward jumps).
    pub fn push(&mut self, inst: Inst) -> usize {
        self.insts.push(inst);
        self.insts.len() - 1
    }

    /// Index the *next* pushed instruction will get — a forward label.
    pub fn here(&self) -> usize {
        self.insts.len()
    }

    /// Patches a previously pushed jump to point at `target`.
    ///
    /// # Panics
    /// Panics when `at` is not a jump instruction.
    pub fn patch_jump(&mut self, at: usize, target: usize) {
        match &mut self.insts[at] {
            Inst::Jump { target: t } | Inst::JumpIfZero { target: t, .. } => *t = target,
            other => panic!("instruction {at} is not a jump: {other}"),
        }
    }

    /// The instructions.
    pub fn insts(&self) -> &[Inst] {
        &self.insts
    }

    /// Number of instructions.
    pub fn len(&self) -> usize {
        self.insts.len()
    }

    /// True when the program has no instructions.
    pub fn is_empty(&self) -> bool {
        self.insts.is_empty()
    }
}

impl fmt::Display for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, inst) in self.insts.iter().enumerate() {
            writeln!(f, "{i:4}: {inst}")?;
        }
        Ok(())
    }
}

/// Why execution stopped.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Stop {
    /// A `Halt` instruction was reached (or the program ran off its end).
    Halted,
    /// The fuel budget was exhausted — likely a livelock or runaway loop.
    OutOfFuel,
}

/// Execution state after a run: final register files.
#[derive(Clone, Debug, Default)]
pub struct Registers {
    /// Vector registers (index = register number).
    pub v: Vec<VReg>,
    /// Mask registers.
    pub m: Vec<Mask>,
    /// Scalar registers.
    pub s: Vec<Word>,
}

impl Registers {
    fn v_mut(&mut self, V(i): V) -> &mut VReg {
        let i = i as usize;
        if self.v.len() <= i {
            self.v.resize(i + 1, VReg::empty());
        }
        &mut self.v[i]
    }

    fn m_mut(&mut self, M(i): M) -> &mut Mask {
        let i = i as usize;
        if self.m.len() <= i {
            self.m.resize(i + 1, Mask::default());
        }
        &mut self.m[i]
    }

    fn s_mut(&mut self, S(i): S) -> &mut Word {
        let i = i as usize;
        if self.s.len() <= i {
            self.s.resize(i + 1, 0);
        }
        &mut self.s[i]
    }

    /// Reads vector register `r` (empty if never written).
    pub fn v(&self, V(i): V) -> &VReg {
        static EMPTY: VReg = VReg::empty_const();
        self.v.get(i as usize).unwrap_or(&EMPTY)
    }

    /// Reads scalar register `r` (0 if never written).
    pub fn s(&self, S(i): S) -> Word {
        self.s.get(i as usize).copied().unwrap_or(0)
    }

    fn operand(&self, o: Operand) -> Word {
        match o {
            Operand::Imm(w) => w,
            Operand::Reg(r) => self.s(r),
        }
    }
}

/// Executes `program` on `machine` with the region table `regions` and
/// initial registers `regs` (registers the program reads before writing
/// should be seeded there). `fuel` bounds the number of executed
/// instructions.
pub fn execute(
    machine: &mut Machine,
    program: &Program,
    regions: &[Region],
    mut regs: Registers,
    fuel: usize,
) -> (Registers, Stop) {
    let mut pc = 0usize;
    let mut remaining = fuel;
    let region = |R(i): R| -> Region { regions[i as usize] };

    while pc < program.insts.len() {
        if remaining == 0 {
            return (regs, Stop::OutOfFuel);
        }
        remaining -= 1;
        let inst = &program.insts[pc];
        pc += 1;
        match inst {
            Inst::Iota { dst, start, n } => {
                let start = regs.operand(*start);
                let n = regs.operand(*n) as usize;
                *regs.v_mut(*dst) = machine.iota(start, n);
            }
            Inst::Splat { dst, value, n } => {
                let value = regs.operand(*value);
                let n = regs.operand(*n) as usize;
                *regs.v_mut(*dst) = machine.vsplat(value, n);
            }
            Inst::Gather {
                dst,
                region: r,
                idx,
            } => {
                let out = machine.gather(region(*r), regs.v(*idx));
                *regs.v_mut(*dst) = out;
            }
            Inst::Scatter {
                region: r,
                idx,
                val,
            } => {
                let idx = regs.v(*idx).clone();
                let val = regs.v(*val).clone();
                machine.scatter(region(*r), &idx, &val);
            }
            Inst::AluS { dst, op, a, b } => {
                let b = regs.operand(*b);
                let out = machine.valu_s(*op, regs.v(*a), b);
                *regs.v_mut(*dst) = out;
            }
            Inst::Alu { dst, op, a, b } => {
                let a = regs.v(*a).clone();
                let b = regs.v(*b).clone();
                *regs.v_mut(*dst) = machine.valu(*op, &a, &b);
            }
            Inst::Cmp { dst, op, a, b } => {
                let a = regs.v(*a).clone();
                let b = regs.v(*b).clone();
                *regs.m_mut(*dst) = machine.vcmp(*op, &a, &b);
            }
            Inst::CmpS { dst, op, a, b } => {
                let b = regs.operand(*b);
                let out = machine.vcmp_s(*op, regs.v(*a), b);
                *regs.m_mut(*dst) = out;
            }
            Inst::MaskNot { dst, src } => {
                let src = regs.m[src.0 as usize].clone();
                *regs.m_mut(*dst) = machine.mask_not(&src);
            }
            Inst::Compress { dst, src, mask } => {
                let src = regs.v(*src).clone();
                let mask = regs.m[mask.0 as usize].clone();
                *regs.v_mut(*dst) = machine.compress(&src, &mask);
            }
            Inst::CountTrue { dst, mask } => {
                let mask = regs.m[mask.0 as usize].clone();
                let n = machine.count_true(&mask);
                *regs.s_mut(*dst) = n as Word;
            }
            Inst::Length { dst, src } => {
                let n = regs.v(*src).len();
                *regs.s_mut(*dst) = n as Word;
            }
            Inst::SAlu { dst, op, a, b } => {
                let a = regs.operand(*a);
                let b = regs.operand(*b);
                machine.s_alu(1);
                *regs.s_mut(*dst) = apply_salu(*op, a, b);
            }
            Inst::JumpIfZero { cond, target } => {
                machine.s_branch(1);
                if regs.operand(*cond) == 0 {
                    pc = *target;
                }
            }
            Inst::Jump { target } => {
                machine.s_branch(1);
                pc = *target;
            }
            Inst::Halt => return (regs, Stop::Halted),
        }
    }
    (regs, Stop::Halted)
}

fn apply_salu(op: AluOp, a: Word, b: Word) -> Word {
    // Scalar ALU shares the vector unit's semantics, including the
    // divide-by-zero trap (which aborts an interpreted program).
    op.apply(a, b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::CostModel;

    /// FOL1 as a stored program. Register plan:
    ///   v0 = live index vector V      v1 = labels        v2 = positions
    ///   v3 = gathered labels          v4 = round stamp
    ///   m0 = survivors                m1 = rest
    ///   s0 = live count               s1 = round counter
    /// Regions: r0 = work area, r1 = round_of output (one slot per original
    /// position, receives the round index).
    fn fol1_program() -> Program {
        let mut p = Program::new();
        let loop_top = p.here();
        // if live count == 0 -> halt (patched below)
        let jz = p.push(Inst::JumpIfZero {
            cond: S(0).into(),
            target: usize::MAX,
        });
        // Step 1: write labels through V.
        p.push(Inst::Scatter {
            region: R(0),
            idx: V(0),
            val: V(1),
        });
        // Step 2: read back, compare, survivors' positions -> round_of.
        p.push(Inst::Gather {
            dst: V(3),
            region: R(0),
            idx: V(0),
        });
        p.push(Inst::Cmp {
            dst: M(0),
            op: CmpOp::Eq,
            a: V(3),
            b: V(1),
        });
        p.push(Inst::Compress {
            dst: V(5),
            src: V(2),
            mask: M(0),
        });
        p.push(Inst::Length {
            dst: S(2),
            src: V(5),
        });
        p.push(Inst::Splat {
            dst: V(4),
            value: S(1).into(),
            n: S(2).into(),
        });
        p.push(Inst::Scatter {
            region: R(1),
            idx: V(5),
            val: V(4),
        });
        // Step 3: delete processed pointers; bump the round counter.
        p.push(Inst::MaskNot {
            dst: M(1),
            src: M(0),
        });
        p.push(Inst::Compress {
            dst: V(0),
            src: V(0),
            mask: M(1),
        });
        p.push(Inst::Compress {
            dst: V(1),
            src: V(1),
            mask: M(1),
        });
        p.push(Inst::Compress {
            dst: V(2),
            src: V(2),
            mask: M(1),
        });
        p.push(Inst::Length {
            dst: S(0),
            src: V(0),
        });
        p.push(Inst::SAlu {
            dst: S(1),
            op: AluOp::Add,
            a: S(1).into(),
            b: 1.into(),
        });
        // Step 4: repeat.
        p.push(Inst::Jump { target: loop_top });
        let end = p.here();
        p.push(Inst::Halt);
        p.patch_jump(jz, end);
        p
    }

    #[test]
    fn fol1_as_a_stored_program_matches_the_library() {
        let targets: Vec<Word> = vec![0, 1, 0, 2, 2, 0];
        let n = targets.len();

        let mut m = Machine::new(CostModel::unit());
        let work = m.alloc(3, "work");
        let round_of = m.alloc(n, "round_of");
        let mut regs = Registers::default();
        *regs.v_mut(V(0)) = m.vimm(&targets);
        *regs.v_mut(V(1)) = m.iota(0, n);
        *regs.v_mut(V(2)) = m.iota(0, n);
        *regs.s_mut(S(0)) = n as Word;
        *regs.s_mut(S(1)) = 0;

        let program = fol1_program();
        let (regs, stop) = execute(&mut m, &program, &[work, round_of], regs, 10_000);
        assert_eq!(stop, Stop::Halted);
        assert_eq!(regs.s(S(1)), 3, "Fig 6 input needs 3 rounds");

        // round_of must agree with a fresh library run's decomposition
        // (same machine policy: LastWins default).
        let rounds = m.mem().read_region(round_of);
        let mut m2 = Machine::new(CostModel::unit());
        let work2 = m2.alloc(3, "work");
        let d = fol_core_equiv(&mut m2, work2, &targets);
        for (round_idx, round) in d.iter().enumerate() {
            for &pos in round {
                assert_eq!(rounds[pos], round_idx as Word, "position {pos}");
            }
        }
    }

    /// Local re-implementation of the library FOL1 loop (fol-core depends
    /// on fol-vm, so the dependency cannot point the other way; the
    /// equivalence test in fol-suite's integration suite covers the real
    /// pairing).
    fn fol_core_equiv(m: &mut Machine, work: Region, targets: &[Word]) -> Vec<Vec<usize>> {
        let mut v = m.vimm(targets);
        let mut labels = m.iota(0, targets.len());
        let mut positions = m.iota(0, targets.len());
        let mut rounds = Vec::new();
        while !v.is_empty() {
            m.scatter(work, &v, &labels);
            let got = m.gather(work, &v);
            let ok = m.vcmp(CmpOp::Eq, &got, &labels);
            let sur = m.compress(&positions, &ok);
            rounds.push(sur.iter().map(|p| p as usize).collect());
            let rest = m.mask_not(&ok);
            v = m.compress(&v, &rest);
            labels = m.compress(&labels, &rest);
            positions = m.compress(&positions, &rest);
        }
        rounds
    }

    #[test]
    fn runaway_program_runs_out_of_fuel() {
        let mut p = Program::new();
        p.push(Inst::Jump { target: 0 });
        let mut m = Machine::new(CostModel::unit());
        let (_, stop) = execute(&mut m, &p, &[], Registers::default(), 100);
        assert_eq!(stop, Stop::OutOfFuel);
    }

    #[test]
    fn disassembly_is_readable() {
        let p = fol1_program();
        let text = format!("{p}");
        assert!(text.contains("scatter r0[v0] = v1"));
        assert!(text.contains("jz s0"));
        assert!(text.contains("halt"));
        assert_eq!(text.lines().count(), p.len());
    }

    #[test]
    fn straight_line_arithmetic() {
        let mut p = Program::new();
        p.push(Inst::Iota {
            dst: V(0),
            start: 0.into(),
            n: 4.into(),
        });
        p.push(Inst::AluS {
            dst: V(1),
            op: AluOp::Mul,
            a: V(0),
            b: 3.into(),
        });
        p.push(Inst::CmpS {
            dst: M(0),
            op: CmpOp::Ge,
            a: V(1),
            b: 6.into(),
        });
        p.push(Inst::Compress {
            dst: V(2),
            src: V(1),
            mask: M(0),
        });
        p.push(Inst::CountTrue {
            dst: S(0),
            mask: M(0),
        });
        p.push(Inst::Halt);
        let mut m = Machine::new(CostModel::unit());
        let (regs, stop) = execute(&mut m, &p, &[], Registers::default(), 100);
        assert_eq!(stop, Stop::Halted);
        assert_eq!(regs.v(V(2)).as_slice(), &[6, 9]);
        assert_eq!(regs.s(S(0)), 2);
    }

    #[test]
    fn program_charges_the_machine() {
        let mut p = Program::new();
        p.push(Inst::Splat {
            dst: V(0),
            value: 7.into(),
            n: 100.into(),
        });
        p.push(Inst::Halt);
        let mut m = Machine::new(CostModel::s810());
        let (_, _) = execute(&mut m, &p, &[], Registers::default(), 10);
        assert!(m.stats().vector_cycles > 0);
    }

    #[test]
    #[should_panic(expected = "is not a jump")]
    fn patching_a_non_jump_panics() {
        let mut p = Program::new();
        let at = p.push(Inst::Halt);
        p.patch_jump(at, 0);
    }
}
