//! Per-lane health tracking — the substrate for graceful degradation.
//!
//! The fault model ([`crate::fault`]) can make individual *physical lanes*
//! misbehave: a sticky lane drops every write it is asked to perform, a
//! stochastic plan drops writes at a seeded rate. PRs 1–2 taught the stack to
//! detect such faults (validation) and to undo their damage (transactional
//! rollback), but recovery was all-or-nothing: one sick lane forced the
//! retry ladder off the vector unit entirely, even with 63 of 64 lanes
//! healthy.
//!
//! This module supplies the two missing pieces:
//!
//! * [`LaneSet`] — a `Copy` bitmask of the machine's [`LANE_COUNT`] physical
//!   lanes, used both as the machine's **execution mask** (which lanes
//!   participate in vector instructions) and as the quarantine set carried
//!   by `fol-core`'s `ExecMode::DegradedVector` rung.
//! * [`LaneHealthRegistry`] — per-lane exponentially-decayed fault scores,
//!   fed by the machine every time a scatter fault is attributed to a lane
//!   and every time a transaction rolls back. A lane whose score crosses the
//!   quarantine threshold is quarantined; a circuit breaker
//!   ([`Machine::probe_lane`](crate::Machine::probe_lane)) re-probes
//!   quarantined lanes with a sacrificial scatter–gather self-test and
//!   restores them on success.
//!
//! Scores are integer fixed-point and decay by halving per elapsed
//! [`half-life`](LaneHealthRegistry::with_half_life) of scatter sequence
//! numbers, so the registry is a pure function of the machine's instruction
//! stream — deterministic and replayable like everything else in the
//! simulator.

/// Number of physical vector lanes the simulated machine schedules elements
/// onto. Element `p` of a vector instruction executes on physical lane
/// `p mod LANE_COUNT` when every lane is active; quarantining lanes reduces
/// the effective width and remaps elements onto the surviving lanes.
pub const LANE_COUNT: usize = 64;

/// A set of physical lanes, packed into a `u64` bitmask (bit `i` ⇔ lane `i`).
///
/// `Copy` on purpose: `fol-core` embeds a `LaneSet` in its `ExecMode` enum,
/// which must stay `Copy` for the retry ladder.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct LaneSet(u64);

impl LaneSet {
    /// The empty set.
    pub const fn empty() -> Self {
        Self(0)
    }

    /// Every lane of the machine.
    pub const fn all() -> Self {
        Self(u64::MAX)
    }

    /// The singleton set `{lane}`.
    ///
    /// # Panics
    /// Panics when `lane >= LANE_COUNT`.
    pub fn single(lane: usize) -> Self {
        assert!(lane < LANE_COUNT, "lane {lane} out of range");
        Self(1 << lane)
    }

    /// A set from a raw bitmask (bit `i` ⇔ lane `i`).
    pub const fn from_bits(bits: u64) -> Self {
        Self(bits)
    }

    /// The raw bitmask.
    pub const fn bits(self) -> u64 {
        self.0
    }

    /// Adds `lane` to the set.
    ///
    /// # Panics
    /// Panics when `lane >= LANE_COUNT`.
    pub fn insert(&mut self, lane: usize) {
        assert!(lane < LANE_COUNT, "lane {lane} out of range");
        self.0 |= 1 << lane;
    }

    /// Removes `lane` from the set (no-op when absent or out of range).
    pub fn remove(&mut self, lane: usize) {
        if lane < LANE_COUNT {
            self.0 &= !(1 << lane);
        }
    }

    /// Whether `lane` is in the set.
    pub fn contains(self, lane: usize) -> bool {
        lane < LANE_COUNT && (self.0 >> lane) & 1 == 1
    }

    /// Number of lanes in the set.
    pub fn len(self) -> usize {
        self.0.count_ones() as usize
    }

    /// True when no lane is in the set.
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Set union.
    pub fn union(self, other: Self) -> Self {
        Self(self.0 | other.0)
    }

    /// Lanes in `self` but not in `other`.
    pub fn difference(self, other: Self) -> Self {
        Self(self.0 & !other.0)
    }

    /// Iterates the member lanes in ascending order.
    pub fn iter(self) -> impl Iterator<Item = usize> {
        (0..LANE_COUNT).filter(move |&l| self.contains(l))
    }
}

impl FromIterator<usize> for LaneSet {
    fn from_iter<I: IntoIterator<Item = usize>>(iter: I) -> Self {
        let mut s = Self::empty();
        for lane in iter {
            s.insert(lane);
        }
        s
    }
}

impl std::fmt::Display for LaneSet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.is_empty() {
            return f.write_str("{}");
        }
        write!(f, "{{")?;
        for (i, lane) in self.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{lane}")?;
        }
        write!(f, "}}")
    }
}

/// Weight added to a lane's score for each scatter fault attributed to it.
const FAULT_WEIGHT: u32 = 16;
/// Weight added to every already-implicated lane when a transaction rolls
/// back — rollbacks escalate suspicion on the lanes the fault log blames.
const ROLLBACK_WEIGHT: u32 = 8;

/// Per-lane fault accounting with exponential decay, quarantine and
/// circuit-breaker bookkeeping.
///
/// The [`Machine`](crate::Machine) owns one and feeds it automatically:
/// every scatter fault attributable to a physical lane bumps that lane's
/// score ([`LaneHealthRegistry::note_lane_fault`]); every transaction abort
/// bumps all currently-implicated lanes
/// ([`LaneHealthRegistry::note_rollback`]). When a score crosses the
/// threshold the lane is quarantined. Quarantine is advisory state — it does
/// not change machine behaviour by itself; a supervisor (fol-core's
/// `recover` module) reads [`LaneHealthRegistry::quarantined`] and installs
/// the complement as the machine's execution mask.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LaneHealthRegistry {
    scores: [u32; LANE_COUNT],
    /// Scatter sequence at which each lane's score was last decayed.
    last_seen: [u64; LANE_COUNT],
    quarantined: LaneSet,
    threshold: u32,
    half_life: u64,
    probe_cooldown: u64,
    last_probe: [u64; LANE_COUNT],
    trips: u64,
    restores: u64,
}

impl Default for LaneHealthRegistry {
    fn default() -> Self {
        Self::new()
    }
}

impl LaneHealthRegistry {
    /// A registry with default tuning: threshold 48 (three faults in quick
    /// succession quarantine a lane), half-life 64 scatters, probe cooldown
    /// 4 scatters.
    pub fn new() -> Self {
        Self {
            scores: [0; LANE_COUNT],
            last_seen: [0; LANE_COUNT],
            quarantined: LaneSet::empty(),
            threshold: 48,
            half_life: 64,
            probe_cooldown: 4,
            last_probe: [0; LANE_COUNT],
            trips: 0,
            restores: 0,
        }
    }

    /// Replaces the quarantine threshold.
    pub fn with_threshold(mut self, threshold: u32) -> Self {
        self.threshold = threshold.max(1);
        self
    }

    /// Replaces the score half-life (in scatter sequence numbers).
    pub fn with_half_life(mut self, half_life: u64) -> Self {
        self.half_life = half_life.max(1);
        self
    }

    /// Replaces the circuit breaker's re-probe cooldown (in scatter
    /// sequence numbers).
    pub fn with_probe_cooldown(mut self, cooldown: u64) -> Self {
        self.probe_cooldown = cooldown;
        self
    }

    /// Decays `lane`'s score to the present (`seq`), halving per elapsed
    /// half-life.
    fn decay(&mut self, lane: usize, seq: u64) {
        let elapsed = seq.saturating_sub(self.last_seen[lane]);
        let halvings = (elapsed / self.half_life).min(31) as u32;
        self.scores[lane] >>= halvings;
        self.last_seen[lane] = seq;
    }

    /// Attributes one scatter fault at sequence `seq` to physical `lane`.
    /// Quarantines the lane when its decayed score crosses the threshold.
    pub fn note_lane_fault(&mut self, lane: usize, seq: u64) {
        if lane >= LANE_COUNT {
            return;
        }
        self.decay(lane, seq);
        self.scores[lane] = self.scores[lane].saturating_add(FAULT_WEIGHT);
        if self.scores[lane] >= self.threshold && !self.quarantined.contains(lane) {
            self.quarantined.insert(lane);
            self.trips += 1;
        }
    }

    /// Correlates a transaction rollback with lane health: every lane with a
    /// nonzero score (i.e. implicated by the fault log since it last decayed
    /// out) is bumped by an extra weight, on the theory that the rollback
    /// was most likely their fault.
    pub fn note_rollback(&mut self, seq: u64) {
        for lane in 0..LANE_COUNT {
            if self.scores[lane] == 0 {
                continue;
            }
            self.decay(lane, seq);
            if self.scores[lane] == 0 {
                continue;
            }
            self.scores[lane] = self.scores[lane].saturating_add(ROLLBACK_WEIGHT);
            if self.scores[lane] >= self.threshold && !self.quarantined.contains(lane) {
                self.quarantined.insert(lane);
                self.trips += 1;
            }
        }
    }

    /// The current quarantine set.
    pub fn quarantined(&self) -> LaneSet {
        self.quarantined
    }

    /// The complement of the quarantine set over the machine's lanes.
    pub fn healthy(&self) -> LaneSet {
        LaneSet::from_bits(!self.quarantined.bits())
    }

    /// Whether `lane` is quarantined.
    pub fn is_quarantined(&self, lane: usize) -> bool {
        self.quarantined.contains(lane)
    }

    /// `lane`'s current (undecayed) score — diagnostic only.
    pub fn score(&self, lane: usize) -> u32 {
        if lane < LANE_COUNT {
            self.scores[lane]
        } else {
            0
        }
    }

    /// Manually quarantines `lane` (e.g. a test pinning a known-bad lane).
    pub fn quarantine(&mut self, lane: usize) {
        if lane < LANE_COUNT && !self.quarantined.contains(lane) {
            self.quarantined.insert(lane);
            self.trips += 1;
        }
    }

    /// Manually restores `lane`, clearing its score.
    pub fn restore(&mut self, lane: usize) {
        if self.quarantined.contains(lane) {
            self.quarantined.remove(lane);
            self.scores[lane] = 0;
            self.restores += 1;
        }
    }

    /// Whether the circuit breaker should re-probe `lane` at sequence
    /// `seq`: the lane is quarantined and at least the probe cooldown has
    /// elapsed since its last probe.
    pub fn probe_due(&self, lane: usize, seq: u64) -> bool {
        lane < LANE_COUNT
            && self.quarantined.contains(lane)
            && seq.saturating_sub(self.last_probe[lane]) >= self.probe_cooldown
    }

    /// Records the outcome of a circuit-breaker probe of `lane` at sequence
    /// `seq`. A passing probe restores the lane and clears its score; a
    /// failing probe leaves it quarantined and restarts the cooldown.
    pub fn record_probe(&mut self, lane: usize, seq: u64, passed: bool) {
        if lane >= LANE_COUNT {
            return;
        }
        self.last_probe[lane] = seq;
        if passed {
            self.restore(lane);
        }
    }

    /// Number of quarantine trips so far (manual and automatic).
    pub fn trips(&self) -> u64 {
        self.trips
    }

    /// Number of restores so far (manual and probe-driven).
    pub fn restores(&self) -> u64 {
        self.restores
    }

    /// One-line digest, e.g. `"2 lane(s) quarantined {3,17}; 2 trip(s), 0
    /// restore(s)"`.
    pub fn summary(&self) -> String {
        format!(
            "{} lane(s) quarantined {}; {} trip(s), {} restore(s)",
            self.quarantined.len(),
            self.quarantined,
            self.trips,
            self.restores,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lane_set_basics() {
        let mut s = LaneSet::empty();
        assert!(s.is_empty());
        assert_eq!(s.len(), 0);
        s.insert(0);
        s.insert(63);
        s.insert(5);
        assert!(s.contains(0) && s.contains(5) && s.contains(63));
        assert!(!s.contains(6));
        assert_eq!(s.len(), 3);
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![0, 5, 63]);
        s.remove(5);
        assert!(!s.contains(5));
        assert_eq!(s.len(), 2);
        assert_eq!(LaneSet::all().len(), LANE_COUNT);
        assert!(!LaneSet::from_bits(0).contains(64));
    }

    #[test]
    fn lane_set_algebra_and_display() {
        let a: LaneSet = [1usize, 2, 3].into_iter().collect();
        let b = LaneSet::single(2);
        assert_eq!(a.union(b), a);
        assert_eq!(a.difference(b).iter().collect::<Vec<_>>(), vec![1, 3]);
        assert_eq!(format!("{}", a), "{1,2,3}");
        assert_eq!(format!("{}", LaneSet::empty()), "{}");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn lane_set_insert_rejects_out_of_range() {
        LaneSet::empty().insert(LANE_COUNT);
    }

    #[test]
    fn repeated_faults_trip_quarantine() {
        let mut r = LaneHealthRegistry::new();
        assert!(r.quarantined().is_empty());
        for seq in 0..3 {
            r.note_lane_fault(7, seq);
        }
        assert!(r.is_quarantined(7), "score {}", r.score(7));
        assert_eq!(r.trips(), 1);
        // Other lanes unaffected.
        assert!(!r.is_quarantined(6));
        assert_eq!(r.quarantined(), LaneSet::single(7));
    }

    #[test]
    fn scores_decay_with_scatter_distance() {
        let mut r = LaneHealthRegistry::new().with_half_life(8);
        r.note_lane_fault(3, 0);
        r.note_lane_fault(3, 1);
        // Two faults close together: 32 < 48, still healthy.
        assert!(!r.is_quarantined(3));
        // A third fault far in the future lands on a decayed score.
        r.note_lane_fault(3, 1000);
        assert!(!r.is_quarantined(3), "decay must forgive ancient faults");
        assert_eq!(r.score(3), FAULT_WEIGHT);
    }

    #[test]
    fn rollback_escalates_implicated_lanes_only() {
        let mut r = LaneHealthRegistry::new();
        r.note_lane_fault(2, 10);
        r.note_lane_fault(2, 11);
        r.note_rollback(12);
        r.note_rollback(13);
        assert!(r.is_quarantined(2), "2×16 + 2×8 = 48 ≥ threshold");
        assert_eq!(r.score(0), 0, "clean lanes are never blamed");
    }

    #[test]
    fn probe_cooldown_and_restore() {
        let mut r = LaneHealthRegistry::new().with_probe_cooldown(10);
        r.quarantine(9);
        assert!(r.probe_due(9, 10));
        r.record_probe(9, 10, false);
        assert!(r.is_quarantined(9));
        assert!(!r.probe_due(9, 15), "cooldown not yet elapsed");
        assert!(r.probe_due(9, 20));
        r.record_probe(9, 20, true);
        assert!(!r.is_quarantined(9));
        assert_eq!(r.restores(), 1);
        assert_eq!(r.score(9), 0, "restore clears the score");
        assert!(!r.probe_due(9, 100), "healthy lanes are not probed");
    }

    #[test]
    fn summary_is_human_readable() {
        let mut r = LaneHealthRegistry::new();
        r.quarantine(1);
        r.quarantine(4);
        let s = r.summary();
        assert!(s.contains("2 lane(s) quarantined {1,4}"), "{s}");
        assert!(s.contains("2 trip(s)"), "{s}");
    }
}
