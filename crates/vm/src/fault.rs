//! Deterministic scatter fault injection — adversarial hardware models.
//!
//! FOL's correctness argument rests on the **ELS condition** (§3.2): a
//! conflicting vector indirect store lands exactly one of the competing
//! values. The [`crate::ConflictPolicy`] seam already lets tests choose *which*
//! write wins; this module goes further and models **broken** hardware, so
//! that the hardened, fallible execution paths in `fol-core` can be shown to
//! fail loudly (typed errors, detected invariant violations) rather than
//! silently produce a wrong decomposition.
//!
//! A [`FaultPlan`] is a pure function of `(seed, scatter sequence number,
//! lane / address)` — re-running the same program with the same plan replays
//! exactly the same faults, which keeps every adversarial test reproducible.
//! Two fault classes are modelled, both of which violate ELS:
//!
//! * **Dropped lanes** — a scatter element's write never reaches memory (a
//!   faulty pipe). The cell keeps its previous value, which is *not* one of
//!   the written values.
//! * **Torn writes** (generalized amalgams) — when several lanes target one
//!   address, the stored value is a bitwise combination
//!   ([`AmalgamMode`]) of the competing values instead of any single one of
//!   them. This generalizes the legacy [`crate::ConflictPolicy::BrokenAmalgam`]
//!   policy from "always XOR" to seeded, per-address, per-mode injection.
//!
//! Every injected fault is recorded in the machine's [`FaultLog`], so a test
//! can assert both that a run *survived* and that the adversary actually
//! *fired* (a plan whose probabilities never trigger proves nothing).
//!
//! Beyond the write-side classes above, a plan can also lie on the **read
//! side** and in **resident memory** — the silent-data-corruption models the
//! integrity layer ([`crate::integrity`]) exists to catch:
//!
//! * **Gather bit-flips** — a list-vector load returns the stored word with
//!   one seeded bit inverted (a flaky read pipe).
//! * **Stale reads** — a gather lane returns the *previous* value of its
//!   cell instead of the current one (a forwarding/coherence failure).
//! * **Torn gathers** — a gather lane returns an [`AmalgamMode`] combination
//!   of its own word and a neighbouring lane's word (crosstalk on the read
//!   bus).
//! * **Bit-rot** — resident words in checksummed regions decay spontaneously
//!   at scatter boundaries, at a rate that halves every
//!   [`FaultPlan::ROT_HALF_LIFE`] scatters (so retries eventually run on
//!   quiet memory). Rot bypasses the write journal *and* the incremental
//!   checksums on purpose: only a [`crate::Machine::scrub`] pass can see it.

use crate::memory::Addr;
use crate::vreg::Word;

/// How a torn write combines the values competing for one address.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum AmalgamMode {
    /// Bitwise XOR of all competing values (the classic torn-store model;
    /// matches [`crate::ConflictPolicy::BrokenAmalgam`]).
    #[default]
    Xor,
    /// Bitwise OR — models wired-OR bus contention.
    Or,
    /// Bitwise AND — models open-drain contention.
    And,
}

impl AmalgamMode {
    /// Combines `values` (at least one) into the torn result.
    pub fn combine(self, values: &[Word]) -> Word {
        let mut it = values.iter().copied();
        let first = it.next().unwrap_or(0);
        match self {
            AmalgamMode::Xor => it.fold(first, |a, b| a ^ b),
            AmalgamMode::Or => it.fold(first, |a, b| a | b),
            AmalgamMode::And => it.fold(first, |a, b| a & b),
        }
    }
}

/// A deterministic, seed-driven plan of scatter faults.
///
/// Rates are expressed in units of `1/65536`: a `drop_rate` of `8192` drops
/// roughly one lane in eight. Whether a particular lane or address faults is
/// a pure hash of the plan seed, the machine's scatter sequence number and
/// the lane index (or target address), so a plan is exactly reproducible and
/// independent of `HashMap` iteration order or host randomness.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FaultPlan {
    seed: u64,
    drop_rate: u16,
    amalgam_rate: u16,
    mode: AmalgamMode,
    /// Half-open scatter-sequence window `[start, end)` the plan applies to;
    /// `None` means every scatter.
    window: Option<(u64, u64)>,
    /// Bitmask of *physical lanes* (bit `i` ⇔ lane `i`) that drop **every**
    /// write routed through them — the sticky-fault model of a permanently
    /// broken pipe, as opposed to the stochastic `drop_rate`.
    sticky_lanes: u64,
    /// Rate (per 65536) at which a gather lane returns its word with one
    /// seeded bit inverted.
    gather_flip_rate: u16,
    /// Rate (per 65536) at which a gather lane returns the previous value
    /// of its cell instead of the current one.
    stale_read_rate: u16,
    /// Rate (per 65536) at which a gather lane's word is combined
    /// ([`AmalgamMode`]) with a neighbouring lane's word.
    torn_gather_rate: u16,
    /// Initial rate (per 65536, halving every [`FaultPlan::ROT_HALF_LIFE`]
    /// scatters) at which resident words of checksummed regions decay.
    rot_rate: u16,
}

impl FaultPlan {
    /// Scatter-sequence half-life of the bit-rot rate: every this many
    /// scatters, the effective rot rate halves. Chosen so an aggressive rot
    /// plan has visibly decayed within one retry attempt and is effectively
    /// quiet after a handful — modelling transient environmental upset
    /// (and guaranteeing the retry ladder converges rather than racing an
    /// immortal adversary).
    pub const ROT_HALF_LIFE: u64 = 8;

    /// A plan that injects nothing (useful as a sweep baseline).
    pub fn benign(seed: u64) -> Self {
        Self {
            seed,
            drop_rate: 0,
            amalgam_rate: 0,
            mode: AmalgamMode::Xor,
            window: None,
            sticky_lanes: 0,
            gather_flip_rate: 0,
            stale_read_rate: 0,
            torn_gather_rate: 0,
            rot_rate: 0,
        }
    }

    /// A plan under which every physical lane in the `lanes` bitmask (bit
    /// `i` ⇔ lane `i`) drops **all** of its writes — a permanently broken
    /// pipe. Unlike the stochastic [`FaultPlan::dropped_lanes`] model, a
    /// sticky fault is a pure function of the lane alone, so the lane-health
    /// registry can localize it and a quarantine actually cures it.
    pub fn sticky_lanes(seed: u64, lanes: u64) -> Self {
        Self {
            sticky_lanes: lanes,
            ..Self::benign(seed)
        }
    }

    /// A plan that drops scatter lanes at `rate` (per 65536).
    pub fn dropped_lanes(seed: u64, rate: u16) -> Self {
        Self {
            drop_rate: rate,
            ..Self::benign(seed)
        }
    }

    /// A plan that tears conflicting writes at `rate` (per 65536) using
    /// `mode` to combine the competing values.
    pub fn torn_writes(seed: u64, rate: u16, mode: AmalgamMode) -> Self {
        Self {
            amalgam_rate: rate,
            mode,
            ..Self::benign(seed)
        }
    }

    /// A plan under which gather lanes return bit-flipped words at `rate`
    /// (per 65536).
    pub fn gather_flips(seed: u64, rate: u16) -> Self {
        Self {
            gather_flip_rate: rate,
            ..Self::benign(seed)
        }
    }

    /// A plan under which resident words of checksummed regions decay,
    /// starting at `rate` (per 65536) and halving every
    /// [`FaultPlan::ROT_HALF_LIFE`] scatters.
    pub fn bit_rot(seed: u64, rate: u16) -> Self {
        Self {
            rot_rate: rate,
            ..Self::benign(seed)
        }
    }

    /// Sets the lane-drop rate (per 65536), returning the modified plan.
    pub fn with_drop_rate(mut self, rate: u16) -> Self {
        self.drop_rate = rate;
        self
    }

    /// Sets the gather bit-flip rate (per 65536), returning the plan.
    pub fn with_gather_flips(mut self, rate: u16) -> Self {
        self.gather_flip_rate = rate;
        self
    }

    /// Sets the stale-read rate (per 65536), returning the plan.
    pub fn with_stale_reads(mut self, rate: u16) -> Self {
        self.stale_read_rate = rate;
        self
    }

    /// Sets the torn-gather rate (per 65536), returning the plan; the
    /// plan's [`AmalgamMode`] decides how the crosstalk combines.
    pub fn with_torn_gathers(mut self, rate: u16) -> Self {
        self.torn_gather_rate = rate;
        self
    }

    /// Sets the initial bit-rot rate (per 65536), returning the plan.
    pub fn with_bit_rot(mut self, rate: u16) -> Self {
        self.rot_rate = rate;
        self
    }

    /// Sets the torn-write rate (per 65536) and mode, returning the plan.
    pub fn with_torn_writes(mut self, rate: u16, mode: AmalgamMode) -> Self {
        self.amalgam_rate = rate;
        self.mode = mode;
        self
    }

    /// Sets the sticky-lane bitmask (bit `i` ⇔ physical lane `i` drops all
    /// writes), returning the modified plan.
    pub fn with_sticky_lanes(mut self, lanes: u64) -> Self {
        self.sticky_lanes = lanes;
        self
    }

    /// The sticky-lane bitmask.
    pub fn sticky_lane_bits(&self) -> u64 {
        self.sticky_lanes
    }

    /// Restricts the plan to scatters whose sequence number falls in
    /// `[start, end)`.
    pub fn with_window(mut self, start: u64, end: u64) -> Self {
        self.window = Some((start, end));
        self
    }

    /// The plan's seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Replaces the plan's seed, keeping rates, mode and window — used by
    /// retry supervisors to draw a fresh fault pattern between attempts
    /// while preserving the failure model.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// True when the plan can violate the ELS condition (any nonzero rate
    /// or a nonempty sticky-lane set).
    pub fn violates_els(&self) -> bool {
        self.drop_rate > 0 || self.amalgam_rate > 0 || self.sticky_lanes != 0
    }

    /// True when the plan can corrupt the *read* path (gather flips, stale
    /// reads or torn gathers) — faults no write-side validation can see.
    pub fn corrupts_reads(&self) -> bool {
        self.gather_flip_rate > 0 || self.stale_read_rate > 0 || self.torn_gather_rate > 0
    }

    /// True when the plan decays resident memory.
    pub fn rots_memory(&self) -> bool {
        self.rot_rate > 0
    }

    /// True when the plan needs the machine to keep a shadow of pre-write
    /// values (only then can a stale read return something plausible).
    pub fn needs_stale_shadow(&self) -> bool {
        self.stale_read_rate > 0
    }

    /// The amalgam combination mode.
    pub fn mode(&self) -> AmalgamMode {
        self.mode
    }

    fn active_at(&self, sequence: u64) -> bool {
        match self.window {
            None => true,
            Some((start, end)) => sequence >= start && sequence < end,
        }
    }

    /// Decides whether the write of `lane` (original element position) in
    /// scatter `sequence` is dropped.
    pub fn lane_dropped(&self, sequence: u64, lane: usize) -> bool {
        self.active_at(sequence)
            && self.drop_rate > 0
            && (hash3(self.seed, sequence, lane as u64 ^ 0xD50F) & 0xFFFF) < self.drop_rate as u64
    }

    /// Decides whether the write routed through physical lane `lane` in
    /// scatter `sequence` is dropped by a **sticky** lane fault. Unlike
    /// [`FaultPlan::lane_dropped`] this is keyed on the physical lane the
    /// machine scheduled the element onto, not the element position, so a
    /// quarantine that steers elements away from the lane genuinely avoids
    /// the fault.
    pub fn sticky_dropped(&self, sequence: u64, lane: usize) -> bool {
        self.active_at(sequence) && lane < 64 && (self.sticky_lanes >> lane) & 1 == 1
    }

    /// Decides whether the conflicting writes to `addr` in scatter `sequence`
    /// tear; returns the amalgam to store if so. `values` are the competing
    /// values (the caller only consults the plan when there are at least two).
    pub fn torn_value(&self, sequence: u64, addr: Addr, values: &[Word]) -> Option<Word> {
        if values.len() < 2 || !self.active_at(sequence) || self.amalgam_rate == 0 {
            return None;
        }
        if (hash3(self.seed, sequence, addr as u64 ^ 0x7EA4) & 0xFFFF) < self.amalgam_rate as u64 {
            Some(self.mode.combine(values))
        } else {
            None
        }
    }

    /// Decides whether gather `sequence`'s `lane` returns a bit-flipped
    /// word; returns the bit index to invert if so. Keyed on the machine's
    /// *gather* sequence counter, so each gather draws fresh coins.
    pub fn gather_flipped(&self, sequence: u64, lane: usize) -> Option<u32> {
        if !self.active_at(sequence) || self.gather_flip_rate == 0 {
            return None;
        }
        let h = hash3(self.seed, sequence, lane as u64 ^ 0x61F1);
        ((h & 0xFFFF) < self.gather_flip_rate as u64).then_some(((h >> 16) % 64) as u32)
    }

    /// Decides whether gather `sequence`'s `lane` suffers a stale read
    /// (returns the cell's previous value instead of the current one).
    pub fn stale_read(&self, sequence: u64, lane: usize) -> bool {
        self.active_at(sequence)
            && self.stale_read_rate > 0
            && (hash3(self.seed, sequence, lane as u64 ^ 0x57A1) & 0xFFFF)
                < self.stale_read_rate as u64
    }

    /// Decides whether gather `sequence`'s `lane` tears against its
    /// neighbouring lane's word (crosstalk); the plan's [`AmalgamMode`]
    /// combines the two.
    pub fn torn_gather(&self, sequence: u64, lane: usize) -> bool {
        self.active_at(sequence)
            && self.torn_gather_rate > 0
            && (hash3(self.seed, sequence, lane as u64 ^ 0x7641) & 0xFFFF)
                < self.torn_gather_rate as u64
    }

    /// The effective bit-rot rate at scatter `sequence`: the initial rate
    /// halved once per elapsed [`FaultPlan::ROT_HALF_LIFE`] scatters.
    pub fn rot_rate_at(&self, sequence: u64) -> u64 {
        if !self.active_at(sequence) {
            return 0;
        }
        let halvings = (sequence / Self::ROT_HALF_LIFE).min(63) as u32;
        (self.rot_rate as u64) >> halvings
    }

    /// Decides whether the resident word at `addr` rots at scatter
    /// `sequence`; returns the bit index to invert if so.
    pub fn rotted(&self, sequence: u64, addr: Addr) -> Option<u32> {
        let rate = self.rot_rate_at(sequence);
        if rate == 0 {
            return None;
        }
        let h = hash3(self.seed, sequence, addr as u64 ^ 0xB17D);
        ((h & 0xFFFF) < rate).then_some(((h >> 16) % 64) as u32)
    }
}

/// One injected fault, as recorded in the [`FaultLog`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FaultEvent {
    /// The write of element `lane` in scatter `sequence` was dropped before
    /// reaching `addr`.
    LaneDropped {
        /// Scatter sequence number.
        sequence: u64,
        /// Original element position within the scatter.
        lane: usize,
        /// The address the write should have reached.
        addr: Addr,
    },
    /// Conflicting writes to `addr` in scatter `sequence` stored `amalgam`,
    /// a value no single lane wrote.
    TornWrite {
        /// Scatter sequence number.
        sequence: u64,
        /// The torn address.
        addr: Addr,
        /// The amalgam that was stored.
        amalgam: Word,
    },
    /// Gather `sequence`'s element `lane` read `addr` with bit `bit`
    /// inverted: memory held the right word, the read pipe lied.
    GatherFlip {
        /// Gather sequence number.
        sequence: u64,
        /// Original element position within the gather.
        lane: usize,
        /// The address that was read.
        addr: Addr,
        /// The bit that was inverted in the returned word.
        bit: u32,
    },
    /// Gather `sequence`'s element `lane` returned `stale`, the previous
    /// value of `addr`, instead of the current word.
    StaleRead {
        /// Gather sequence number.
        sequence: u64,
        /// Original element position within the gather.
        lane: usize,
        /// The address that was read.
        addr: Addr,
        /// The outdated value that was returned.
        stale: Word,
    },
    /// Gather `sequence`'s element `lane` returned an amalgam of its own
    /// word and a neighbouring lane's word (read-bus crosstalk).
    TornGather {
        /// Gather sequence number.
        sequence: u64,
        /// Original element position within the gather.
        lane: usize,
        /// The address that was read.
        addr: Addr,
        /// The crosstalk amalgam that was returned.
        amalgam: Word,
    },
    /// The resident word at `addr` decayed at scatter boundary `sequence`:
    /// bit `bit` inverted in memory itself, bypassing journal and
    /// checksums. Only a scrub pass can see this one.
    BitRot {
        /// Scatter sequence number at whose boundary the rot struck.
        sequence: u64,
        /// The decayed address.
        addr: Addr,
        /// The bit that was inverted in memory.
        bit: u32,
    },
}

/// A record of every fault a [`FaultPlan`] actually injected.
///
/// Adversarial tests assert on this to prove the adversary fired: a run that
/// "survives" a plan whose faults never triggered demonstrates nothing.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FaultLog {
    events: Vec<FaultEvent>,
    dropped_lanes: u64,
    torn_writes: u64,
    gather_flips: u64,
    stale_reads: u64,
    torn_gathers: u64,
    bit_rots: u64,
}

impl FaultLog {
    /// All events, in injection order.
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// Number of dropped lanes.
    pub fn dropped_lanes(&self) -> u64 {
        self.dropped_lanes
    }

    /// Number of torn writes.
    pub fn torn_writes(&self) -> u64 {
        self.torn_writes
    }

    /// Number of gather bit-flips.
    pub fn gather_flips(&self) -> u64 {
        self.gather_flips
    }

    /// Number of stale reads.
    pub fn stale_reads(&self) -> u64 {
        self.stale_reads
    }

    /// Number of torn gathers.
    pub fn torn_gathers(&self) -> u64 {
        self.torn_gathers
    }

    /// Number of resident words decayed by bit-rot.
    pub fn bit_rots(&self) -> u64 {
        self.bit_rots
    }

    /// Total faults on the read path (flips + stale reads + torn gathers).
    pub fn read_faults(&self) -> u64 {
        self.gather_flips + self.stale_reads + self.torn_gathers
    }

    /// True when no fault was injected.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Total number of injected faults.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    pub(crate) fn record(&mut self, event: FaultEvent) {
        match event {
            FaultEvent::LaneDropped { .. } => self.dropped_lanes += 1,
            FaultEvent::TornWrite { .. } => self.torn_writes += 1,
            FaultEvent::GatherFlip { .. } => self.gather_flips += 1,
            FaultEvent::StaleRead { .. } => self.stale_reads += 1,
            FaultEvent::TornGather { .. } => self.torn_gathers += 1,
            FaultEvent::BitRot { .. } => self.bit_rots += 1,
        }
        self.events.push(event);
    }

    /// A one-line human-readable digest: event counts by kind plus the
    /// distinct scatter sequence numbers (rounds) the faults landed in.
    /// This is what [`crate::Tracer`] prints, so a recovery report and a
    /// trace can be correlated by eye.
    pub fn summary(&self) -> String {
        if self.is_empty() {
            return "no faults injected".to_string();
        }
        let mut seqs: Vec<u64> = self
            .events
            .iter()
            .map(|e| match e {
                FaultEvent::LaneDropped { sequence, .. }
                | FaultEvent::TornWrite { sequence, .. }
                | FaultEvent::GatherFlip { sequence, .. }
                | FaultEvent::StaleRead { sequence, .. }
                | FaultEvent::TornGather { sequence, .. }
                | FaultEvent::BitRot { sequence, .. } => *sequence,
            })
            .collect();
        seqs.sort_unstable();
        seqs.dedup();
        let shown: Vec<String> = seqs.iter().take(8).map(u64::to_string).collect();
        let ellipsis = if seqs.len() > 8 { ", …" } else { "" };
        let mut parts = vec![
            format!("{} dropped lane(s)", self.dropped_lanes),
            format!("{} torn write(s)", self.torn_writes),
        ];
        if self.read_faults() > 0 {
            parts.push(format!(
                "{} read fault(s) ({} flip, {} stale, {} torn)",
                self.read_faults(),
                self.gather_flips,
                self.stale_reads,
                self.torn_gathers
            ));
        }
        if self.bit_rots > 0 {
            parts.push(format!("{} rotted word(s)", self.bit_rots));
        }
        format!(
            "{} fault(s): {} across {} scatter(s) [seq {}{}]",
            self.len(),
            parts.join(", "),
            seqs.len(),
            shown.join(", "),
            ellipsis,
        )
    }
}

impl std::fmt::Display for FaultLog {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.summary())
    }
}

/// SplitMix64-style avalanche of three words — the deterministic coin every
/// fault decision flips. Public within the crate so the adversarial conflict
/// policy can share it.
pub(crate) fn hash3(a: u64, b: u64, c: u64) -> u64 {
    let mut z = a
        .wrapping_add(b.wrapping_mul(0x9E3779B97F4A7C15))
        .wrapping_add(c.wrapping_mul(0xBF58476D1CE4E5B9));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn benign_plan_never_fires() {
        let plan = FaultPlan::benign(7);
        assert!(!plan.violates_els());
        for seq in 0..64 {
            for lane in 0..64 {
                assert!(!plan.lane_dropped(seq, lane));
            }
            assert_eq!(plan.torn_value(seq, 3, &[1, 2]), None);
        }
    }

    #[test]
    fn drop_rate_is_roughly_honoured_and_deterministic() {
        let plan = FaultPlan::dropped_lanes(42, 16384); // ~25%
        let fired: Vec<bool> = (0..4096).map(|lane| plan.lane_dropped(1, lane)).collect();
        let count = fired.iter().filter(|&&f| f).count();
        assert!((600..1500).contains(&count), "~25% of 4096, got {count}");
        // Replaying gives the identical pattern.
        let replay: Vec<bool> = (0..4096).map(|lane| plan.lane_dropped(1, lane)).collect();
        assert_eq!(fired, replay);
        assert!(plan.violates_els());
    }

    #[test]
    fn torn_writes_combine_per_mode() {
        assert_eq!(AmalgamMode::Xor.combine(&[0b1100, 0b1010]), 0b0110);
        assert_eq!(AmalgamMode::Or.combine(&[0b1100, 0b1010]), 0b1110);
        assert_eq!(AmalgamMode::And.combine(&[0b1100, 0b1010]), 0b1000);
        let plan = FaultPlan::torn_writes(3, u16::MAX, AmalgamMode::Or);
        assert_eq!(plan.torn_value(0, 5, &[1, 2]), Some(3));
        // A lone writer can never tear.
        assert_eq!(plan.torn_value(0, 5, &[1]), None);
    }

    #[test]
    fn window_limits_the_blast_radius() {
        let plan = FaultPlan::dropped_lanes(9, u16::MAX).with_window(10, 20);
        assert!(!plan.lane_dropped(9, 0));
        assert!(plan.lane_dropped(10, 0));
        assert!(plan.lane_dropped(19, 0));
        assert!(!plan.lane_dropped(20, 0));
    }

    #[test]
    fn log_counts_by_kind() {
        let mut log = FaultLog::default();
        assert!(log.is_empty());
        log.record(FaultEvent::LaneDropped {
            sequence: 1,
            lane: 2,
            addr: 3,
        });
        log.record(FaultEvent::TornWrite {
            sequence: 1,
            addr: 3,
            amalgam: 7,
        });
        log.record(FaultEvent::TornWrite {
            sequence: 2,
            addr: 4,
            amalgam: 8,
        });
        assert_eq!(log.dropped_lanes(), 1);
        assert_eq!(log.torn_writes(), 2);
        assert_eq!(log.len(), 3);
        assert_eq!(log.events().len(), 3);
    }

    #[test]
    fn summary_digests_events_by_kind_and_round() {
        let mut log = FaultLog::default();
        assert_eq!(log.summary(), "no faults injected");
        log.record(FaultEvent::LaneDropped {
            sequence: 1,
            lane: 2,
            addr: 3,
        });
        log.record(FaultEvent::TornWrite {
            sequence: 1,
            addr: 3,
            amalgam: 7,
        });
        log.record(FaultEvent::TornWrite {
            sequence: 4,
            addr: 4,
            amalgam: 8,
        });
        let s = log.summary();
        assert!(s.contains("3 fault(s)"), "{s}");
        assert!(s.contains("1 dropped lane(s)"), "{s}");
        assert!(s.contains("2 torn write(s)"), "{s}");
        assert!(s.contains("2 scatter(s)"), "{s}");
        assert!(s.contains("seq 1, 4"), "{s}");
        assert_eq!(format!("{log}"), s);
    }

    #[test]
    fn with_seed_preserves_rates_and_window() {
        let plan = FaultPlan::dropped_lanes(1, 8192).with_window(5, 10);
        let reseeded = plan.clone().with_seed(2);
        assert_eq!(reseeded.seed(), 2);
        assert!(reseeded.violates_els());
        // Window carried over; pattern differs because the seed differs.
        assert!(!reseeded.lane_dropped(4, 0) || !plan.lane_dropped(4, 0));
        let pa: Vec<bool> = (0..512).map(|l| plan.lane_dropped(6, l)).collect();
        let pb: Vec<bool> = (0..512).map(|l| reseeded.lane_dropped(6, l)).collect();
        assert_ne!(pa, pb);
    }

    #[test]
    fn sticky_lanes_always_drop_and_only_those() {
        let plan = FaultPlan::sticky_lanes(3, (1 << 5) | (1 << 40));
        assert!(plan.violates_els());
        assert_eq!(plan.sticky_lane_bits(), (1 << 5) | (1 << 40));
        for seq in 0..64 {
            assert!(plan.sticky_dropped(seq, 5));
            assert!(plan.sticky_dropped(seq, 40));
            assert!(!plan.sticky_dropped(seq, 4));
            assert!(!plan.sticky_dropped(seq, 63));
            // Sticky faults are independent of the stochastic model.
            assert!(!plan.lane_dropped(seq, 5));
        }
        // Out-of-range lanes never stick.
        assert!(!plan.sticky_dropped(0, 64));
    }

    #[test]
    fn sticky_lanes_respect_the_window() {
        let plan = FaultPlan::benign(1)
            .with_sticky_lanes(1 << 2)
            .with_window(10, 20);
        assert!(!plan.sticky_dropped(9, 2));
        assert!(plan.sticky_dropped(10, 2));
        assert!(!plan.sticky_dropped(20, 2));
    }

    #[test]
    fn different_seeds_fault_differently() {
        let a = FaultPlan::dropped_lanes(1, 8192);
        let b = FaultPlan::dropped_lanes(2, 8192);
        let pa: Vec<bool> = (0..512).map(|l| a.lane_dropped(0, l)).collect();
        let pb: Vec<bool> = (0..512).map(|l| b.lane_dropped(0, l)).collect();
        assert_ne!(pa, pb);
    }

    #[test]
    fn gather_fault_predicates_are_deterministic_and_rated() {
        let plan = FaultPlan::gather_flips(11, 16384)
            .with_stale_reads(16384)
            .with_torn_gathers(16384);
        assert!(plan.corrupts_reads());
        assert!(!plan.violates_els(), "read faults are not write faults");
        assert!(plan.needs_stale_shadow());
        let flips: Vec<Option<u32>> = (0..4096).map(|l| plan.gather_flipped(1, l)).collect();
        let fired = flips.iter().filter(|f| f.is_some()).count();
        assert!((600..1500).contains(&fired), "~25% of 4096, got {fired}");
        assert!(flips.iter().flatten().all(|&b| b < 64));
        let replay: Vec<Option<u32>> = (0..4096).map(|l| plan.gather_flipped(1, l)).collect();
        assert_eq!(flips, replay);
        let stale = (0..4096).filter(|&l| plan.stale_read(1, l)).count();
        let torn = (0..4096).filter(|&l| plan.torn_gather(1, l)).count();
        assert!((600..1500).contains(&stale), "{stale}");
        assert!((600..1500).contains(&torn), "{torn}");
    }

    #[test]
    fn gather_faults_respect_the_window() {
        let plan = FaultPlan::gather_flips(5, u16::MAX).with_window(10, 20);
        assert!(plan.gather_flipped(9, 0).is_none());
        assert!(plan.gather_flipped(10, 0).is_some());
        assert!(plan.gather_flipped(20, 0).is_none());
    }

    #[test]
    fn bit_rot_rate_decays_by_half_lives() {
        let plan = FaultPlan::bit_rot(7, 32768);
        assert!(plan.rots_memory());
        assert!(!plan.violates_els());
        assert_eq!(plan.rot_rate_at(0), 32768);
        assert_eq!(plan.rot_rate_at(FaultPlan::ROT_HALF_LIFE - 1), 32768);
        assert_eq!(plan.rot_rate_at(FaultPlan::ROT_HALF_LIFE), 16384);
        assert_eq!(plan.rot_rate_at(4 * FaultPlan::ROT_HALF_LIFE), 2048);
        // After enough half-lives the adversary is genuinely gone.
        assert_eq!(plan.rot_rate_at(16 * FaultPlan::ROT_HALF_LIFE), 0);
        assert_eq!(plan.rotted(16 * FaultPlan::ROT_HALF_LIFE, 3), None);
        // Early on it fires deterministically at a roughly honoured rate.
        let fired = (0..4096u64)
            .filter(|&a| plan.rotted(1, a as Addr).is_some())
            .count();
        assert!((1300..2800).contains(&fired), "~50% of 4096, got {fired}");
    }

    #[test]
    fn read_and_rot_events_are_counted_by_kind() {
        let mut log = FaultLog::default();
        log.record(FaultEvent::GatherFlip {
            sequence: 1,
            lane: 0,
            addr: 2,
            bit: 5,
        });
        log.record(FaultEvent::StaleRead {
            sequence: 1,
            lane: 1,
            addr: 3,
            stale: -7,
        });
        log.record(FaultEvent::TornGather {
            sequence: 2,
            lane: 0,
            addr: 4,
            amalgam: 9,
        });
        log.record(FaultEvent::BitRot {
            sequence: 3,
            addr: 5,
            bit: 63,
        });
        assert_eq!(log.gather_flips(), 1);
        assert_eq!(log.stale_reads(), 1);
        assert_eq!(log.torn_gathers(), 1);
        assert_eq!(log.bit_rots(), 1);
        assert_eq!(log.read_faults(), 3);
        let s = log.summary();
        assert!(s.contains("3 read fault(s)"), "{s}");
        assert!(s.contains("1 rotted word(s)"), "{s}");
        assert!(s.contains("3 scatter(s)"), "{s}");
    }
}
