//! Execution backends: the data-plane compute seam behind the [`Machine`]
//! kernels.
//!
//! The simulator proves the paper's *relative* claims in modelled cycles;
//! making the ratios absolute requires running the same kernels on real
//! hardware lanes. This module extracts the pure data-plane compute of the
//! hot [`Machine`] instructions — gather, last-wins scatter, elementwise
//! ALU, compares, mask algebra, select, compress, prefix/reduction, iota and
//! splat — behind the [`LaneEngine`] trait, so the machine can swap *how*
//! elements are computed without touching *what is observable*:
//!
//! * the **control plane never moves**: cost charging, fault injection,
//!   journaling, incremental checksums, lane health, ELS auditing and the
//!   stale-read shadow all stay in [`Machine`], which only delegates to the
//!   engine on paths where none of those features can observe a difference
//!   (and falls back to its canonical slow path everywhere else);
//! * every engine must be **bit-for-bit equivalent** on the delegated
//!   kernels — the differential suite in `fol-simd` holds all backends to
//!   `content_digest` equality across the full workload × chaos matrix.
//!
//! Two engines live here (both safe Rust): [`SimEngine`], the reference
//! semantics the simulator has always had, and [`ScalarEngine`], a portable
//! unrolled fallback. The real hardware-lane engine (`std::arch` AVX2 with
//! runtime feature detection) lives in the `fol-simd` crate, because this
//! crate forbids `unsafe`.
//!
//! [`Machine`]: crate::Machine

use crate::machine::{AluOp, CmpOp};
use crate::memory::Region;
use crate::vreg::Word;

/// Which execution backend a machine (or a config) selects.
///
/// `Sim` and `Scalar` are constructible from this crate
/// ([`engine_of`]); `Avx2` needs the `fol-simd` crate, whose selector
/// performs runtime feature detection and falls back to `Scalar` when the
/// hardware (or the build) lacks the lanes.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum BackendKind {
    /// The cost-model simulator's reference implementation (the default).
    #[default]
    Sim,
    /// Portable scalar-unrolled fallback.
    Scalar,
    /// Hardware lanes via `std::arch` AVX2 (requires `fol-simd`; falls back
    /// to [`BackendKind::Scalar`] when AVX2 is not detected at runtime).
    Avx2,
}

impl BackendKind {
    /// Canonical lowercase name, stable across releases (used in bench
    /// artifacts and config files).
    pub fn as_str(&self) -> &'static str {
        match self {
            BackendKind::Sim => "sim",
            BackendKind::Scalar => "scalar",
            BackendKind::Avx2 => "avx2",
        }
    }

    /// Parses the [`BackendKind::as_str`] form back (case-insensitive).
    pub fn parse(s: &str) -> Option<BackendKind> {
        match s.to_ascii_lowercase().as_str() {
            "sim" => Some(BackendKind::Sim),
            "scalar" => Some(BackendKind::Scalar),
            "avx2" => Some(BackendKind::Avx2),
            _ => None,
        }
    }
}

impl std::fmt::Display for BackendKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// The data-plane compute contract behind the [`Machine`](crate::Machine)
/// hot kernels.
///
/// Implementations MUST be pure element-wise compute, bit-identical to
/// [`SimEngine`] on every method: the machine delegates only where the
/// control plane (faults, journal, checksums, policies other than
/// last-wins) cannot observe the difference, and the differential suite
/// enforces digest equality across backends. In particular:
///
/// * `gather`/`scatter_*` receive the target region's words as a local
///   slice (`words[i]` is region element `i`) plus the [`Region`] handle
///   for error attribution; indices must be validated exactly like
///   [`Machine::gather`](crate::Machine::gather) — negative or
///   out-of-range indices panic with the canonical message (use
///   [`bad_index`]), in lane order;
/// * `scatter_last_wins*` resolves duplicate indices by element order
///   (the highest-numbered lane wins) — the semantics of
///   [`ConflictPolicy::LastWins`](crate::ConflictPolicy::LastWins) and of
///   `scatter_ordered`;
/// * `alu*` returns `Err(lane)` for the **lowest** lane that trapped
///   (division/remainder/modulus by zero), computing nothing observable
///   beyond the trap; arithmetic wraps exactly like
///   [`AluOp::checked_apply`];
/// * shift counts take the low six bits of the right operand, matching
///   `i64::wrapping_shl(b as u32)`.
pub trait LaneEngine: Send + Sync {
    /// Stable engine name for reports and bench artifacts (e.g. `"avx2"`).
    fn name(&self) -> &'static str;

    /// The [`BackendKind`] this engine implements.
    fn kind(&self) -> BackendKind;

    /// `out[i] = words[idx[i]]` with full bounds validation (see trait docs).
    fn gather(&self, words: &[Word], region: Region, idx: &[Word]) -> Vec<Word>;

    /// `words[idx[i]] = val[i]`, duplicate indices resolved last-wins in
    /// element order.
    fn scatter_last_wins(&self, words: &mut [Word], region: Region, idx: &[Word], val: &[Word]);

    /// Masked form of [`LaneEngine::scatter_last_wins`]: lanes with a false
    /// mask bit are suppressed (their indices are never validated, exactly
    /// like the machine's slow path, which filters before addressing).
    fn scatter_last_wins_masked(
        &self,
        words: &mut [Word],
        region: Region,
        idx: &[Word],
        val: &[Word],
        mask: &[bool],
    );

    /// Elementwise `op`; `Err(lane)` is the lowest trapping lane.
    fn alu(&self, op: AluOp, a: &[Word], b: &[Word]) -> Result<Vec<Word>, usize>;

    /// Elementwise `op` against a broadcast scalar.
    fn alu_s(&self, op: AluOp, a: &[Word], s: Word) -> Result<Vec<Word>, usize>;

    /// Masked elementwise `op`: false lanes keep `a` and cannot trap.
    fn alu_masked(
        &self,
        op: AluOp,
        a: &[Word],
        b: &[Word],
        mask: &[bool],
    ) -> Result<Vec<Word>, usize>;

    /// Elementwise compare producing mask bits.
    fn cmp(&self, op: CmpOp, a: &[Word], b: &[Word]) -> Vec<bool>;

    /// Elementwise compare against a broadcast scalar.
    fn cmp_s(&self, op: CmpOp, a: &[Word], s: Word) -> Vec<bool>;

    /// Mask conjunction.
    fn mask_and(&self, a: &[bool], b: &[bool]) -> Vec<bool>;

    /// Mask disjunction.
    fn mask_or(&self, a: &[bool], b: &[bool]) -> Vec<bool>;

    /// Mask negation.
    fn mask_not(&self, a: &[bool]) -> Vec<bool>;

    /// Merge: `mask[i] ? a[i] : b[i]`.
    fn select(&self, mask: &[bool], a: &[Word], b: &[Word]) -> Vec<Word>;

    /// Left-pack the elements of `a` whose mask bit is true.
    fn compress(&self, a: &[Word], mask: &[bool]) -> Vec<Word>;

    /// Left-pack mask bits by another mask.
    fn compress_mask(&self, a: &[bool], mask: &[bool]) -> Vec<bool>;

    /// Inclusive (wrapping) prefix sum.
    fn prefix_sum(&self, a: &[Word]) -> Vec<Word>;

    /// Wrapping sum of all elements.
    fn sum(&self, a: &[Word]) -> Word;

    /// Minimum element, `None` when empty.
    fn min(&self, a: &[Word]) -> Option<Word>;

    /// Maximum element, `None` when empty.
    fn max(&self, a: &[Word]) -> Option<Word>;

    /// `[start, start+1, …, start+n-1]`.
    fn iota(&self, start: Word, n: usize) -> Vec<Word>;

    /// `n` copies of `s`.
    fn splat(&self, s: Word, n: usize) -> Vec<Word>;
}

/// Panics with the canonical index-validation message of the machine's
/// addressing path — every engine routes its bounds failures through here so
/// a workload overrun reports identically on all backends.
#[cold]
#[track_caller]
pub fn bad_index(region: Region, idx: Word) -> ! {
    match usize::try_from(idx) {
        Err(_) => panic!("negative index {idx} into {region:?}"),
        Ok(i) => panic!("index {i} out of bounds of {region:?}"),
    }
}

/// Validates one region-local index, returning it as a `usize`.
#[inline]
#[track_caller]
pub fn checked_index(words_len: usize, region: Region, idx: Word) -> usize {
    match usize::try_from(idx) {
        Ok(i) if i < words_len => i,
        _ => bad_index(region, idx),
    }
}

/// Constructs the portable engines this crate can build. Returns `None`
/// for [`BackendKind::Avx2`], which needs the `fol-simd` crate's selector
/// (runtime feature detection lives there).
pub fn engine_of(kind: BackendKind) -> Option<Box<dyn LaneEngine>> {
    match kind {
        BackendKind::Sim => Some(Box::new(SimEngine)),
        BackendKind::Scalar => Some(Box::new(ScalarEngine)),
        BackendKind::Avx2 => None,
    }
}

/// The reference engine: the iterator-style semantics the simulator has
/// always had, now expressed behind the backend seam. This is the oracle
/// every other engine is differentially tested against.
#[derive(Clone, Copy, Debug, Default)]
pub struct SimEngine;

impl LaneEngine for SimEngine {
    fn name(&self) -> &'static str {
        "sim"
    }

    fn kind(&self) -> BackendKind {
        BackendKind::Sim
    }

    #[track_caller]
    fn gather(&self, words: &[Word], region: Region, idx: &[Word]) -> Vec<Word> {
        idx.iter()
            .map(|&i| words[checked_index(words.len(), region, i)])
            .collect()
    }

    #[track_caller]
    fn scatter_last_wins(&self, words: &mut [Word], region: Region, idx: &[Word], val: &[Word]) {
        for (&i, &v) in idx.iter().zip(val) {
            words[checked_index(words.len(), region, i)] = v;
        }
    }

    #[track_caller]
    fn scatter_last_wins_masked(
        &self,
        words: &mut [Word],
        region: Region,
        idx: &[Word],
        val: &[Word],
        mask: &[bool],
    ) {
        for ((&i, &v), &m) in idx.iter().zip(val).zip(mask) {
            if m {
                words[checked_index(words.len(), region, i)] = v;
            }
        }
    }

    fn alu(&self, op: AluOp, a: &[Word], b: &[Word]) -> Result<Vec<Word>, usize> {
        a.iter()
            .zip(b)
            .enumerate()
            .map(|(lane, (&x, &y))| op.checked_apply(x, y).ok_or(lane))
            .collect()
    }

    fn alu_s(&self, op: AluOp, a: &[Word], s: Word) -> Result<Vec<Word>, usize> {
        a.iter()
            .enumerate()
            .map(|(lane, &x)| op.checked_apply(x, s).ok_or(lane))
            .collect()
    }

    fn alu_masked(
        &self,
        op: AluOp,
        a: &[Word],
        b: &[Word],
        mask: &[bool],
    ) -> Result<Vec<Word>, usize> {
        (0..a.len())
            .map(|lane| {
                if mask[lane] {
                    op.checked_apply(a[lane], b[lane]).ok_or(lane)
                } else {
                    Ok(a[lane])
                }
            })
            .collect()
    }

    fn cmp(&self, op: CmpOp, a: &[Word], b: &[Word]) -> Vec<bool> {
        a.iter().zip(b).map(|(&x, &y)| op.apply(x, y)).collect()
    }

    fn cmp_s(&self, op: CmpOp, a: &[Word], s: Word) -> Vec<bool> {
        a.iter().map(|&x| op.apply(x, s)).collect()
    }

    fn mask_and(&self, a: &[bool], b: &[bool]) -> Vec<bool> {
        a.iter().zip(b).map(|(&x, &y)| x && y).collect()
    }

    fn mask_or(&self, a: &[bool], b: &[bool]) -> Vec<bool> {
        a.iter().zip(b).map(|(&x, &y)| x || y).collect()
    }

    fn mask_not(&self, a: &[bool]) -> Vec<bool> {
        a.iter().map(|&x| !x).collect()
    }

    fn select(&self, mask: &[bool], a: &[Word], b: &[Word]) -> Vec<Word> {
        (0..a.len())
            .map(|i| if mask[i] { a[i] } else { b[i] })
            .collect()
    }

    fn compress(&self, a: &[Word], mask: &[bool]) -> Vec<Word> {
        a.iter()
            .zip(mask)
            .filter(|&(_, &m)| m)
            .map(|(&x, _)| x)
            .collect()
    }

    fn compress_mask(&self, a: &[bool], mask: &[bool]) -> Vec<bool> {
        a.iter()
            .zip(mask)
            .filter(|&(_, &m)| m)
            .map(|(&x, _)| x)
            .collect()
    }

    fn prefix_sum(&self, a: &[Word]) -> Vec<Word> {
        let mut acc: Word = 0;
        a.iter()
            .map(|&x| {
                acc = acc.wrapping_add(x);
                acc
            })
            .collect()
    }

    fn sum(&self, a: &[Word]) -> Word {
        a.iter().copied().fold(0, Word::wrapping_add)
    }

    fn min(&self, a: &[Word]) -> Option<Word> {
        a.iter().copied().min()
    }

    fn max(&self, a: &[Word]) -> Option<Word> {
        a.iter().copied().max()
    }

    fn iota(&self, start: Word, n: usize) -> Vec<Word> {
        (start..start + n as Word).collect()
    }

    fn splat(&self, s: Word, n: usize) -> Vec<Word> {
        vec![s; n]
    }
}

/// Portable scalar-unrolled fallback: the same semantics as [`SimEngine`],
/// written as explicit four-wide unrolled loops over pre-sized buffers — the
/// shape an optimizer autovectorizes where it can, and the shape the AVX2
/// engine in `fol-simd` falls back to lane-for-lane when hardware support
/// is absent.
#[derive(Clone, Copy, Debug, Default)]
pub struct ScalarEngine;

/// Unroll width of the scalar fallback (and lane width of the AVX2 engine).
pub const UNROLL: usize = 4;

impl LaneEngine for ScalarEngine {
    fn name(&self) -> &'static str {
        "scalar"
    }

    fn kind(&self) -> BackendKind {
        BackendKind::Scalar
    }

    #[track_caller]
    fn gather(&self, words: &[Word], region: Region, idx: &[Word]) -> Vec<Word> {
        let n = idx.len();
        let len = words.len();
        let mut out = vec![0; n];
        let mut p = 0;
        while p + UNROLL <= n {
            // In-bounds test for the whole block first; any failure re-runs
            // the block element-by-element so the panic names the *first*
            // offending lane, exactly like the reference engine.
            let (i0, i1, i2, i3) = (idx[p], idx[p + 1], idx[p + 2], idx[p + 3]);
            let ok = in_bounds(i0, len)
                && in_bounds(i1, len)
                && in_bounds(i2, len)
                && in_bounds(i3, len);
            if !ok {
                for &i in &idx[p..p + UNROLL] {
                    let _ = checked_index(len, region, i);
                }
            }
            out[p] = words[i0 as usize];
            out[p + 1] = words[i1 as usize];
            out[p + 2] = words[i2 as usize];
            out[p + 3] = words[i3 as usize];
            p += UNROLL;
        }
        for q in p..n {
            out[q] = words[checked_index(len, region, idx[q])];
        }
        out
    }

    #[track_caller]
    fn scatter_last_wins(&self, words: &mut [Word], region: Region, idx: &[Word], val: &[Word]) {
        let n = idx.len();
        let len = words.len();
        let mut p = 0;
        while p + UNROLL <= n {
            let (i0, i1, i2, i3) = (idx[p], idx[p + 1], idx[p + 2], idx[p + 3]);
            let ok = in_bounds(i0, len)
                && in_bounds(i1, len)
                && in_bounds(i2, len)
                && in_bounds(i3, len);
            if !ok {
                for &i in &idx[p..p + UNROLL] {
                    let _ = checked_index(len, region, i);
                }
            }
            // Sequential stores preserve last-wins on duplicates.
            words[i0 as usize] = val[p];
            words[i1 as usize] = val[p + 1];
            words[i2 as usize] = val[p + 2];
            words[i3 as usize] = val[p + 3];
            p += UNROLL;
        }
        for q in p..n {
            words[checked_index(len, region, idx[q])] = val[q];
        }
    }

    #[track_caller]
    fn scatter_last_wins_masked(
        &self,
        words: &mut [Word],
        region: Region,
        idx: &[Word],
        val: &[Word],
        mask: &[bool],
    ) {
        let len = words.len();
        for q in 0..idx.len() {
            if mask[q] {
                words[checked_index(len, region, idx[q])] = val[q];
            }
        }
    }

    fn alu(&self, op: AluOp, a: &[Word], b: &[Word]) -> Result<Vec<Word>, usize> {
        let mut out = vec![0; a.len()];
        for (lane, slot) in out.iter_mut().enumerate() {
            *slot = op.checked_apply(a[lane], b[lane]).ok_or(lane)?;
        }
        Ok(out)
    }

    fn alu_s(&self, op: AluOp, a: &[Word], s: Word) -> Result<Vec<Word>, usize> {
        let mut out = vec![0; a.len()];
        for (lane, slot) in out.iter_mut().enumerate() {
            *slot = op.checked_apply(a[lane], s).ok_or(lane)?;
        }
        Ok(out)
    }

    fn alu_masked(
        &self,
        op: AluOp,
        a: &[Word],
        b: &[Word],
        mask: &[bool],
    ) -> Result<Vec<Word>, usize> {
        let mut out = vec![0; a.len()];
        for (lane, slot) in out.iter_mut().enumerate() {
            *slot = if mask[lane] {
                op.checked_apply(a[lane], b[lane]).ok_or(lane)?
            } else {
                a[lane]
            };
        }
        Ok(out)
    }

    fn cmp(&self, op: CmpOp, a: &[Word], b: &[Word]) -> Vec<bool> {
        let mut out = vec![false; a.len()];
        for (lane, slot) in out.iter_mut().enumerate() {
            *slot = op.apply(a[lane], b[lane]);
        }
        out
    }

    fn cmp_s(&self, op: CmpOp, a: &[Word], s: Word) -> Vec<bool> {
        let mut out = vec![false; a.len()];
        for (lane, slot) in out.iter_mut().enumerate() {
            *slot = op.apply(a[lane], s);
        }
        out
    }

    fn mask_and(&self, a: &[bool], b: &[bool]) -> Vec<bool> {
        let mut out = vec![false; a.len()];
        for (lane, slot) in out.iter_mut().enumerate() {
            *slot = a[lane] && b[lane];
        }
        out
    }

    fn mask_or(&self, a: &[bool], b: &[bool]) -> Vec<bool> {
        let mut out = vec![false; a.len()];
        for (lane, slot) in out.iter_mut().enumerate() {
            *slot = a[lane] || b[lane];
        }
        out
    }

    fn mask_not(&self, a: &[bool]) -> Vec<bool> {
        let mut out = vec![false; a.len()];
        for (lane, slot) in out.iter_mut().enumerate() {
            *slot = !a[lane];
        }
        out
    }

    fn select(&self, mask: &[bool], a: &[Word], b: &[Word]) -> Vec<Word> {
        let mut out = vec![0; a.len()];
        for (lane, slot) in out.iter_mut().enumerate() {
            *slot = if mask[lane] { a[lane] } else { b[lane] };
        }
        out
    }

    fn compress(&self, a: &[Word], mask: &[bool]) -> Vec<Word> {
        let mut out = Vec::with_capacity(a.len());
        for (lane, &x) in a.iter().enumerate() {
            if mask[lane] {
                out.push(x);
            }
        }
        out
    }

    fn compress_mask(&self, a: &[bool], mask: &[bool]) -> Vec<bool> {
        let mut out = Vec::with_capacity(a.len());
        for (lane, &x) in a.iter().enumerate() {
            if mask[lane] {
                out.push(x);
            }
        }
        out
    }

    fn prefix_sum(&self, a: &[Word]) -> Vec<Word> {
        let mut out = vec![0; a.len()];
        let mut acc: Word = 0;
        for (lane, slot) in out.iter_mut().enumerate() {
            acc = acc.wrapping_add(a[lane]);
            *slot = acc;
        }
        out
    }

    fn sum(&self, a: &[Word]) -> Word {
        let mut acc: [Word; UNROLL] = [0; UNROLL];
        let mut chunks = a.chunks_exact(UNROLL);
        for c in &mut chunks {
            for (s, &x) in acc.iter_mut().zip(c) {
                *s = s.wrapping_add(x);
            }
        }
        let mut total = acc.iter().copied().fold(0, Word::wrapping_add);
        for &x in chunks.remainder() {
            total = total.wrapping_add(x);
        }
        total
    }

    fn min(&self, a: &[Word]) -> Option<Word> {
        a.iter().copied().min()
    }

    fn max(&self, a: &[Word]) -> Option<Word> {
        a.iter().copied().max()
    }

    fn iota(&self, start: Word, n: usize) -> Vec<Word> {
        let mut out = vec![0; n];
        for (i, slot) in out.iter_mut().enumerate() {
            *slot = start + i as Word;
        }
        out
    }

    fn splat(&self, s: Word, n: usize) -> Vec<Word> {
        vec![s; n]
    }
}

#[inline]
fn in_bounds(idx: Word, len: usize) -> bool {
    (idx as u64) < len as u64 && idx >= 0
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memory::Memory;

    fn engines() -> Vec<Box<dyn LaneEngine>> {
        vec![Box::new(SimEngine), Box::new(ScalarEngine)]
    }

    #[test]
    fn kind_name_round_trip() {
        for kind in [BackendKind::Sim, BackendKind::Scalar, BackendKind::Avx2] {
            assert_eq!(BackendKind::parse(kind.as_str()), Some(kind));
            assert_eq!(
                BackendKind::parse(&kind.to_string().to_uppercase()),
                Some(kind)
            );
        }
        assert_eq!(BackendKind::parse("vliw"), None);
        assert_eq!(BackendKind::default(), BackendKind::Sim);
    }

    #[test]
    fn engine_of_builds_portable_kinds() {
        assert_eq!(engine_of(BackendKind::Sim).unwrap().name(), "sim");
        assert_eq!(
            engine_of(BackendKind::Scalar).unwrap().kind(),
            BackendKind::Scalar
        );
        assert!(
            engine_of(BackendKind::Avx2).is_none(),
            "avx2 lives in fol-simd"
        );
    }

    #[test]
    fn scalar_matches_sim_on_every_kernel() {
        let sim = SimEngine;
        let sc = ScalarEngine;
        let mut mem = Memory::new();
        let region = mem.alloc(16, "r");
        for n in [0usize, 1, 3, 4, 5, 7, 8, 9, 31] {
            let a: Vec<Word> = (0..n as Word).map(|i| i * 3 - 7).collect();
            let b: Vec<Word> = (0..n as Word).map(|i| (i % 5) - 2).collect();
            let idx: Vec<Word> = (0..n as Word).map(|i| (i * 7) % 16).collect();
            let mask: Vec<bool> = (0..n).map(|i| i % 3 != 1).collect();
            let mut w1 = vec![0; 16];
            let mut w2 = vec![0; 16];
            sim.scatter_last_wins(&mut w1, region, &idx, &a);
            sc.scatter_last_wins(&mut w2, region, &idx, &a);
            assert_eq!(w1, w2, "scatter n={n}");
            sim.scatter_last_wins_masked(&mut w1, region, &idx, &b, &mask);
            sc.scatter_last_wins_masked(&mut w2, region, &idx, &b, &mask);
            assert_eq!(w1, w2, "masked scatter n={n}");
            assert_eq!(sim.gather(&w1, region, &idx), sc.gather(&w2, region, &idx));
            for op in [
                AluOp::Add,
                AluOp::Sub,
                AluOp::Mul,
                AluOp::Div,
                AluOp::Rem,
                AluOp::Mod,
                AluOp::And,
                AluOp::Or,
                AluOp::Xor,
                AluOp::Shl,
                AluOp::Shr,
                AluOp::Min,
                AluOp::Max,
            ] {
                assert_eq!(sim.alu(op, &a, &b), sc.alu(op, &a, &b), "{op:?} n={n}");
                assert_eq!(sim.alu_s(op, &a, 3), sc.alu_s(op, &a, 3));
                assert_eq!(
                    sim.alu_masked(op, &a, &b, &mask),
                    sc.alu_masked(op, &a, &b, &mask)
                );
            }
            for op in [
                CmpOp::Eq,
                CmpOp::Ne,
                CmpOp::Lt,
                CmpOp::Le,
                CmpOp::Gt,
                CmpOp::Ge,
            ] {
                assert_eq!(sim.cmp(op, &a, &b), sc.cmp(op, &a, &b));
                assert_eq!(sim.cmp_s(op, &a, 0), sc.cmp_s(op, &a, 0));
            }
            let m2: Vec<bool> = (0..n).map(|i| i % 2 == 0).collect();
            assert_eq!(sim.mask_and(&mask, &m2), sc.mask_and(&mask, &m2));
            assert_eq!(sim.mask_or(&mask, &m2), sc.mask_or(&mask, &m2));
            assert_eq!(sim.mask_not(&mask), sc.mask_not(&mask));
            assert_eq!(sim.select(&mask, &a, &b), sc.select(&mask, &a, &b));
            assert_eq!(sim.compress(&a, &mask), sc.compress(&a, &mask));
            assert_eq!(sim.compress_mask(&m2, &mask), sc.compress_mask(&m2, &mask));
            assert_eq!(sim.prefix_sum(&a), sc.prefix_sum(&a));
            assert_eq!(sim.sum(&a), sc.sum(&a));
            assert_eq!(sim.min(&a), sc.min(&a));
            assert_eq!(sim.max(&a), sc.max(&a));
            assert_eq!(sim.iota(-3, n), sc.iota(-3, n));
            assert_eq!(sim.splat(9, n), sc.splat(9, n));
        }
    }

    #[test]
    fn shift_counts_take_low_six_bits() {
        // wrapping_shl(b as u32) keeps the low 6 bits of b; engines must too.
        for e in engines() {
            let a = vec![1, 1, -8, 5];
            let b = vec![65, -1, 2, 70];
            let got = e.alu(AluOp::Shl, &a, &b).unwrap();
            assert_eq!(got, vec![2, i64::MIN, -32, 320], "{}", e.name());
            let sh = e.alu(AluOp::Shr, &a, &b).unwrap();
            assert_eq!(sh, vec![0, 1 >> 63, -2, 0], "{}", e.name());
        }
    }

    #[test]
    fn trap_reports_lowest_lane() {
        for e in engines() {
            let a = vec![1, 2, 3, 4, 5];
            let b = vec![1, 0, 1, 0, 1];
            assert_eq!(e.alu(AluOp::Div, &a, &b), Err(1), "{}", e.name());
            assert_eq!(e.alu_s(AluOp::Rem, &a, 0), Err(0));
            let mask = vec![false, false, true, true, false];
            assert_eq!(e.alu_masked(AluOp::Mod, &a, &b, &mask), Err(3));
        }
    }

    #[test]
    #[should_panic(expected = "negative index")]
    fn scalar_gather_panics_on_negative_index() {
        let mut mem = Memory::new();
        let r = mem.alloc(4, "r");
        let _ = ScalarEngine.gather(&[0; 4], r, &[0, 1, -2, 3]);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn scalar_scatter_panics_out_of_bounds() {
        let mut mem = Memory::new();
        let r = mem.alloc(4, "r");
        ScalarEngine.scatter_last_wins(&mut [0; 4], r, &[0, 4], &[1, 2]);
    }
}
