//! Write journaling and byte-exact snapshots — the machine's transaction
//! substrate.
//!
//! The fault layer ([`crate::fault`]) makes ELS violations *observable*; this
//! module makes them *recoverable*. While a transaction is open
//! ([`crate::Machine::begin_txn`]), every instruction-level store is
//! intercepted and the **pre-image** of the touched address is recorded on
//! first write (later writes to the same address keep the original
//! pre-image). [`crate::Machine::abort_txn`] replays the pre-images,
//! restoring memory byte-exact to its state at `begin_txn`;
//! [`crate::Machine::commit_txn`] discards them.
//!
//! The journal is a *logical undo log of first writes*, the privatize-then-
//! reconcile structure of restartable parallel updates: the cost of an
//! aborted round is proportional to the storage that round touched, not to
//! the whole memory. [`Snapshot`] complements it as an independent oracle —
//! tests capture a snapshot before a transaction and assert the rollback
//! really was byte-exact.

use crate::memory::{Addr, Memory, Region};
use crate::vreg::Word;
use std::collections::HashMap;
use std::fmt;
use std::hash::{BuildHasherDefault, Hasher};

/// Multiply-shift hasher for journal addresses. `note` runs on *every*
/// intercepted store, so SipHash's per-lookup cost is the journal's single
/// hottest line; addresses are small dense integers for which a Fibonacci
/// multiply is both collision-safe enough and several times cheaper.
#[derive(Default)]
pub(crate) struct AddrHasher(u64);

impl Hasher for AddrHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        // Generic path (unused by usize keys, kept for completeness).
        for &b in bytes {
            self.0 = (self.0 ^ b as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        }
    }

    fn write_usize(&mut self, i: usize) {
        let x = (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        self.0 = x ^ (x >> 29);
    }

    fn write_u64(&mut self, i: u64) {
        self.write_usize(i as usize);
    }
}

type AddrMap<V> = HashMap<Addr, V, BuildHasherDefault<AddrHasher>>;

/// A byte-exact copy of chosen regions, for before/after comparison.
///
/// Unlike [`WriteJournal`] (which records only what was written, as it is
/// written), a snapshot copies whole regions up front — an independent
/// ground truth the journal's rollback can be audited against.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Snapshot {
    regions: Vec<(Region, Vec<Word>)>,
}

impl Snapshot {
    /// Captures the current contents of `regions` (zero-length regions are
    /// allowed and compare trivially equal).
    pub fn capture(mem: &Memory, regions: &[Region]) -> Self {
        Self {
            regions: regions.iter().map(|&r| (r, mem.read_region(r))).collect(),
        }
    }

    /// True when every captured region currently holds exactly the captured
    /// contents.
    pub fn matches(&self, mem: &Memory) -> bool {
        self.regions
            .iter()
            .all(|(r, saved)| &mem.read_region(*r) == saved)
    }

    /// Addresses whose current contents differ from the capture, in address
    /// order — the forensic view of a torn or unrolled-back round.
    pub fn diff(&self, mem: &Memory) -> Vec<Addr> {
        let mut out = Vec::new();
        for (r, saved) in &self.regions {
            let now = mem.read_region(*r);
            for (i, (a, b)) in saved.iter().zip(&now).enumerate() {
                if a != b {
                    out.push(r.base() + i);
                }
            }
        }
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Writes the captured contents back into `mem` — the repair step for
    /// corruption that bypassed the journal (bit-rot strikes memory behind
    /// the store path, so a rollback alone cannot heal it). The caller owns
    /// resynchronizing any incremental checksums afterwards
    /// ([`crate::Machine::resync_integrity`]).
    pub fn restore(&self, mem: &mut Memory) {
        for (r, saved) in &self.regions {
            mem.write_region(*r, saved);
        }
    }

    /// The captured `(region, contents)` pairs, in capture order — the raw
    /// material the durability layer serializes into a checkpoint.
    pub fn parts(&self) -> &[(Region, Vec<Word>)] {
        &self.regions
    }

    /// Rebuilds a snapshot from serialized parts ([`Snapshot::parts`] is the
    /// inverse). Used by checkpoint loading: the deserialized snapshot is
    /// [`Snapshot::restore`]d into a machine rebuilt with the identical
    /// allocation sequence.
    pub fn from_parts(regions: Vec<(Region, Vec<Word>)>) -> Self {
        Self { regions }
    }

    /// Number of captured regions.
    pub fn num_regions(&self) -> usize {
        self.regions.len()
    }

    /// Total words captured.
    pub fn words(&self) -> usize {
        self.regions.iter().map(|(_, s)| s.len()).sum()
    }
}

/// First-write undo log of one open transaction.
///
/// Records, for every address stored to while the transaction is open, the
/// word that was there *before the first store* — everything needed to
/// restore memory byte-exact, and nothing more.
#[derive(Clone, Debug, Default)]
pub struct WriteJournal {
    /// Pre-image per touched address (first write wins).
    pre: AddrMap<Word>,
    /// Touched addresses in first-write order, for deterministic iteration.
    order: Vec<Addr>,
    /// Total intercepted stores, including repeats to journaled addresses.
    writes: u64,
}

impl WriteJournal {
    /// An empty journal.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records the pre-image of `addr` if this is its first write.
    /// Called by the machine on every intercepted store.
    pub(crate) fn note(&mut self, addr: Addr, pre_image: Word) {
        self.writes += 1;
        if let std::collections::hash_map::Entry::Vacant(e) = self.pre.entry(addr) {
            e.insert(pre_image);
            self.order.push(addr);
        }
    }

    /// Restores every journaled pre-image into `mem` (idempotent: the
    /// journal keeps its entries, so a second rollback rewrites the same
    /// pre-images).
    pub(crate) fn rollback(&self, mem: &mut Memory) {
        // Reverse first-write order: cosmetic for a first-write log (each
        // address appears once), but the conventional direction for an undo
        // log.
        for &addr in self.order.iter().rev() {
            mem.write(addr, self.pre[&addr]);
        }
    }

    /// The journaled `(addr, pre-image)` pairs in reverse first-write order
    /// — the order [`WriteJournal::rollback`] replays them. Exposed so the
    /// machine can roll back through its checksum-maintaining store path
    /// instead of writing behind the integrity layer's back.
    pub fn entries_rev(&self) -> impl Iterator<Item = (Addr, Word)> + '_ {
        self.order.iter().rev().map(move |&a| (a, self.pre[&a]))
    }

    /// Number of distinct addresses journaled.
    pub fn len(&self) -> usize {
        self.order.len()
    }

    /// True when no store has been intercepted.
    pub fn is_empty(&self) -> bool {
        self.order.is_empty()
    }

    /// Total intercepted stores (repeats included) — the write amplification
    /// the journal absorbed.
    pub fn writes(&self) -> u64 {
        self.writes
    }

    /// The journaled pre-image of `addr`, if it was written.
    pub fn pre_image(&self, addr: Addr) -> Option<Word> {
        self.pre.get(&addr).copied()
    }

    /// Journaled addresses in first-write order.
    pub fn addrs(&self) -> impl Iterator<Item = Addr> + '_ {
        self.order.iter().copied()
    }
}

impl fmt::Display for WriteJournal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "journal: {} addrs touched, {} stores intercepted",
            self.len(),
            self.writes
        )
    }
}

/// Transaction-control misuse, returned by the `*_txn` methods.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TxnError {
    /// `begin_txn` while a transaction is already open — the journal is a
    /// single-level undo log; nesting would silently merge undo scopes.
    NestedTransaction,
    /// `commit_txn`/`abort_txn` with no transaction open.
    NoTransaction,
}

impl fmt::Display for TxnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TxnError::NestedTransaction => {
                write!(
                    f,
                    "begin_txn: a transaction is already open (nesting is rejected)"
                )
            }
            TxnError::NoTransaction => write!(f, "commit/abort_txn: no open transaction"),
        }
    }
}

impl std::error::Error for TxnError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn journal_records_first_write_pre_image_only() {
        let mut j = WriteJournal::new();
        j.note(5, 100);
        j.note(5, 777); // second write: pre-image must stay 100
        j.note(3, -1);
        assert_eq!(j.len(), 2);
        assert_eq!(j.writes(), 3);
        assert_eq!(j.pre_image(5), Some(100));
        assert_eq!(j.pre_image(3), Some(-1));
        assert_eq!(j.pre_image(4), None);
        assert_eq!(j.addrs().collect::<Vec<_>>(), vec![5, 3]);
    }

    #[test]
    fn rollback_restores_pre_images() {
        let mut mem = Memory::new();
        let r = mem.alloc(4, "r");
        mem.write_region(r, &[1, 2, 3, 4]);
        let mut j = WriteJournal::new();
        j.note(r.at(1), 2);
        mem.write(r.at(1), 99);
        j.note(r.at(3), 4);
        mem.write(r.at(3), 98);
        j.rollback(&mut mem);
        assert_eq!(mem.read_region(r), vec![1, 2, 3, 4]);
    }

    #[test]
    fn snapshot_capture_matches_diff() {
        let mut mem = Memory::new();
        let a = mem.alloc(3, "a");
        let empty = mem.alloc(0, "empty");
        mem.write_region(a, &[7, 8, 9]);
        let snap = Snapshot::capture(&mem, &[a, empty]);
        assert_eq!(snap.num_regions(), 2);
        assert_eq!(snap.words(), 3);
        assert!(snap.matches(&mem));
        assert!(snap.diff(&mem).is_empty());
        mem.write(a.at(2), -5);
        assert!(!snap.matches(&mem));
        assert_eq!(snap.diff(&mem), vec![a.at(2)]);
        snap.restore(&mut mem);
        assert!(snap.matches(&mem), "restore repairs the divergence");
        assert_eq!(mem.read_region(a), vec![7, 8, 9]);
    }

    #[test]
    fn txn_error_displays() {
        assert!(TxnError::NestedTransaction
            .to_string()
            .contains("already open"));
        assert!(TxnError::NoTransaction
            .to_string()
            .contains("no open transaction"));
    }
}
