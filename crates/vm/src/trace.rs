//! Optional instruction tracing.
//!
//! When enabled on a [`crate::Machine`], every issued instruction is appended
//! to a [`Tracer`]. Traces are used by tests that assert *which* instructions
//! an algorithm issues (e.g. that the FOL inner loop is free of scalar
//! operations, the property the paper calls "performed entirely by vector
//! operations"), and by humans debugging an algorithm's vector schedule.

use crate::cost::OpKind;
use std::fmt;

/// One issued instruction.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceEntry {
    /// Operation kind.
    pub kind: OpKind,
    /// Vector length (or scalar operation count).
    pub n: usize,
    /// Cycles charged.
    pub cycles: u64,
}

impl fmt::Display for TraceEntry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:?}(n={}, cycles={})", self.kind, self.n, self.cycles)
    }
}

/// A recording of issued instructions.
#[derive(Clone, Debug, Default)]
pub struct Tracer {
    entries: Vec<TraceEntry>,
    /// Out-of-band notes pinned to an entry index — e.g. injected faults
    /// (see [`crate::FaultLog::summary`]), so a recovery report and a trace
    /// can be correlated instruction by instruction.
    annotations: Vec<(usize, String)>,
}

impl Tracer {
    /// An empty trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends an entry.
    pub(crate) fn record(&mut self, kind: OpKind, n: usize, cycles: u64) {
        self.entries.push(TraceEntry { kind, n, cycles });
    }

    /// Attaches a note to the position *after* the most recent entry. The
    /// machine uses this to pin every injected fault to the instruction
    /// that suffered it.
    pub fn annotate(&mut self, note: impl Into<String>) {
        self.annotations.push((self.entries.len(), note.into()));
    }

    /// All annotations as `(entry index, note)`, in recording order.
    pub fn annotations(&self) -> &[(usize, String)] {
        &self.annotations
    }

    /// All recorded entries in issue order.
    pub fn entries(&self) -> &[TraceEntry] {
        &self.entries
    }

    /// Number of recorded entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Clears the recording.
    pub fn clear(&mut self) {
        self.entries.clear();
        self.annotations.clear();
    }

    /// Count of entries of one kind.
    pub fn count(&self, kind: OpKind) -> usize {
        self.entries.iter().filter(|e| e.kind == kind).count()
    }

    /// True when the trace contains no scalar operations — the paper's
    /// criterion for a fully vectorized phase.
    pub fn is_fully_vector(&self) -> bool {
        self.entries.iter().all(|e| e.kind.is_vector())
    }
}

impl fmt::Display for Tracer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut notes = self.annotations.iter().peekable();
        while let Some((_, note)) = notes.next_if(|(at, _)| *at == 0) {
            writeln!(f, "      ! {note}")?;
        }
        for (i, e) in self.entries.iter().enumerate() {
            writeln!(f, "{i:4}: {e}")?;
            while let Some((_, note)) = notes.next_if(|(at, _)| *at == i + 1) {
                writeln!(f, "      ! {note}")?;
            }
        }
        // Notes recorded before any entry (or left over after the last).
        for (_, note) in notes {
            writeln!(f, "      ! {note}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_counts() {
        let mut t = Tracer::new();
        assert!(t.is_empty());
        t.record(OpKind::VAlu, 4, 10);
        t.record(OpKind::SLoad, 1, 12);
        t.record(OpKind::VAlu, 8, 20);
        assert_eq!(t.len(), 3);
        assert_eq!(t.count(OpKind::VAlu), 2);
        assert_eq!(t.count(OpKind::VGather), 0);
        assert!(!t.is_fully_vector());
        t.clear();
        assert!(t.is_empty());
    }

    #[test]
    fn fully_vector_detection() {
        let mut t = Tracer::new();
        t.record(OpKind::VGather, 4, 10);
        t.record(OpKind::VCompress, 4, 10);
        assert!(t.is_fully_vector());
    }

    #[test]
    fn annotations_pin_to_the_preceding_entry() {
        let mut t = Tracer::new();
        t.record(OpKind::VScatter, 4, 10);
        t.annotate("fault: lane 2 dropped");
        t.record(OpKind::VGather, 4, 10);
        assert_eq!(t.annotations(), &[(1, "fault: lane 2 dropped".to_string())]);
        let s = format!("{t}");
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].contains("VScatter"));
        assert!(lines[1].contains("! fault: lane 2 dropped"));
        assert!(lines[2].contains("VGather"));
        t.clear();
        assert!(t.annotations().is_empty());
    }

    #[test]
    fn display_is_one_line_per_entry() {
        let mut t = Tracer::new();
        t.record(OpKind::VIota, 3, 5);
        let s = format!("{t}");
        assert_eq!(s.lines().count(), 1);
        assert!(s.contains("VIota(n=3, cycles=5)"));
    }
}
