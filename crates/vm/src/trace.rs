//! Optional instruction tracing.
//!
//! When enabled on a [`crate::Machine`], every issued instruction is appended
//! to a [`Tracer`]. Traces are used by tests that assert *which* instructions
//! an algorithm issues (e.g. that the FOL inner loop is free of scalar
//! operations, the property the paper calls "performed entirely by vector
//! operations"), and by humans debugging an algorithm's vector schedule.

use crate::cost::OpKind;
use std::fmt;

/// One issued instruction.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceEntry {
    /// Operation kind.
    pub kind: OpKind,
    /// Vector length (or scalar operation count).
    pub n: usize,
    /// Cycles charged.
    pub cycles: u64,
}

impl fmt::Display for TraceEntry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:?}(n={}, cycles={})", self.kind, self.n, self.cycles)
    }
}

/// A recording of issued instructions.
#[derive(Clone, Debug, Default)]
pub struct Tracer {
    entries: Vec<TraceEntry>,
}

impl Tracer {
    /// An empty trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends an entry.
    pub(crate) fn record(&mut self, kind: OpKind, n: usize, cycles: u64) {
        self.entries.push(TraceEntry { kind, n, cycles });
    }

    /// All recorded entries in issue order.
    pub fn entries(&self) -> &[TraceEntry] {
        &self.entries
    }

    /// Number of recorded entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Clears the recording.
    pub fn clear(&mut self) {
        self.entries.clear();
    }

    /// Count of entries of one kind.
    pub fn count(&self, kind: OpKind) -> usize {
        self.entries.iter().filter(|e| e.kind == kind).count()
    }

    /// True when the trace contains no scalar operations — the paper's
    /// criterion for a fully vectorized phase.
    pub fn is_fully_vector(&self) -> bool {
        self.entries.iter().all(|e| e.kind.is_vector())
    }
}

impl fmt::Display for Tracer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, e) in self.entries.iter().enumerate() {
            writeln!(f, "{i:4}: {e}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_counts() {
        let mut t = Tracer::new();
        assert!(t.is_empty());
        t.record(OpKind::VAlu, 4, 10);
        t.record(OpKind::SLoad, 1, 12);
        t.record(OpKind::VAlu, 8, 20);
        assert_eq!(t.len(), 3);
        assert_eq!(t.count(OpKind::VAlu), 2);
        assert_eq!(t.count(OpKind::VGather), 0);
        assert!(!t.is_fully_vector());
        t.clear();
        assert!(t.is_empty());
    }

    #[test]
    fn fully_vector_detection() {
        let mut t = Tracer::new();
        t.record(OpKind::VGather, 4, 10);
        t.record(OpKind::VCompress, 4, 10);
        assert!(t.is_fully_vector());
    }

    #[test]
    fn display_is_one_line_per_entry() {
        let mut t = Tracer::new();
        t.record(OpKind::VIota, 3, 5);
        let s = format!("{t}");
        assert_eq!(s.lines().count(), 1);
        assert!(s.contains("VIota(n=3, cycles=5)"));
    }
}
