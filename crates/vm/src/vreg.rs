//! Vector and mask values.
//!
//! A [`VReg`] is a variable-length vector of machine words, the unit of data
//! every vector instruction consumes and produces. A [`Mask`] is the Boolean
//! companion used by masked (`where`-controlled) operations. Lengths are
//! unbounded at this level; the cost model charges per strip of the machine's
//! configured register length, which is how real pipelined machines section
//! long vectors.

use std::fmt;

/// The machine word. The paper's data (keys, pointers, labels, tags) are all
/// single words; 64 bits comfortably satisfies the paper's requirement that a
/// label fit one word (the ELS condition then guarantees atomic storage).
pub type Word = i64;

/// A vector value: the contents of a (virtual) vector register.
#[derive(Clone, PartialEq, Eq, Default)]
pub struct VReg {
    elems: Vec<Word>,
}

impl VReg {
    /// Creates a vector from owned elements.
    #[inline]
    pub fn from_vec(elems: Vec<Word>) -> Self {
        Self { elems }
    }

    /// Creates a vector by copying a slice.
    #[inline]
    pub fn from_slice(elems: &[Word]) -> Self {
        Self {
            elems: elems.to_vec(),
        }
    }

    /// An empty vector (length 0).
    #[inline]
    pub fn empty() -> Self {
        Self { elems: Vec::new() }
    }

    /// An empty vector, usable in `static`/`const` contexts.
    #[inline]
    pub const fn empty_const() -> Self {
        Self { elems: Vec::new() }
    }

    /// Number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.elems.len()
    }

    /// True when the vector has no elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.elems.is_empty()
    }

    /// Returns element `i`.
    ///
    /// # Panics
    /// Panics when `i` is out of bounds.
    #[inline]
    #[track_caller]
    pub fn get(&self, i: usize) -> Word {
        self.elems[i]
    }

    /// Read-only view of the elements.
    #[inline]
    pub fn as_slice(&self) -> &[Word] {
        &self.elems
    }

    /// Consumes the register, returning its elements.
    #[inline]
    pub fn into_vec(self) -> Vec<Word> {
        self.elems
    }

    /// Iterator over the elements (copied).
    pub fn iter(&self) -> impl Iterator<Item = Word> + '_ {
        self.elems.iter().copied()
    }
}

impl fmt::Debug for VReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "VReg{:?}", self.elems)
    }
}

impl From<Vec<Word>> for VReg {
    fn from(v: Vec<Word>) -> Self {
        Self::from_vec(v)
    }
}

impl FromIterator<Word> for VReg {
    fn from_iter<T: IntoIterator<Item = Word>>(iter: T) -> Self {
        Self::from_vec(iter.into_iter().collect())
    }
}

/// A mask value: the contents of a (virtual) mask register.
///
/// Produced by vector compares and consumed by masked operations,
/// [`crate::Machine::compress`] and [`crate::Machine::count_true`].
#[derive(Clone, PartialEq, Eq, Default)]
pub struct Mask {
    bits: Vec<bool>,
}

impl Mask {
    /// Creates a mask from owned booleans.
    #[inline]
    pub fn from_vec(bits: Vec<bool>) -> Self {
        Self { bits }
    }

    /// Creates a mask by copying a slice.
    #[inline]
    pub fn from_slice(bits: &[bool]) -> Self {
        Self {
            bits: bits.to_vec(),
        }
    }

    /// A mask of `n` elements, all `value`.
    #[inline]
    pub fn splat(value: bool, n: usize) -> Self {
        Self {
            bits: vec![value; n],
        }
    }

    /// Number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.bits.len()
    }

    /// True when the mask has no elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.bits.is_empty()
    }

    /// Returns bit `i`.
    ///
    /// # Panics
    /// Panics when `i` is out of bounds.
    #[inline]
    #[track_caller]
    pub fn get(&self, i: usize) -> bool {
        self.bits[i]
    }

    /// Read-only view of the bits.
    #[inline]
    pub fn as_slice(&self) -> &[bool] {
        &self.bits
    }

    /// Number of `true` bits, computed for free (no cycle charge): use
    /// [`crate::Machine::count_true`] inside modelled code.
    #[inline]
    pub fn popcount(&self) -> usize {
        self.bits.iter().filter(|&&b| b).count()
    }

    /// Iterator over the bits (copied).
    pub fn iter(&self) -> impl Iterator<Item = bool> + '_ {
        self.bits.iter().copied()
    }
}

impl fmt::Debug for Mask {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Mask[")?;
        for (i, b) in self.bits.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{}", if *b { '1' } else { '0' })?;
        }
        write!(f, "]")
    }
}

impl From<Vec<bool>> for Mask {
    fn from(v: Vec<bool>) -> Self {
        Self::from_vec(v)
    }
}

impl FromIterator<bool> for Mask {
    fn from_iter<T: IntoIterator<Item = bool>>(iter: T) -> Self {
        Self::from_vec(iter.into_iter().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vreg_roundtrip() {
        let v = VReg::from_slice(&[1, 2, 3]);
        assert_eq!(v.len(), 3);
        assert!(!v.is_empty());
        assert_eq!(v.get(1), 2);
        assert_eq!(v.as_slice(), &[1, 2, 3]);
        assert_eq!(v.clone().into_vec(), vec![1, 2, 3]);
        assert_eq!(v.iter().sum::<Word>(), 6);
    }

    #[test]
    fn vreg_empty() {
        let v = VReg::empty();
        assert_eq!(v.len(), 0);
        assert!(v.is_empty());
    }

    #[test]
    fn vreg_from_iterator() {
        let v: VReg = (0..4).collect();
        assert_eq!(v.as_slice(), &[0, 1, 2, 3]);
    }

    #[test]
    #[should_panic]
    fn vreg_out_of_bounds_panics() {
        VReg::from_slice(&[1]).get(1);
    }

    #[test]
    fn mask_popcount_and_access() {
        let m = Mask::from_slice(&[true, false, true]);
        assert_eq!(m.len(), 3);
        assert_eq!(m.popcount(), 2);
        assert!(m.get(0));
        assert!(!m.get(1));
    }

    #[test]
    fn mask_splat() {
        let m = Mask::splat(true, 5);
        assert_eq!(m.popcount(), 5);
        let m = Mask::splat(false, 5);
        assert_eq!(m.popcount(), 0);
        assert!(Mask::splat(true, 0).is_empty());
    }

    #[test]
    fn debug_formats() {
        assert_eq!(format!("{:?}", VReg::from_slice(&[7])), "VReg[7]");
        assert_eq!(
            format!("{:?}", Mask::from_slice(&[true, false])),
            "Mask[1, 0]"
        );
    }
}
