//! The simulated machine: memory + cost meter + conflict policy.
//!
//! Instruction methods are grouped the way a vector ISA manual would group
//! them: memory (contiguous), memory (indirect / list-vector), elementwise
//! ALU, compares and masks, data movement (compress/expand/select), and
//! reductions. Every method charges its cost through the [`CostModel`] and
//! records itself in [`Stats`] (and in the optional [`Tracer`]).
//!
//! Scalar baselines run on the *same* machine through the `s_*` methods so
//! that scalar and vector cycle counts are commensurable — the paper's
//! acceleration ratios are computed exactly this way (same machine, same
//! memory, two code paths).

use crate::backend::{BackendKind, LaneEngine, SimEngine};
use crate::conflict::{AdversaryState, ConflictPolicy};
use crate::cost::{CostModel, OpKind, Stats};
use crate::fault::{FaultEvent, FaultLog, FaultPlan};
use crate::health::{LaneHealthRegistry, LaneSet, LANE_COUNT};
use crate::integrity::{digest_words, mix, ElsAuditor, IntegrityError, TrackedRegion};
use crate::journal::{TxnError, WriteJournal};
use crate::memory::{Addr, Memory, Region};
use crate::trace::Tracer;
use crate::vreg::{Mask, VReg, Word};

/// Elementwise ALU operations (vector-vector or vector-scalar).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[allow(missing_docs)] // arithmetic names are self-describing
pub enum AluOp {
    Add,
    Sub,
    Mul,
    /// Truncating division. Division by zero raises a
    /// [`MachineTrap::DivideByZero`]; the panicking instruction forms abort
    /// with the trap message, the `try_*` forms return it.
    Div,
    /// Remainder with the sign of the dividend (Rust `%`).
    Rem,
    /// Euclidean modulus (always non-negative) — the paper's `mod`.
    Mod,
    And,
    Or,
    Xor,
    Shl,
    Shr,
    Min,
    Max,
}

/// A typed machine trap — the simulator's analogue of a hardware exception.
///
/// Instructions that can trap exist in two forms: the classic panicking form
/// (`valu`, matching how an unhandled trap aborts a job) and a fallible
/// `try_*` form that returns the trap as a value, which the hardened
/// execution paths in `fol-core` surface as `FolError::Trap`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MachineTrap {
    /// Integer division, remainder or modulus by zero.
    DivideByZero {
        /// The trapping operation (`Div`, `Rem` or `Mod`).
        op: AluOp,
        /// Vector lane (element position) that trapped; 0 for scalar forms.
        lane: usize,
    },
}

impl std::fmt::Display for MachineTrap {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MachineTrap::DivideByZero { op, lane } => {
                write!(f, "machine trap: {op:?} by zero in lane {lane}")
            }
        }
    }
}

impl std::error::Error for MachineTrap {}

impl AluOp {
    /// Applies the operation, returning `None` on a trapping condition
    /// (division, remainder or modulus by zero). All arithmetic wraps,
    /// including the `i64::MIN / -1` overflow corner.
    #[inline]
    pub fn checked_apply(self, a: Word, b: Word) -> Option<Word> {
        match self {
            AluOp::Add => Some(a.wrapping_add(b)),
            AluOp::Sub => Some(a.wrapping_sub(b)),
            AluOp::Mul => Some(a.wrapping_mul(b)),
            AluOp::Div => (b != 0).then(|| a.wrapping_div(b)),
            AluOp::Rem => (b != 0).then(|| a.wrapping_rem(b)),
            AluOp::Mod => (b != 0).then(|| a.wrapping_rem_euclid(b)),
            AluOp::And => Some(a & b),
            AluOp::Or => Some(a | b),
            AluOp::Xor => Some(a ^ b),
            AluOp::Shl => Some(a.wrapping_shl(b as u32)),
            AluOp::Shr => Some(a.wrapping_shr(b as u32)),
            AluOp::Min => Some(a.min(b)),
            AluOp::Max => Some(a.max(b)),
        }
    }

    /// Applies the operation, panicking with the trap message on a trapping
    /// condition (an unhandled trap aborts the job).
    #[inline]
    #[track_caller]
    pub fn apply(self, a: Word, b: Word) -> Word {
        self.checked_apply(a, b)
            .unwrap_or_else(|| panic!("{}", MachineTrap::DivideByZero { op: self, lane: 0 }))
    }
}

/// Comparison predicates producing masks.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum CmpOp {
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
}

impl CmpOp {
    /// Applies the predicate to one element pair.
    #[inline]
    pub fn apply(self, a: Word, b: Word) -> bool {
        match self {
            CmpOp::Eq => a == b,
            CmpOp::Ne => a != b,
            CmpOp::Lt => a < b,
            CmpOp::Le => a <= b,
            CmpOp::Gt => a > b,
            CmpOp::Ge => a >= b,
        }
    }
}

/// The simulated vector machine.
pub struct Machine {
    mem: Memory,
    cost: CostModel,
    stats: Stats,
    policy: ConflictPolicy,
    scatter_seq: u64,
    tracer: Option<Tracer>,
    phases: Vec<(String, Stats)>,
    adversary: AdversaryState,
    fault_plan: Option<FaultPlan>,
    fault_log: FaultLog,
    /// Open transaction's undo log; `None` when no transaction is open.
    journal: Option<WriteJournal>,
    /// Execution mask: the physical lanes vector instructions may schedule
    /// elements onto. Always nonempty; defaults to every lane.
    active_lanes: LaneSet,
    /// Per-lane fault accounting, fed automatically by the scatter paths and
    /// by transaction aborts.
    health: LaneHealthRegistry,
    /// Cached sacrificial region for [`Machine::probe_lane`].
    probe_region: Option<Region>,
    /// Checksummed regions: incremental digests maintained by every
    /// instruction-level store, verified by [`Machine::scrub`].
    tracked: Vec<TrackedRegion>,
    /// The ELS auditor, when round auditing is enabled
    /// ([`Machine::set_els_audit`]); `None` costs nothing on the hot paths.
    auditor: Option<ElsAuditor>,
    /// Gather sequence counter — the read-side analogue of `scatter_seq`,
    /// so gather faults draw fresh deterministic coins per instruction.
    gather_seq: u64,
    /// Previous value of each written address, kept only while the fault
    /// plan can serve stale reads (so the fault has something real to
    /// return).
    stale_shadow: std::collections::HashMap<Addr, Word>,
    /// The execution backend performing data-plane compute on the paths
    /// where the control plane (faults, journal, checksums, non-last-wins
    /// policies) cannot observe how elements are computed. Every engine is
    /// held to bit-identical results; see [`crate::backend`].
    engine: Box<dyn LaneEngine>,
}

impl Machine {
    /// A machine with the given cost model, default ([`ConflictPolicy::LastWins`])
    /// conflict policy and tracing off.
    pub fn new(cost: CostModel) -> Self {
        Self {
            mem: Memory::new(),
            cost,
            stats: Stats::new(),
            policy: ConflictPolicy::default(),
            scatter_seq: 0,
            tracer: None,
            phases: Vec::new(),
            adversary: AdversaryState::new(),
            fault_plan: None,
            fault_log: FaultLog::default(),
            journal: None,
            active_lanes: LaneSet::all(),
            health: LaneHealthRegistry::new(),
            probe_region: None,
            tracked: Vec::new(),
            auditor: None,
            gather_seq: 0,
            stale_shadow: std::collections::HashMap::new(),
            engine: Box::new(SimEngine),
        }
    }

    /// A machine with an explicit conflict policy.
    pub fn with_policy(cost: CostModel, policy: ConflictPolicy) -> Self {
        Self {
            policy,
            ..Self::new(cost)
        }
    }

    /// A machine computing on an explicit execution backend (see
    /// [`crate::backend`]; the default is the [`SimEngine`] reference).
    pub fn with_engine(cost: CostModel, engine: Box<dyn LaneEngine>) -> Self {
        Self {
            engine,
            ..Self::new(cost)
        }
    }

    /// Swaps the execution backend. Memory, cost meter and every other
    /// piece of machine state are untouched — engines are required to be
    /// bit-identical, so this is always safe mid-workload.
    pub fn set_engine(&mut self, engine: Box<dyn LaneEngine>) {
        self.engine = engine;
    }

    /// The active execution backend's stable name (e.g. `"sim"`, `"avx2"`).
    pub fn engine_name(&self) -> &'static str {
        self.engine.name()
    }

    /// The active execution backend's [`BackendKind`].
    pub fn backend_kind(&self) -> BackendKind {
        self.engine.kind()
    }

    // ------------------------------------------------------------------
    // Configuration, statistics, memory plumbing
    // ------------------------------------------------------------------

    /// The active cost model.
    pub fn cost_model(&self) -> &CostModel {
        &self.cost
    }

    /// The active conflict policy.
    pub fn policy(&self) -> &ConflictPolicy {
        &self.policy
    }

    /// Replaces the conflict policy (e.g. to re-run a workload under another
    /// ELS-conforming interleaving). The adversary's cross-scatter memory is
    /// reset so runs under the new policy start fresh.
    pub fn set_policy(&mut self, policy: ConflictPolicy) {
        self.policy = policy;
        self.adversary.reset();
    }

    /// Installs (or with `None`, removes) a scatter [`FaultPlan`]. Faults
    /// injected from here on are recorded in [`Machine::fault_log`].
    pub fn set_fault_plan(&mut self, plan: Option<FaultPlan>) {
        self.fault_plan = plan;
    }

    /// The active fault plan, if any.
    pub fn fault_plan(&self) -> Option<&FaultPlan> {
        self.fault_plan.as_ref()
    }

    /// The faults injected so far.
    pub fn fault_log(&self) -> &FaultLog {
        &self.fault_log
    }

    /// Clears the fault log (the plan stays installed).
    pub fn clear_fault_log(&mut self) {
        self.fault_log = FaultLog::default();
    }

    // ------------------------------------------------------------------
    // Lane health & execution masks (graceful degradation)
    // ------------------------------------------------------------------

    /// The execution mask: physical lanes vector instructions may use.
    pub fn active_lanes(&self) -> LaneSet {
        self.active_lanes
    }

    /// Installs an execution mask. Elements of every subsequent vector
    /// instruction are scheduled round-robin onto the active lanes only, so
    /// the same program runs at reduced effective width — index vectors are
    /// *not* rewritten, sick lanes are simply never used, and the cost model
    /// charges proportionally more chimes per element.
    ///
    /// An empty set is coerced to all lanes (a machine with zero lanes
    /// cannot execute anything).
    pub fn set_active_lanes(&mut self, lanes: LaneSet) {
        self.active_lanes = if lanes.is_empty() {
            LaneSet::all()
        } else {
            lanes
        };
    }

    /// The per-lane health registry (fault scores, quarantine set).
    pub fn health(&self) -> &LaneHealthRegistry {
        &self.health
    }

    /// Mutable access to the health registry (tuning thresholds, manual
    /// quarantine/restore).
    pub fn health_mut(&mut self) -> &mut LaneHealthRegistry {
        &mut self.health
    }

    /// The physical lane element `p` of a vector instruction executes on
    /// under the current execution mask: the `(p mod w)`-th active lane,
    /// where `w` is the mask's population count.
    pub fn physical_lane(&self, p: usize) -> usize {
        if self.active_lanes == LaneSet::all() {
            return p % LANE_COUNT;
        }
        let w = self.active_lanes.len();
        let target = p % w;
        self.active_lanes
            .iter()
            .nth(target)
            .expect("active_lanes is never empty")
    }

    /// Circuit-breaker self-test: routes a small sacrificial scatter–gather
    /// exclusively through physical `lane` and checks every write landed.
    /// The probe uses a dedicated scratch region (never workload memory),
    /// records its outcome in the health registry
    /// ([`LaneHealthRegistry::record_probe`] — a passing probe restores a
    /// quarantined lane), and returns whether the lane behaved.
    ///
    /// The probe's scatter and gather charge cycles and bump the scatter
    /// sequence like any other instruction: sacrificing a little throughput
    /// to re-earn trust in a lane is exactly the trade the circuit breaker
    /// makes.
    pub fn probe_lane(&mut self, lane: usize) -> bool {
        const PROBE_N: usize = 8;
        assert!(lane < LANE_COUNT, "lane {lane} out of range");
        let region = match self.probe_region {
            Some(r) => r,
            None => {
                let r = self.mem.alloc_scratch(PROBE_N);
                self.probe_region = Some(r);
                r
            }
        };
        let prev = self.active_lanes;
        self.active_lanes = LaneSet::single(lane);
        // A per-probe nonce keeps stale values from an earlier probe of the
        // same lane from masquerading as a successful write-back.
        let nonce = (self.scatter_seq as Word).wrapping_mul(0x9E37) ^ ((lane as Word) << 16);
        let idx: VReg = (0..PROBE_N).map(|i| i as Word).collect();
        let val: VReg = (0..PROBE_N).map(|i| nonce ^ (i as Word + 1)).collect();
        self.scatter(region, &idx, &val);
        let back = self.gather(region, &idx);
        self.active_lanes = prev;
        let ok = back.as_slice() == val.as_slice();
        let seq = self.scatter_seq;
        self.health.record_probe(lane, seq, ok);
        ok
    }

    /// Runs the circuit breaker over every quarantined lane whose probe
    /// cooldown has elapsed, restoring the lanes that pass their self-test.
    /// Returns the set of restored lanes.
    pub fn reprobe_quarantined(&mut self) -> LaneSet {
        let mut restored = LaneSet::empty();
        for lane in self.health.quarantined().iter().collect::<Vec<_>>() {
            if self.health.probe_due(lane, self.scatter_seq) && self.probe_lane(lane) {
                restored.insert(lane);
            }
        }
        restored
    }

    /// Statistics accumulated so far.
    pub fn stats(&self) -> &Stats {
        &self.stats
    }

    /// Statistics accumulated since `since` (a clone of an earlier
    /// [`Machine::stats`]).
    pub fn stats_since(&self, since: &Stats) -> Stats {
        since.delta(&self.stats)
    }

    /// Resets the cycle meter (memory contents are untouched).
    pub fn reset_stats(&mut self) {
        self.stats = Stats::new();
    }

    /// Runs `f` as a named phase, recording its cycle delta separately
    /// (retrievable via [`Machine::phases`]). Phases nest by concatenation,
    /// not hierarchy: each call appends one entry.
    pub fn measure_phase<R>(&mut self, name: &str, f: impl FnOnce(&mut Self) -> R) -> R {
        let before = self.stats.clone();
        let out = f(self);
        let delta = before.delta(&self.stats);
        self.phases.push((name.to_string(), delta));
        out
    }

    /// Phase deltas recorded by [`Machine::measure_phase`], in order.
    pub fn phases(&self) -> &[(String, Stats)] {
        &self.phases
    }

    /// Clears recorded phases.
    pub fn clear_phases(&mut self) {
        self.phases.clear();
    }

    /// Turns instruction tracing on (clearing any previous trace).
    pub fn enable_trace(&mut self) {
        self.tracer = Some(Tracer::new());
    }

    /// Turns tracing off, returning the recording if there was one.
    pub fn take_trace(&mut self) -> Option<Tracer> {
        self.tracer.take()
    }

    /// Allocates a zeroed region (free; see [`Memory::alloc`]).
    pub fn alloc(&mut self, len: usize, name: &str) -> Region {
        self.mem.alloc(len, name)
    }

    /// Direct memory access for setup/assertions — no cycles charged.
    pub fn mem(&self) -> &Memory {
        &self.mem
    }

    /// Mutable direct memory access for setup — no cycles charged.
    ///
    /// Writes through this handle **bypass the transaction journal** by
    /// design: it is setup/oracle access, not instruction execution. Inside
    /// an open transaction, mutate memory only through instruction methods
    /// (scatter, vstore, `s_write`, …) or the rollback will not cover it.
    pub fn mem_mut(&mut self) -> &mut Memory {
        &mut self.mem
    }

    // ------------------------------------------------------------------
    // Transactions (journaled rollback)
    // ------------------------------------------------------------------

    /// Opens a transaction: from here until [`Machine::commit_txn`] or
    /// [`Machine::abort_txn`], every instruction-level store records the
    /// pre-image of its target address in a [`WriteJournal`].
    ///
    /// Journaling is a recovery mechanism, not a simulated instruction: it
    /// charges no cycles (a real machine would checkpoint through hardware
    /// or OS facilities outside the vector pipeline's cost model; the
    /// *modelled* overhead of the software journal is measured separately by
    /// the recovery benchmark).
    ///
    /// Nesting is rejected with [`TxnError::NestedTransaction`] — the
    /// journal is a single-level undo log.
    pub fn begin_txn(&mut self) -> Result<(), TxnError> {
        if self.journal.is_some() {
            return Err(TxnError::NestedTransaction);
        }
        self.journal = Some(WriteJournal::new());
        Ok(())
    }

    /// True while a transaction is open.
    pub fn in_txn(&self) -> bool {
        self.journal.is_some()
    }

    /// The open transaction's journal, for inspection mid-transaction.
    pub fn txn_journal(&self) -> Option<&WriteJournal> {
        self.journal.as_ref()
    }

    /// Closes the open transaction keeping all writes, returning the
    /// journal (useful for write-set statistics).
    pub fn commit_txn(&mut self) -> Result<WriteJournal, TxnError> {
        self.journal.take().ok_or(TxnError::NoTransaction)
    }

    /// Closes the open transaction restoring every journaled pre-image —
    /// memory is byte-exact as it was at [`Machine::begin_txn`] (for
    /// everything written through instruction methods; [`Machine::mem_mut`]
    /// writes bypass the journal). Returns the journal that was replayed.
    pub fn abort_txn(&mut self) -> Result<WriteJournal, TxnError> {
        let j = self.journal.take().ok_or(TxnError::NoTransaction)?;
        if self.tracked.is_empty() {
            j.rollback(&mut self.mem);
        } else {
            // Roll back through the checksum-maintaining path so tracked
            // digests stay in sync with the restored pre-images. Rot that
            // struck during the transaction is *not* absorbed: its term
            // stays folded into the digest, so a post-abort scrub still
            // reports the corruption.
            for (addr, pre) in j.entries_rev() {
                let old = self.mem.read(addr);
                for t in &mut self.tracked {
                    if t.region.contains(addr) {
                        t.sum ^= mix(addr, old) ^ mix(addr, pre);
                    }
                }
                self.mem.write(addr, pre);
            }
        }
        // A rollback corroborates the fault log: lanes it has implicated
        // since their scores last decayed out get bumped towards quarantine.
        self.health.note_rollback(self.scatter_seq);
        Ok(j)
    }

    /// The single choke point for instruction-level stores: journals the
    /// pre-image when a transaction is open, maintains the incremental
    /// checksum of every tracked region the address falls in, feeds the
    /// stale-read shadow when the fault plan needs one, then writes.
    #[inline]
    fn store(&mut self, addr: Addr, w: Word) {
        let needs_old = self.journal.is_some()
            || !self.tracked.is_empty()
            || self
                .fault_plan
                .as_ref()
                .is_some_and(FaultPlan::needs_stale_shadow);
        if needs_old {
            let old = self.mem.read(addr);
            if let Some(j) = &mut self.journal {
                j.note(addr, old);
            }
            for t in &mut self.tracked {
                if t.region.contains(addr) {
                    t.sum ^= mix(addr, old) ^ mix(addr, w);
                }
            }
            if self
                .fault_plan
                .as_ref()
                .is_some_and(FaultPlan::needs_stale_shadow)
            {
                self.stale_shadow.insert(addr, old);
            }
        }
        self.mem.write(addr, w);
    }

    // ------------------------------------------------------------------
    // Integrity: checksummed regions, scrub, ELS audit
    // ------------------------------------------------------------------

    /// Starts (or refreshes) checksum tracking for `region`: the machine
    /// maintains an incremental digest of its contents on every
    /// instruction-level store, in O(1) per store. Tracking a region also
    /// exposes it to the fault plan's bit-rot — resident decay strikes the
    /// memory the integrity layer claims to protect, which is exactly the
    /// adversary [`Machine::scrub`] exists to catch.
    ///
    /// Re-tracking an already-tracked region resynchronizes its digest to
    /// the current memory contents. Like journaling, integrity upkeep is a
    /// recovery mechanism, not a simulated instruction: no cycles are
    /// charged (its real cost is priced by the `integrity` bench).
    pub fn track_region(&mut self, region: Region) {
        let name = self.mem.name_of(region).unwrap_or("(untitled)").to_string();
        let sum = digest_words(region.base(), &self.mem.read_region(region));
        if let Some(t) = self.tracked.iter_mut().find(|t| t.region == region) {
            t.sum = sum;
            t.name = name;
        } else {
            self.tracked.push(TrackedRegion { name, region, sum });
        }
    }

    /// Stops tracking every region (digests are discarded).
    pub fn untrack_all(&mut self) {
        self.tracked.clear();
    }

    /// The tracked regions whose contents have (detectably) changed since
    /// `baseline` — a snapshot of [`Machine::tracked_regions`] taken at some
    /// earlier generation. The comparison uses the incrementally maintained
    /// digests, so the cost is O(tracked regions) with **no memory rescans**:
    /// this is what makes delta checkpointing cheap. A region absent from the
    /// baseline (tracked since) counts as dirty. Digest equality is
    /// probabilistic in the usual XOR-mix sense; a collision makes a dirty
    /// region look clean, which downstream consumers guard against by
    /// verifying materialized state digests end-to-end.
    pub fn dirty_regions_since(&self, baseline: &[TrackedRegion]) -> Vec<Region> {
        self.tracked
            .iter()
            .filter(|t| {
                baseline
                    .iter()
                    .find(|b| b.region == t.region)
                    .is_none_or(|b| b.sum != t.sum)
            })
            .map(|t| t.region)
            .collect()
    }

    /// The tracked regions and their incremental digests.
    pub fn tracked_regions(&self) -> &[TrackedRegion] {
        &self.tracked
    }

    /// The incrementally maintained digest of `region`, if tracked.
    pub fn checksum_of(&self, region: Region) -> Option<u64> {
        self.tracked
            .iter()
            .find(|t| t.region == region)
            .map(|t| t.sum)
    }

    /// Walks every tracked region, recomputing its digest from memory and
    /// comparing against the incrementally maintained one. A divergence
    /// means something wrote to memory behind the store path — bit-rot, by
    /// construction — and is reported as a typed
    /// [`IntegrityError::ChecksumMismatch`] naming the region.
    pub fn scrub(&self) -> Result<(), IntegrityError> {
        for t in &self.tracked {
            let actual = digest_words(t.region.base(), &self.mem.read_region(t.region));
            if actual != t.sum {
                return Err(IntegrityError::ChecksumMismatch {
                    region: t.name.clone(),
                    base: t.region.base(),
                    len: t.region.len(),
                    expected: t.sum,
                    actual,
                });
            }
        }
        Ok(())
    }

    /// Resynchronizes every tracked digest to the current memory contents —
    /// the accept-what-is step after an external repair (e.g. a supervisor
    /// restoring a snapshot over rotted cells).
    pub fn resync_integrity(&mut self) {
        for t in &mut self.tracked {
            t.sum = digest_words(t.region.base(), &self.mem.read_region(t.region));
        }
    }

    /// A digest of current memory *contents* for replay voting: recomputed
    /// from the tracked regions (all allocations when nothing is tracked),
    /// so two executions agree iff the bytes agree — the incremental sums
    /// are deliberately not used here, because rot desynchronizes them.
    pub fn content_digest(&self) -> u64 {
        let mut acc = 0u64;
        if self.tracked.is_empty() {
            for (_, r) in self.mem.allocations() {
                acc ^= digest_words(r.base(), &self.mem.read_region(*r));
            }
        } else {
            for t in &self.tracked {
                acc ^= digest_words(t.region.base(), &self.mem.read_region(t.region));
            }
        }
        acc
    }

    /// Enables or disables the [`ElsAuditor`]. While enabled, executors may
    /// bracket their label rounds with [`Machine::audit_note_scatter`] /
    /// [`Machine::audit_check_gather`]; while disabled both are free no-ops.
    /// Disabling discards the auditor and its counters.
    pub fn set_els_audit(&mut self, on: bool) {
        if on {
            if self.auditor.is_none() {
                self.auditor = Some(ElsAuditor::new());
            }
        } else {
            self.auditor = None;
        }
    }

    /// Enables the [`ElsAuditor`] with seeded 1-in-`rate` round sampling
    /// (rate 1 = every round, the [`Machine::set_els_audit`] behaviour;
    /// rate 0 disables auditing). A sampled-out round records no notes and
    /// judges no gathers, so its audit cost is zero — the knob trades
    /// detection latency against the audit's gather-mirroring traffic.
    /// Replaces any existing auditor (counters restart).
    pub fn set_els_audit_rate(&mut self, rate: usize, seed: u64) {
        self.auditor = if rate == 0 {
            None
        } else {
            Some(ElsAuditor::with_rate(rate as u64, seed))
        };
    }

    /// The ELS auditor, when enabled.
    pub fn els_auditor(&self) -> Option<&ElsAuditor> {
        self.auditor.as_ref()
    }

    /// Forgets the auditor's noted scatters, keeping its counters — called
    /// at attempt boundaries so a rolled-back round's notes do not judge
    /// the retry's gathers. No-op when auditing is off.
    pub fn audit_clear_notes(&mut self) {
        if let Some(a) = &mut self.auditor {
            a.clear();
        }
    }

    /// Notes a label scatter with the auditor (no-op when auditing is off):
    /// records, per target address, the labels about to compete there. Call
    /// immediately before the scatter.
    #[track_caller]
    pub fn audit_note_scatter(&mut self, region: Region, idx: &VReg, vals: &VReg) {
        if self.auditor.is_none() {
            return;
        }
        let addrs: Vec<Addr> = idx.iter().map(|i| Self::region_addr(region, i)).collect();
        let values: Vec<Word> = vals.iter().collect();
        self.auditor
            .as_mut()
            .expect("checked above")
            .note_scatter(&addrs, &values);
    }

    /// Masked form of [`Machine::audit_note_scatter`]: only lanes with a
    /// true mask bit are noted (the others are suppressed and never reach
    /// memory).
    #[track_caller]
    pub fn audit_note_scatter_masked(
        &mut self,
        region: Region,
        idx: &VReg,
        vals: &VReg,
        mask: &Mask,
    ) {
        if self.auditor.is_none() {
            return;
        }
        let mut addrs = Vec::new();
        let mut values = Vec::new();
        for (p, i) in idx.iter().enumerate() {
            if mask.get(p) {
                addrs.push(Self::region_addr(region, i));
                values.push(vals.get(p));
            }
        }
        self.auditor
            .as_mut()
            .expect("checked above")
            .note_scatter(&addrs, &values);
    }

    /// Checks a gather against the noted scatters (no-op `Ok` when auditing
    /// is off): every lane whose address was noted must have read back one
    /// of the noted labels; entries are consumed either way. Call
    /// immediately after the paired gather with the values it returned.
    #[track_caller]
    pub fn audit_check_gather(
        &mut self,
        region: Region,
        idx: &VReg,
        got: &VReg,
    ) -> Result<(), IntegrityError> {
        if self.auditor.is_none() {
            return Ok(());
        }
        let name = self.mem.name_of(region).unwrap_or("(untitled)").to_string();
        let addrs: Vec<Addr> = idx.iter().map(|i| Self::region_addr(region, i)).collect();
        let values: Vec<Word> = got.iter().collect();
        self.auditor
            .as_mut()
            .expect("checked above")
            .check_gather(&name, &addrs, &values)
    }

    /// Logs an injected fault and, when tracing is on, pins a human-readable
    /// note to the instruction that suffered it — so a trace and a recovery
    /// report (see [`FaultLog::summary`]) can be correlated line by line.
    fn record_fault(&mut self, event: FaultEvent) {
        if let Some(t) = &mut self.tracer {
            let note = match &event {
                FaultEvent::LaneDropped {
                    sequence,
                    lane,
                    addr,
                } => {
                    format!("fault: lane {lane} dropped in scatter #{sequence} (addr {addr})")
                }
                FaultEvent::TornWrite {
                    sequence,
                    addr,
                    amalgam,
                } => {
                    format!("fault: torn write at addr {addr} in scatter #{sequence} (amalgam {amalgam})")
                }
                FaultEvent::GatherFlip {
                    sequence,
                    lane,
                    addr,
                    bit,
                } => {
                    format!("fault: gather #{sequence} lane {lane} read addr {addr} with bit {bit} flipped")
                }
                FaultEvent::StaleRead {
                    sequence,
                    lane,
                    addr,
                    stale,
                } => {
                    format!("fault: gather #{sequence} lane {lane} read stale value {stale} from addr {addr}")
                }
                FaultEvent::TornGather {
                    sequence,
                    lane,
                    addr,
                    amalgam,
                } => {
                    format!("fault: gather #{sequence} lane {lane} tore addr {addr} against its neighbour (amalgam {amalgam})")
                }
                FaultEvent::BitRot {
                    sequence,
                    addr,
                    bit,
                } => {
                    format!(
                        "fault: bit {bit} of addr {addr} rotted at scatter boundary #{sequence}"
                    )
                }
            };
            t.annotate(note);
        }
        self.fault_log.record(event);
    }

    #[inline]
    fn charge_vector(&mut self, kind: OpKind, n: usize) {
        // The execution mask reduces the effective width: with w of the
        // LANE_COUNT lanes active, n elements need ceil(n·LANE_COUNT/w)
        // lane-slots' worth of chimes. At full width this is exactly n.
        let w = self.active_lanes.len();
        let n_eff = if w == LANE_COUNT {
            n
        } else {
            (n * LANE_COUNT).div_ceil(w)
        };
        let cycles = self.cost.vector_cost(kind, n_eff);
        self.stats.record_vector(kind, n_eff, cycles);
        if let Some(t) = &mut self.tracer {
            t.record(kind, n_eff, cycles);
        }
    }

    #[inline]
    fn charge_scalar(&mut self, kind: OpKind, count: u64) {
        let cycles = self.cost.scalar_cost(kind, count);
        self.stats.record_scalar(kind, count, cycles);
        if let Some(t) = &mut self.tracer {
            t.record(kind, count as usize, cycles);
        }
    }

    #[inline]
    #[track_caller]
    fn region_addr(region: Region, idx: Word) -> Addr {
        let i =
            usize::try_from(idx).unwrap_or_else(|_| panic!("negative index {idx} into {region:?}"));
        assert!(i < region.len(), "index {i} out of bounds of {region:?}");
        region.base() + i
    }

    // ------------------------------------------------------------------
    // Vector memory: contiguous
    // ------------------------------------------------------------------

    /// Loads `region[offset .. offset+n]` into a vector.
    #[track_caller]
    pub fn vload(&mut self, region: Region, offset: usize, n: usize) -> VReg {
        let r = self.checked_slice("vload", region, offset, n);
        self.charge_vector(OpKind::VLoad, n);
        VReg::from_vec(self.mem.read_region(r))
    }

    /// Stores a vector to `region[offset ..]`.
    #[track_caller]
    pub fn vstore(&mut self, region: Region, offset: usize, v: &VReg) {
        let r = self.checked_slice("vstore", region, offset, v.len());
        self.charge_vector(OpKind::VStore, v.len());
        if self.journal.is_some() || !self.tracked.is_empty() {
            for (i, w) in v.iter().enumerate() {
                self.store(r.base() + i, w);
            }
        } else {
            self.mem.write_region(r, v.as_slice());
        }
    }

    /// Bounds-checks `region[offset .. offset+n]`, panicking with the
    /// instruction name and the owning allocation's name on a bad range —
    /// so a workload's overrun reports "`vstore` overruns `work`", not a
    /// bare index panic downstream.
    #[track_caller]
    fn checked_slice(&self, what: &str, region: Region, offset: usize, n: usize) -> Region {
        region.try_slice(offset, n).unwrap_or_else(|e| {
            let name = self.mem.name_of(region).unwrap_or("(untitled)");
            panic!("{what} on region {name:?}: {e}")
        })
    }

    /// Fills all of `region` with `value` (a broadcast store — how the
    /// paper's programs initialize `C` to `unentered`).
    pub fn vfill(&mut self, region: Region, value: Word) {
        self.charge_vector(OpKind::VStore, region.len());
        for i in 0..region.len() {
            self.store(region.base() + i, value);
        }
    }

    /// Materializes an immediate vector (charged as a contiguous load).
    pub fn vimm(&mut self, elems: &[Word]) -> VReg {
        self.charge_vector(OpKind::VLoad, elems.len());
        VReg::from_slice(elems)
    }

    /// Strided load: `n` elements starting at `region[offset]`, `stride`
    /// words apart. Real pipelined machines stream strided accesses at
    /// unit-stride speed when the stride avoids bank conflicts; charged as
    /// a contiguous load.
    ///
    /// # Panics
    /// Panics when the last element falls outside the region or `stride == 0`.
    #[track_caller]
    pub fn vload_strided(
        &mut self,
        region: Region,
        offset: usize,
        stride: usize,
        n: usize,
    ) -> VReg {
        assert!(stride > 0, "stride must be positive");
        if n > 0 {
            let last = offset + (n - 1) * stride;
            assert!(last < region.len(), "strided load overruns {region:?}");
        }
        self.charge_vector(OpKind::VLoad, n);
        (0..n)
            .map(|i| self.mem.read(region.base() + offset + i * stride))
            .collect()
    }

    /// Strided store: writes `v` to `region[offset]`, `region[offset+stride]`, …
    ///
    /// # Panics
    /// Panics when the last element falls outside the region or `stride == 0`.
    #[track_caller]
    pub fn vstore_strided(&mut self, region: Region, offset: usize, stride: usize, v: &VReg) {
        assert!(stride > 0, "stride must be positive");
        if !v.is_empty() {
            let last = offset + (v.len() - 1) * stride;
            assert!(last < region.len(), "strided store overruns {region:?}");
        }
        self.charge_vector(OpKind::VStore, v.len());
        for (i, w) in v.iter().enumerate() {
            self.store(region.base() + offset + i * stride, w);
        }
    }

    // ------------------------------------------------------------------
    // Vector memory: indirect (list-vector instructions)
    // ------------------------------------------------------------------

    /// List-vector load: `result[i] = region[idx[i]]`.
    ///
    /// An installed [`FaultPlan`] with read-side rates can corrupt what the
    /// gather *returns* (memory itself is untouched): seeded bit-flips,
    /// stale reads (the cell's previous value) and torn gathers (an
    /// amalgam of the lane's word and its neighbour's). Every injected
    /// read fault is recorded in the [`FaultLog`].
    #[track_caller]
    pub fn gather(&mut self, region: Region, idx: &VReg) -> VReg {
        self.charge_vector(OpKind::VGather, idx.len());
        self.gather_seq += 1;
        let seq = self.gather_seq;
        let plan = match &self.fault_plan {
            Some(p) if p.corrupts_reads() => p.clone(),
            _ => {
                // Data-plane fast path: no read-side fault can observe how
                // the elements are fetched, so the active engine gathers
                // over the region's word window (bounds reported exactly
                // like the addressed path).
                let words = &self.mem.words()[region.base()..region.base() + region.len()];
                return VReg::from_vec(self.engine.gather(words, region, idx.as_slice()));
            }
        };
        let addrs: Vec<Addr> = idx.iter().map(|i| Self::region_addr(region, i)).collect();
        let mut out: Vec<Word> = addrs.iter().map(|&a| self.mem.read(a)).collect();
        let truth = out.clone();
        for lane in 0..out.len() {
            let addr = addrs[lane];
            let mut faulted = false;
            if plan.stale_read(seq, lane) {
                if let Some(&stale) = self.stale_shadow.get(&addr) {
                    if stale != out[lane] {
                        out[lane] = stale;
                        faulted = true;
                        self.record_fault(FaultEvent::StaleRead {
                            sequence: seq,
                            lane,
                            addr,
                            stale,
                        });
                    }
                }
            }
            if out.len() > 1 && plan.torn_gather(seq, lane) {
                let neighbour = truth[(lane + 1) % truth.len()];
                let amalgam = plan.mode().combine(&[out[lane], neighbour]);
                if amalgam != out[lane] {
                    out[lane] = amalgam;
                    faulted = true;
                    self.record_fault(FaultEvent::TornGather {
                        sequence: seq,
                        lane,
                        addr,
                        amalgam,
                    });
                }
            }
            if let Some(bit) = plan.gather_flipped(seq, lane) {
                out[lane] ^= 1 << bit;
                faulted = true;
                self.record_fault(FaultEvent::GatherFlip {
                    sequence: seq,
                    lane,
                    addr,
                    bit,
                });
            }
            if faulted {
                // Read faults implicate the physical lane just as write
                // faults do, so the quarantine machinery sees them.
                let phys = self.physical_lane(lane);
                self.health.note_lane_fault(phys, self.scatter_seq);
            }
        }
        VReg::from_vec(out)
    }

    /// List-vector store (`VIST`): `region[idx[i]] = val[i]`.
    ///
    /// Duplicate indices are resolved by the machine's [`ConflictPolicy`];
    /// per the ELS condition exactly one competing element lands.
    #[track_caller]
    pub fn scatter(&mut self, region: Region, idx: &VReg, val: &VReg) {
        self.scatter_inner(region, idx, val, None, OpKind::VScatter);
    }

    /// Masked list-vector store: elements with a false mask bit are
    /// suppressed (the paper's `where M do A[idx] := v end where`).
    #[track_caller]
    pub fn scatter_masked(&mut self, region: Region, idx: &VReg, val: &VReg, mask: &Mask) {
        assert_eq!(
            idx.len(),
            mask.len(),
            "scatter_masked: index/mask length mismatch"
        );
        self.scatter_inner(region, idx, val, Some(mask), OpKind::VScatter);
    }

    /// Ordered list-vector store (`VSTX`): on duplicate indices the
    /// highest-numbered element wins, regardless of the machine policy. The
    /// paper's footnote 7 uses this stronger guarantee to build the
    /// order-preserving FOL variant.
    ///
    /// An installed [`FaultPlan`] applies here too: lanes may be dropped and
    /// conflicting writes may tear, modelling a `VSTX` whose ordering
    /// circuitry is broken.
    #[track_caller]
    pub fn scatter_ordered(&mut self, region: Region, idx: &VReg, val: &VReg) {
        assert_eq!(
            idx.len(),
            val.len(),
            "scatter_ordered: index/value length mismatch"
        );
        self.charge_vector(OpKind::VScatterOrdered, idx.len());
        self.scatter_seq += 1;
        let seq = self.scatter_seq;
        if self.fault_plan.is_none() && self.journal.is_none() && self.tracked.is_empty() {
            // Data-plane fast path: ordered semantics are exactly
            // last-wins in element order, and with no fault plan, journal
            // or checksummed region active nothing can observe how the
            // stores are issued.
            let words = &mut self.mem.words_mut()[region.base()..region.base() + region.len()];
            self.engine
                .scatter_last_wins(words, region, idx.as_slice(), val.as_slice());
            return;
        }
        self.apply_bit_rot(seq);
        let plan = self.fault_plan.clone();
        // Surviving (address, value) pairs in element order, after lane drops.
        let mut survivors: Vec<(Addr, Word)> = Vec::with_capacity(idx.len());
        for (lane, (i, v)) in idx.iter().zip(val.iter()).enumerate() {
            let addr = Self::region_addr(region, i);
            if let Some(p) = &plan {
                let phys = self.physical_lane(lane);
                if p.sticky_dropped(seq, phys) || p.lane_dropped(seq, lane) {
                    self.health.note_lane_fault(phys, seq);
                    self.record_fault(FaultEvent::LaneDropped {
                        sequence: seq,
                        lane,
                        addr,
                    });
                    continue;
                }
            }
            survivors.push((addr, v));
        }
        for &(addr, v) in &survivors {
            self.store(addr, v);
        }
        if let Some(p) = &plan {
            self.tear_conflicts(p, seq, &survivors);
        }
    }

    /// Applies the plan's bit-rot to every tracked region at one scatter
    /// boundary. Rot writes **directly to memory**, bypassing the store
    /// choke point — and with it the write journal and the incremental
    /// checksums — which is the whole model: silent resident-memory decay
    /// that only a [`Machine::scrub`] pass (or a failed audit downstream)
    /// can reveal. Only tracked (checksummed) regions are exposed; tracking
    /// a region opts it into both the protection and the hazard.
    fn apply_bit_rot(&mut self, seq: u64) {
        let plan = match &self.fault_plan {
            Some(p) if p.rot_rate_at(seq) > 0 => p.clone(),
            _ => return,
        };
        let regions: Vec<Region> = self.tracked.iter().map(|t| t.region).collect();
        for region in regions {
            for i in 0..region.len() {
                let addr = region.base() + i;
                if let Some(bit) = plan.rotted(seq, addr) {
                    let w = self.mem.read(addr) ^ (1 << bit);
                    self.mem.write(addr, w);
                    self.record_fault(FaultEvent::BitRot {
                        sequence: seq,
                        addr,
                        bit,
                    });
                }
            }
        }
    }

    /// Applies the plan's torn-write faults over the surviving writes of one
    /// scatter: conflicted addresses selected by the plan get an amalgam of
    /// all competing values instead of the policy's winner.
    fn tear_conflicts(&mut self, plan: &FaultPlan, seq: u64, survivors: &[(Addr, Word)]) {
        let mut order: Vec<Addr> = Vec::new();
        let mut groups: std::collections::HashMap<Addr, Vec<Word>> =
            std::collections::HashMap::with_capacity(survivors.len());
        for &(addr, v) in survivors {
            let g = groups.entry(addr).or_default();
            if g.is_empty() {
                order.push(addr);
            }
            g.push(v);
        }
        for addr in order {
            let values = &groups[&addr];
            if let Some(amalgam) = plan.torn_value(seq, addr, values) {
                self.store(addr, amalgam);
                self.record_fault(FaultEvent::TornWrite {
                    sequence: seq,
                    addr,
                    amalgam,
                });
            }
        }
    }

    #[track_caller]
    fn scatter_inner(
        &mut self,
        region: Region,
        idx: &VReg,
        val: &VReg,
        mask: Option<&Mask>,
        kind: OpKind,
    ) {
        assert_eq!(idx.len(), val.len(), "scatter: index/value length mismatch");
        self.charge_vector(kind, idx.len());
        self.scatter_seq += 1;
        let seq = self.scatter_seq;
        if self.fault_plan.is_none()
            && self.journal.is_none()
            && self.tracked.is_empty()
            && self.policy == ConflictPolicy::LastWins
        {
            // Data-plane fast path: under last-wins, duplicate resolution
            // is element order, and with no fault plan, journal or
            // checksummed region active the store choke point has nothing
            // to record — the engine writes directly. Any active
            // control-plane feature takes the canonical path below, so
            // every backend shares faulted-path behaviour by construction.
            let words = &mut self.mem.words_mut()[region.base()..region.base() + region.len()];
            match mask {
                Some(m) => self.engine.scatter_last_wins_masked(
                    words,
                    region,
                    idx.as_slice(),
                    val.as_slice(),
                    m.as_slice(),
                ),
                None => {
                    self.engine
                        .scatter_last_wins(words, region, idx.as_slice(), val.as_slice())
                }
            }
            return;
        }
        self.apply_bit_rot(seq);
        let plan = self.fault_plan.clone();
        // Filtered lanes: original element position, target address, value —
        // mask-suppressed lanes first, then fault-dropped lanes.
        let mut positions: Vec<usize> = Vec::with_capacity(idx.len());
        let mut addrs: Vec<Addr> = Vec::with_capacity(idx.len());
        let mut vals: Vec<Word> = Vec::with_capacity(idx.len());
        for (p, i) in idx.iter().enumerate() {
            if !mask.is_none_or(|m| m.get(p)) {
                continue;
            }
            let addr = Self::region_addr(region, i);
            if let Some(plan) = &plan {
                let phys = self.physical_lane(p);
                if plan.sticky_dropped(seq, phys) || plan.lane_dropped(seq, p) {
                    self.health.note_lane_fault(phys, seq);
                    self.record_fault(FaultEvent::LaneDropped {
                        sequence: seq,
                        lane: p,
                        addr,
                    });
                    continue;
                }
            }
            positions.push(p);
            addrs.push(addr);
            vals.push(val.get(p));
        }
        if self.policy == ConflictPolicy::BrokenAmalgam {
            // ELS violation: conflicting writes XOR together. A lone writer
            // still stores its own value (0 ^ v = v).
            let mut acc: std::collections::HashMap<Addr, Word> =
                std::collections::HashMap::with_capacity(addrs.len());
            for (&addr, &v) in addrs.iter().zip(&vals) {
                *acc.entry(addr).or_insert(0) ^= v;
            }
            for (addr, w) in acc {
                self.store(addr, w);
            }
            return;
        }
        let mut writes: Vec<(Addr, Word)> = Vec::with_capacity(addrs.len());
        let policy = self.policy.clone();
        let state = matches!(policy, ConflictPolicy::Adversarial(_)).then_some(&mut self.adversary);
        policy.resolve_with_state(&addrs, seq, state, |filtered_pos, addr| {
            writes.push((addr, vals[filtered_pos]));
        });
        for (addr, w) in writes {
            self.store(addr, w);
        }
        if let Some(p) = &plan {
            let survivors: Vec<(Addr, Word)> =
                addrs.iter().copied().zip(vals.iter().copied()).collect();
            self.tear_conflicts(p, seq, &survivors);
        }
    }

    // ------------------------------------------------------------------
    // Elementwise ALU
    // ------------------------------------------------------------------

    /// Elementwise `op` on two vectors of equal length.
    ///
    /// # Panics
    /// Panics on a lane trap (division by zero) — use [`Machine::try_valu`]
    /// to observe the trap as a value instead.
    #[track_caller]
    pub fn valu(&mut self, op: AluOp, a: &VReg, b: &VReg) -> VReg {
        self.try_valu(op, a, b).unwrap_or_else(|t| panic!("{t}"))
    }

    /// Fallible form of [`Machine::valu`]: returns the first lane trap
    /// instead of panicking. Cycles are charged either way (the pipeline
    /// issues before the trap is detected).
    #[track_caller]
    pub fn try_valu(&mut self, op: AluOp, a: &VReg, b: &VReg) -> Result<VReg, MachineTrap> {
        assert_eq!(a.len(), b.len(), "valu: length mismatch");
        self.charge_vector(OpKind::VAlu, a.len());
        self.engine
            .alu(op, a.as_slice(), b.as_slice())
            .map(VReg::from_vec)
            .map_err(|lane| MachineTrap::DivideByZero { op, lane })
    }

    /// Elementwise `op` between a vector and a broadcast scalar.
    ///
    /// # Panics
    /// Panics on a lane trap (division by zero) — use
    /// [`Machine::try_valu_s`] to observe the trap as a value instead.
    #[track_caller]
    pub fn valu_s(&mut self, op: AluOp, a: &VReg, s: Word) -> VReg {
        self.try_valu_s(op, a, s).unwrap_or_else(|t| panic!("{t}"))
    }

    /// Fallible form of [`Machine::valu_s`].
    pub fn try_valu_s(&mut self, op: AluOp, a: &VReg, s: Word) -> Result<VReg, MachineTrap> {
        self.charge_vector(OpKind::VAlu, a.len());
        self.engine
            .alu_s(op, a.as_slice(), s)
            .map(VReg::from_vec)
            .map_err(|lane| MachineTrap::DivideByZero { op, lane })
    }

    /// Masked elementwise `op`: where the mask is false the result keeps `a`.
    /// Masked-off lanes never execute, so they cannot trap — the idiomatic
    /// guard for division (`where b /= 0 do a / b`).
    ///
    /// # Panics
    /// Panics on a trap in an *active* lane — use
    /// [`Machine::try_valu_masked`] to observe it as a value instead.
    #[track_caller]
    pub fn valu_masked(&mut self, op: AluOp, a: &VReg, b: &VReg, mask: &Mask) -> VReg {
        self.try_valu_masked(op, a, b, mask)
            .unwrap_or_else(|t| panic!("{t}"))
    }

    /// Fallible form of [`Machine::valu_masked`].
    #[track_caller]
    pub fn try_valu_masked(
        &mut self,
        op: AluOp,
        a: &VReg,
        b: &VReg,
        mask: &Mask,
    ) -> Result<VReg, MachineTrap> {
        assert_eq!(a.len(), b.len(), "valu_masked: length mismatch");
        assert_eq!(a.len(), mask.len(), "valu_masked: mask length mismatch");
        self.charge_vector(OpKind::VAlu, a.len());
        self.engine
            .alu_masked(op, a.as_slice(), b.as_slice(), mask.as_slice())
            .map(VReg::from_vec)
            .map_err(|lane| MachineTrap::DivideByZero { op, lane })
    }

    /// Broadcast: a vector of `n` copies of `s`.
    pub fn vsplat(&mut self, s: Word, n: usize) -> VReg {
        self.charge_vector(OpKind::VAlu, n);
        VReg::from_vec(self.engine.splat(s, n))
    }

    /// Index generation: `[start, start+1, …, start+n-1]` (the paper's
    /// subscript labels are exactly `iota`).
    pub fn iota(&mut self, start: Word, n: usize) -> VReg {
        self.charge_vector(OpKind::VIota, n);
        VReg::from_vec(self.engine.iota(start, n))
    }

    // ------------------------------------------------------------------
    // Compares, masks, selection
    // ------------------------------------------------------------------

    /// Elementwise compare of two vectors, producing a mask.
    #[track_caller]
    pub fn vcmp(&mut self, op: CmpOp, a: &VReg, b: &VReg) -> Mask {
        assert_eq!(a.len(), b.len(), "vcmp: length mismatch");
        self.charge_vector(OpKind::VCmp, a.len());
        Mask::from_vec(self.engine.cmp(op, a.as_slice(), b.as_slice()))
    }

    /// Elementwise compare against a broadcast scalar.
    pub fn vcmp_s(&mut self, op: CmpOp, a: &VReg, s: Word) -> Mask {
        self.charge_vector(OpKind::VCmp, a.len());
        Mask::from_vec(self.engine.cmp_s(op, a.as_slice(), s))
    }

    /// Mask conjunction.
    #[track_caller]
    pub fn mask_and(&mut self, a: &Mask, b: &Mask) -> Mask {
        assert_eq!(a.len(), b.len(), "mask_and: length mismatch");
        self.charge_vector(OpKind::VMaskOp, a.len());
        Mask::from_vec(self.engine.mask_and(a.as_slice(), b.as_slice()))
    }

    /// Mask disjunction.
    #[track_caller]
    pub fn mask_or(&mut self, a: &Mask, b: &Mask) -> Mask {
        assert_eq!(a.len(), b.len(), "mask_or: length mismatch");
        self.charge_vector(OpKind::VMaskOp, a.len());
        Mask::from_vec(self.engine.mask_or(a.as_slice(), b.as_slice()))
    }

    /// Mask negation.
    pub fn mask_not(&mut self, a: &Mask) -> Mask {
        self.charge_vector(OpKind::VMaskOp, a.len());
        Mask::from_vec(self.engine.mask_not(a.as_slice()))
    }

    /// Merge: `mask[i] ? a[i] : b[i]`.
    #[track_caller]
    pub fn select(&mut self, mask: &Mask, a: &VReg, b: &VReg) -> VReg {
        assert_eq!(a.len(), b.len(), "select: length mismatch");
        assert_eq!(a.len(), mask.len(), "select: mask length mismatch");
        self.charge_vector(OpKind::VAlu, a.len());
        VReg::from_vec(
            self.engine
                .select(mask.as_slice(), a.as_slice(), b.as_slice()),
        )
    }

    /// `countTrue(M)`: population count of a mask, charged as a reduction.
    pub fn count_true(&mut self, mask: &Mask) -> usize {
        self.charge_vector(OpKind::VReduce, mask.len());
        mask.popcount()
    }

    // ------------------------------------------------------------------
    // Data movement: compress / expand
    // ------------------------------------------------------------------

    /// `A where M`: the elements of `a` whose mask bit is true, packed left
    /// (Fortran-90 `pack`). The workhorse of FOL's "delete processed
    /// pointers from V" step.
    #[track_caller]
    pub fn compress(&mut self, a: &VReg, mask: &Mask) -> VReg {
        assert_eq!(a.len(), mask.len(), "compress: mask length mismatch");
        self.charge_vector(OpKind::VCompress, a.len());
        VReg::from_vec(self.engine.compress(a.as_slice(), mask.as_slice()))
    }

    /// Compress a mask by another mask (needed when narrowing bookkeeping
    /// masks alongside their data vectors).
    #[track_caller]
    pub fn compress_mask(&mut self, a: &Mask, mask: &Mask) -> Mask {
        assert_eq!(a.len(), mask.len(), "compress_mask: mask length mismatch");
        self.charge_vector(OpKind::VCompress, a.len());
        Mask::from_vec(self.engine.compress_mask(a.as_slice(), mask.as_slice()))
    }

    /// Inverse of [`Machine::compress`]: distributes the elements of `a`
    /// (length = number of true bits) into the true positions of `mask`;
    /// false positions receive `fill`.
    #[track_caller]
    pub fn expand(&mut self, a: &VReg, mask: &Mask, fill: Word) -> VReg {
        assert_eq!(
            a.len(),
            mask.popcount(),
            "expand: data length != mask popcount"
        );
        self.charge_vector(OpKind::VExpand, mask.len());
        let mut it = a.iter();
        mask.iter()
            .map(|m| {
                if m {
                    it.next().expect("length checked above")
                } else {
                    fill
                }
            })
            .collect()
    }

    /// Concatenates two vectors (models compressing two working sets into
    /// adjacent storage — one streaming pass, charged as a store).
    pub fn vconcat(&mut self, a: &VReg, b: &VReg) -> VReg {
        self.charge_vector(OpKind::VStore, a.len() + b.len());
        a.iter().chain(b.iter()).collect()
    }

    // ------------------------------------------------------------------
    // Reductions
    // ------------------------------------------------------------------

    /// Inclusive prefix (cumulative) sum — the S-810 family's first-order
    /// recurrence macro instruction, charged at `prefix_factor` per element.
    /// Distribution counting sort depends on this running at vector speed.
    pub fn vprefix_sum(&mut self, a: &VReg) -> VReg {
        self.charge_vector(OpKind::VPrefix, a.len());
        VReg::from_vec(self.engine.prefix_sum(a.as_slice()))
    }

    /// Sum of all elements (wrapping).
    pub fn vsum(&mut self, a: &VReg) -> Word {
        self.charge_vector(OpKind::VReduce, a.len());
        self.engine.sum(a.as_slice())
    }

    /// Minimum element, or `None` for an empty vector.
    pub fn vmin(&mut self, a: &VReg) -> Option<Word> {
        self.charge_vector(OpKind::VReduce, a.len());
        self.engine.min(a.as_slice())
    }

    /// Maximum element, or `None` for an empty vector.
    pub fn vmax(&mut self, a: &VReg) -> Option<Word> {
        self.charge_vector(OpKind::VReduce, a.len());
        self.engine.max(a.as_slice())
    }

    // ------------------------------------------------------------------
    // Scalar operations (for baselines running on the same machine)
    // ------------------------------------------------------------------

    /// Scalar load.
    #[track_caller]
    pub fn s_read(&mut self, addr: Addr) -> Word {
        self.charge_scalar(OpKind::SLoad, 1);
        self.mem.read(addr)
    }

    /// Scalar store.
    #[track_caller]
    pub fn s_write(&mut self, addr: Addr, w: Word) {
        self.charge_scalar(OpKind::SStore, 1);
        self.store(addr, w);
    }

    /// Scalar load with a sequential access pattern (streaming loops over
    /// arrays), charged at the cheaper `scalar_mem_seq` rate.
    #[track_caller]
    pub fn s_read_seq(&mut self, addr: Addr) -> Word {
        self.charge_scalar(OpKind::SLoadSeq, 1);
        self.mem.read(addr)
    }

    /// Scalar store with a sequential access pattern.
    #[track_caller]
    pub fn s_write_seq(&mut self, addr: Addr, w: Word) {
        self.charge_scalar(OpKind::SStoreSeq, 1);
        self.store(addr, w);
    }

    /// Charges `count` scalar ALU operations (register arithmetic the
    /// baseline would execute; the values live in host variables).
    pub fn s_alu(&mut self, count: u64) {
        self.charge_scalar(OpKind::SAlu, count);
    }

    /// Charges `count` scalar compares.
    pub fn s_cmp(&mut self, count: u64) {
        self.charge_scalar(OpKind::SCmp, count);
    }

    /// Charges `count` scalar branches (loop back-edges, if/else).
    pub fn s_branch(&mut self, count: u64) {
        self.charge_scalar(OpKind::SBranch, count);
    }
}

impl std::fmt::Debug for Machine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Machine")
            .field("mem", &self.mem)
            .field("policy", &self.policy)
            .field("cycles", &self.stats.cycles())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn machine() -> Machine {
        Machine::new(CostModel::unit())
    }

    #[test]
    fn engines_are_interchangeable_mid_workload() {
        // The same program on the default engine and on the scalar engine
        // (including a mid-run swap) must leave identical memory and charge
        // identical cycles — engines only change how elements are computed.
        let run = |swap: bool| {
            let mut m = machine();
            assert_eq!(m.engine_name(), "sim");
            assert_eq!(m.backend_kind(), crate::backend::BackendKind::Sim);
            let r = m.alloc(16, "r");
            let idx = m.iota(0, 12);
            let val = m.valu_s(AluOp::Mul, &idx, 3);
            m.scatter(r, &idx, &val);
            if swap {
                m.set_engine(
                    crate::backend::engine_of(crate::backend::BackendKind::Scalar).unwrap(),
                );
                assert_eq!(m.engine_name(), "scalar");
            }
            let dup = m.vimm(&[3, 3, 7, 7, 15]);
            let w = m.vimm(&[1, 2, 3, 4, 5]);
            m.scatter(r, &dup, &w);
            let mask = m.vcmp_s(CmpOp::Gt, &val, 10);
            let packed = m.compress(&val, &mask);
            let ids = m.iota(0, packed.len());
            m.scatter_ordered(r, &ids, &packed);
            (
                m.mem().read_region(r),
                m.content_digest(),
                m.stats().cycles(),
            )
        };
        assert_eq!(run(false), run(true));
    }

    #[test]
    fn vload_vstore_roundtrip() {
        let mut m = machine();
        let r = m.alloc(6, "r");
        let v = m.vimm(&[1, 2, 3]);
        m.vstore(r, 2, &v);
        assert_eq!(m.mem().read_region(r), vec![0, 0, 1, 2, 3, 0]);
        let back = m.vload(r, 2, 3);
        assert_eq!(back.as_slice(), &[1, 2, 3]);
    }

    #[test]
    fn vfill_initializes() {
        let mut m = machine();
        let r = m.alloc(4, "r");
        m.vfill(r, 9);
        assert_eq!(m.mem().read_region(r), vec![9, 9, 9, 9]);
    }

    #[test]
    fn gather_reads_through_indices() {
        let mut m = machine();
        let r = m.alloc(5, "r");
        m.mem_mut().write_region(r, &[10, 11, 12, 13, 14]);
        let idx = m.vimm(&[4, 0, 2, 2]);
        let g = m.gather(r, &idx);
        assert_eq!(g.as_slice(), &[14, 10, 12, 12]);
    }

    #[test]
    fn scatter_last_wins_policy() {
        let mut m = Machine::with_policy(CostModel::unit(), ConflictPolicy::LastWins);
        let r = m.alloc(4, "r");
        let idx = m.vimm(&[1, 1, 3]);
        let val = m.vimm(&[100, 200, 300]);
        m.scatter(r, &idx, &val);
        assert_eq!(m.mem().read_region(r), vec![0, 200, 0, 300]);
    }

    #[test]
    fn scatter_first_wins_policy() {
        let mut m = Machine::with_policy(CostModel::unit(), ConflictPolicy::FirstWins);
        let r = m.alloc(4, "r");
        let idx = m.vimm(&[1, 1, 3]);
        let val = m.vimm(&[100, 200, 300]);
        m.scatter(r, &idx, &val);
        assert_eq!(m.mem().read_region(r), vec![0, 100, 0, 300]);
    }

    #[test]
    fn scatter_arbitrary_satisfies_els() {
        for seed in 0..16 {
            let mut m = Machine::with_policy(CostModel::unit(), ConflictPolicy::Arbitrary(seed));
            let r = m.alloc(2, "r");
            let idx = m.vimm(&[0, 0, 0]);
            let val = m.vimm(&[7, 8, 9]);
            m.scatter(r, &idx, &val);
            let w = m.mem().read(r.base());
            assert!(
                [7, 8, 9].contains(&w),
                "stored {w} is not one of the written values"
            );
        }
    }

    #[test]
    fn scatter_masked_suppresses() {
        let mut m = machine();
        let r = m.alloc(3, "r");
        let idx = m.vimm(&[0, 1, 2]);
        let val = m.vimm(&[5, 6, 7]);
        let mask = Mask::from_slice(&[true, false, true]);
        m.scatter_masked(r, &idx, &val, &mask);
        assert_eq!(m.mem().read_region(r), vec![5, 0, 7]);
    }

    #[test]
    fn scatter_ordered_ignores_policy() {
        let mut m = Machine::with_policy(CostModel::unit(), ConflictPolicy::FirstWins);
        let r = m.alloc(1, "r");
        let idx = m.vimm(&[0, 0]);
        let val = m.vimm(&[1, 2]);
        m.scatter_ordered(r, &idx, &val);
        assert_eq!(
            m.mem().read(r.base()),
            2,
            "VSTX semantics: element order, last wins"
        );
    }

    #[test]
    fn alu_ops() {
        let mut m = machine();
        let a = m.vimm(&[6, -7, 8]);
        let b = m.vimm(&[3, 2, -5]);
        assert_eq!(m.valu(AluOp::Add, &a, &b).as_slice(), &[9, -5, 3]);
        assert_eq!(m.valu(AluOp::Sub, &a, &b).as_slice(), &[3, -9, 13]);
        assert_eq!(m.valu(AluOp::Mul, &a, &b).as_slice(), &[18, -14, -40]);
        assert_eq!(m.valu(AluOp::Div, &a, &b).as_slice(), &[2, -3, -1]);
        assert_eq!(m.valu(AluOp::Rem, &a, &b).as_slice(), &[0, -1, 3]);
        assert_eq!(m.valu(AluOp::Mod, &a, &b).as_slice(), &[0, 1, 3]);
        assert_eq!(m.valu(AluOp::Min, &a, &b).as_slice(), &[3, -7, -5]);
        assert_eq!(m.valu(AluOp::Max, &a, &b).as_slice(), &[6, 2, 8]);
        assert_eq!(m.valu_s(AluOp::And, &a, 31).as_slice(), &[6, 25, 8]);
    }

    #[test]
    fn masked_alu_keeps_unmasked() {
        let mut m = machine();
        let a = m.vimm(&[1, 2, 3]);
        let b = m.vimm(&[10, 10, 10]);
        let mask = Mask::from_slice(&[true, false, true]);
        let r = m.valu_masked(AluOp::Add, &a, &b, &mask);
        assert_eq!(r.as_slice(), &[11, 2, 13]);
    }

    #[test]
    fn compares_and_masks() {
        let mut m = machine();
        let a = m.vimm(&[1, 5, 5]);
        let b = m.vimm(&[1, 2, 9]);
        let eq = m.vcmp(CmpOp::Eq, &a, &b);
        assert_eq!(eq.as_slice(), &[true, false, false]);
        let ge = m.vcmp_s(CmpOp::Ge, &a, 5);
        assert_eq!(ge.as_slice(), &[false, true, true]);
        let both = m.mask_and(&eq, &ge);
        assert_eq!(both.popcount(), 0);
        let either = m.mask_or(&eq, &ge);
        assert_eq!(either.popcount(), 3);
        let neither = m.mask_not(&either);
        assert_eq!(neither.popcount(), 0);
        assert_eq!(m.count_true(&either), 3);
    }

    #[test]
    fn select_merges() {
        let mut m = machine();
        let a = m.vimm(&[1, 2, 3]);
        let b = m.vimm(&[9, 9, 9]);
        let mask = Mask::from_slice(&[false, true, false]);
        assert_eq!(m.select(&mask, &a, &b).as_slice(), &[9, 2, 9]);
    }

    #[test]
    fn compress_and_expand_are_inverse() {
        let mut m = machine();
        let a = m.vimm(&[10, 20, 30, 40]);
        let mask = Mask::from_slice(&[true, false, false, true]);
        let c = m.compress(&a, &mask);
        assert_eq!(c.as_slice(), &[10, 40]);
        let e = m.expand(&c, &mask, -1);
        assert_eq!(e.as_slice(), &[10, -1, -1, 40]);
        let cm = m.compress_mask(&Mask::from_slice(&[true, true, false, false]), &mask);
        assert_eq!(cm.as_slice(), &[true, false]);
    }

    #[test]
    fn iota_and_splat() {
        let mut m = machine();
        assert_eq!(m.iota(3, 4).as_slice(), &[3, 4, 5, 6]);
        assert_eq!(m.vsplat(7, 3).as_slice(), &[7, 7, 7]);
    }

    #[test]
    fn strided_load_store() {
        let mut m = machine();
        let r = m.alloc(7, "r");
        m.mem_mut().write_region(r, &[0, 1, 2, 3, 4, 5, 6]);
        let v = m.vload_strided(r, 1, 2, 3);
        assert_eq!(v.as_slice(), &[1, 3, 5]);
        let w = m.vimm(&[10, 30, 50]);
        m.vstore_strided(r, 0, 3, &w);
        assert_eq!(m.mem().read_region(r), vec![10, 1, 2, 30, 4, 5, 50]);
        assert!(m.vload_strided(r, 0, 1, 0).is_empty());
    }

    #[test]
    #[should_panic(expected = "overruns")]
    fn strided_overrun_panics() {
        let mut m = machine();
        let r = m.alloc(4, "r");
        let _ = m.vload_strided(r, 0, 2, 3);
    }

    #[test]
    fn broken_amalgam_stores_an_amalgam() {
        let mut m = Machine::with_policy(CostModel::unit(), ConflictPolicy::BrokenAmalgam);
        let r = m.alloc(2, "r");
        let idx = m.vimm(&[0, 0, 1]);
        let val = m.vimm(&[0b1100, 0b1010, 7]);
        m.scatter(r, &idx, &val);
        // Conflicting slot holds the XOR amalgam — a value nobody wrote.
        assert_eq!(m.mem().read(r.base()), 0b0110);
        // Lone writer is unaffected.
        assert_eq!(m.mem().read(r.base() + 1), 7);
    }

    #[test]
    fn phase_measurement() {
        let mut m = Machine::new(CostModel::s810());
        let r = m.alloc(8, "r");
        m.measure_phase("load", |m| {
            let _ = m.vload(r, 0, 8);
        });
        m.measure_phase("scalar", |m| {
            let _ = m.s_read(r.base());
        });
        let phases = m.phases();
        assert_eq!(phases.len(), 2);
        assert_eq!(phases[0].0, "load");
        assert!(phases[0].1.vector_cycles > 0);
        assert_eq!(phases[0].1.scalar_cycles, 0);
        assert!(phases[1].1.scalar_cycles > 0);
        assert_eq!(
            phases[0].1.cycles() + phases[1].1.cycles(),
            m.stats().cycles()
        );
        m.clear_phases();
        assert!(m.phases().is_empty());
    }

    #[test]
    fn vconcat_joins() {
        let mut m = machine();
        let a = m.vimm(&[1, 2]);
        let b = m.vimm(&[3]);
        assert_eq!(m.vconcat(&a, &b).as_slice(), &[1, 2, 3]);
        let e = VReg::empty();
        assert_eq!(m.vconcat(&e, &b).as_slice(), &[3]);
    }

    #[test]
    fn prefix_sum() {
        let mut m = machine();
        let a = m.vimm(&[1, 2, 3, -1]);
        assert_eq!(m.vprefix_sum(&a).as_slice(), &[1, 3, 6, 5]);
        let e = VReg::empty();
        assert!(m.vprefix_sum(&e).is_empty());
        assert!(m.stats().count(OpKind::VPrefix) == 2);
    }

    #[test]
    fn reductions() {
        let mut m = machine();
        let a = m.vimm(&[3, -1, 4]);
        assert_eq!(m.vsum(&a), 6);
        assert_eq!(m.vmin(&a), Some(-1));
        assert_eq!(m.vmax(&a), Some(4));
        let e = VReg::empty();
        assert_eq!(m.vmin(&e), None);
    }

    #[test]
    fn scalar_ops_charge_scalar_cycles() {
        let mut m = Machine::new(CostModel::s810());
        let r = m.alloc(1, "r");
        m.s_write(r.base(), 5);
        assert_eq!(m.s_read(r.base()), 5);
        m.s_alu(3);
        m.s_cmp(2);
        m.s_branch(1);
        let s = m.stats();
        assert_eq!(s.vector_cycles, 0);
        let c = &m.cost;
        assert_eq!(
            s.scalar_cycles,
            2 * c.scalar_mem + 3 * c.scalar_alu + 2 * c.scalar_alu + c.scalar_branch
        );
    }

    #[test]
    fn stats_since_measures_a_section() {
        let mut m = Machine::new(CostModel::s810());
        let r = m.alloc(8, "r");
        let _ = m.vload(r, 0, 8);
        let t0 = m.stats().clone();
        let _ = m.vload(r, 0, 4);
        let d = m.stats_since(&t0);
        assert_eq!(d.count(OpKind::VLoad), 1);
        assert_eq!(d.vector_elements, 4);
    }

    #[test]
    fn trace_records_instructions() {
        let mut m = machine();
        m.enable_trace();
        let r = m.alloc(4, "r");
        let idx = m.vimm(&[0, 1]);
        let _ = m.gather(r, &idx);
        let t = m.take_trace().expect("trace enabled");
        assert_eq!(t.count(OpKind::VLoad), 1); // vimm
        assert_eq!(t.count(OpKind::VGather), 1);
        assert!(t.is_fully_vector());
    }

    #[test]
    fn divide_by_zero_is_a_typed_trap() {
        let mut m = machine();
        let a = m.vimm(&[6, 7]);
        let b = m.vimm(&[3, 0]);
        for op in [AluOp::Div, AluOp::Rem, AluOp::Mod] {
            assert_eq!(
                m.try_valu(op, &a, &b),
                Err(MachineTrap::DivideByZero { op, lane: 1 }),
                "{op:?} must trap on the zero lane"
            );
            assert_eq!(
                m.try_valu_s(op, &a, 0),
                Err(MachineTrap::DivideByZero { op, lane: 0 })
            );
        }
        // Masked-off lanes never execute, so they cannot trap.
        let mask = Mask::from_slice(&[true, false]);
        let r = m
            .try_valu_masked(AluOp::Div, &a, &b, &mask)
            .expect("masked lane must not trap");
        assert_eq!(r.as_slice(), &[2, 7]);
    }

    #[test]
    #[should_panic(expected = "machine trap")]
    fn unhandled_trap_aborts() {
        let mut m = machine();
        let a = m.vimm(&[1]);
        let b = m.vimm(&[0]);
        let _ = m.valu(AluOp::Div, &a, &b);
    }

    #[test]
    fn division_min_by_minus_one_wraps() {
        let mut m = machine();
        let a = m.vimm(&[Word::MIN]);
        let b = m.vimm(&[-1]);
        assert_eq!(m.valu(AluOp::Div, &a, &b).as_slice(), &[Word::MIN]);
        assert_eq!(m.valu(AluOp::Rem, &a, &b).as_slice(), &[0]);
    }

    #[test]
    fn fault_plan_drops_lanes_and_logs() {
        use crate::fault::{FaultEvent, FaultPlan};
        let mut m = machine();
        m.set_fault_plan(Some(FaultPlan::dropped_lanes(11, u16::MAX)));
        let r = m.alloc(4, "r");
        m.vfill(r, -1);
        let idx = m.vimm(&[0, 1, 2]);
        let val = m.vimm(&[10, 20, 30]);
        m.scatter(r, &idx, &val);
        // Every lane dropped: memory untouched, every drop logged.
        assert_eq!(m.mem().read_region(r), vec![-1, -1, -1, -1]);
        assert_eq!(m.fault_log().dropped_lanes(), 3);
        assert!(matches!(
            m.fault_log().events()[0],
            FaultEvent::LaneDropped { lane: 0, .. }
        ));
        m.clear_fault_log();
        assert!(m.fault_log().is_empty());
        assert!(m.fault_plan().is_some());
    }

    #[test]
    fn fault_plan_tears_conflicting_writes_only() {
        use crate::fault::{AmalgamMode, FaultPlan};
        let mut m = machine();
        m.set_fault_plan(Some(FaultPlan::torn_writes(5, u16::MAX, AmalgamMode::Xor)));
        let r = m.alloc(2, "r");
        let idx = m.vimm(&[0, 0, 1]);
        let val = m.vimm(&[0b1100, 0b1010, 7]);
        m.scatter(r, &idx, &val);
        // Conflicted slot tears to the XOR amalgam; the lone writer is clean.
        assert_eq!(m.mem().read(r.base()), 0b0110);
        assert_eq!(m.mem().read(r.base() + 1), 7);
        assert_eq!(m.fault_log().torn_writes(), 1);
    }

    #[test]
    fn fault_plan_applies_to_ordered_scatter() {
        use crate::fault::FaultPlan;
        let mut m = machine();
        m.set_fault_plan(Some(FaultPlan::dropped_lanes(2, u16::MAX)));
        let r = m.alloc(2, "r");
        m.vfill(r, -5);
        let idx = m.vimm(&[0, 1]);
        let val = m.vimm(&[1, 2]);
        m.scatter_ordered(r, &idx, &val);
        assert_eq!(m.mem().read_region(r), vec![-5, -5]);
        assert_eq!(m.fault_log().dropped_lanes(), 2);
    }

    #[test]
    fn benign_fault_plan_changes_nothing() {
        use crate::fault::FaultPlan;
        let mut m = Machine::with_policy(CostModel::unit(), ConflictPolicy::LastWins);
        m.set_fault_plan(Some(FaultPlan::benign(1)));
        let r = m.alloc(4, "r");
        let idx = m.vimm(&[1, 1, 3]);
        let val = m.vimm(&[100, 200, 300]);
        m.scatter(r, &idx, &val);
        assert_eq!(m.mem().read_region(r), vec![0, 200, 0, 300]);
        assert!(m.fault_log().is_empty());
    }

    #[test]
    fn adversarial_scatter_satisfies_els() {
        for seed in 0..16 {
            let mut m = Machine::with_policy(CostModel::unit(), ConflictPolicy::Adversarial(seed));
            let r = m.alloc(2, "r");
            let idx = m.vimm(&[0, 0, 0]);
            let val = m.vimm(&[7, 8, 9]);
            m.scatter(r, &idx, &val);
            let w = m.mem().read(r.base());
            assert!(
                [7, 8, 9].contains(&w),
                "stored {w} is not one of the written values"
            );
        }
    }

    #[test]
    fn txn_abort_restores_scatter_byte_exact() {
        use crate::journal::Snapshot;
        let mut m = Machine::with_policy(CostModel::unit(), ConflictPolicy::LastWins);
        let r = m.alloc(6, "r");
        m.mem_mut().write_region(r, &[1, 2, 3, 4, 5, 6]);
        let snap = Snapshot::capture(m.mem(), &[r]);
        m.begin_txn().unwrap();
        let idx = m.vimm(&[0, 0, 3]);
        let val = m.vimm(&[100, 200, 300]);
        m.scatter(r, &idx, &val);
        m.vfill(r, -9);
        assert!(!snap.matches(m.mem()));
        let j = m.abort_txn().unwrap();
        assert!(snap.matches(m.mem()), "diff at {:?}", snap.diff(m.mem()));
        assert!(!m.in_txn());
        assert_eq!(j.len(), 6);
    }

    #[test]
    fn txn_commit_keeps_writes() {
        let mut m = machine();
        let r = m.alloc(2, "r");
        m.begin_txn().unwrap();
        m.s_write(r.base(), 42);
        m.s_write_seq(r.at(1), 43);
        let j = m.commit_txn().unwrap();
        assert_eq!(m.mem().read_region(r), vec![42, 43]);
        assert_eq!(j.len(), 2);
        assert_eq!(j.pre_image(r.base()), Some(0));
    }

    #[test]
    fn txn_misuse_is_typed() {
        use crate::journal::TxnError;
        let mut m = machine();
        assert_eq!(m.commit_txn().unwrap_err(), TxnError::NoTransaction);
        assert_eq!(m.abort_txn().unwrap_err(), TxnError::NoTransaction);
        m.begin_txn().unwrap();
        assert_eq!(m.begin_txn().unwrap_err(), TxnError::NestedTransaction);
        assert!(m.in_txn());
        m.commit_txn().unwrap();
    }

    #[test]
    fn txn_journal_covers_faulted_writes() {
        use crate::fault::{AmalgamMode, FaultPlan};
        use crate::journal::Snapshot;
        let mut m = machine();
        m.set_fault_plan(Some(FaultPlan::torn_writes(3, u16::MAX, AmalgamMode::Xor)));
        let r = m.alloc(2, "r");
        m.mem_mut().write_region(r, &[5, 6]);
        let snap = Snapshot::capture(m.mem(), &[r]);
        m.begin_txn().unwrap();
        let idx = m.vimm(&[0, 0, 1]);
        let val = m.vimm(&[0b1100, 0b1010, 7]);
        m.scatter(r, &idx, &val);
        assert_eq!(m.fault_log().torn_writes(), 1);
        m.abort_txn().unwrap();
        assert!(snap.matches(m.mem()), "torn write must roll back too");
    }

    #[test]
    fn txn_overlapping_scatters_keep_first_pre_image() {
        use crate::journal::Snapshot;
        let mut m = Machine::with_policy(CostModel::unit(), ConflictPolicy::LastWins);
        let r = m.alloc(4, "r");
        m.mem_mut().write_region(r, &[10, 20, 30, 40]);
        let snap = Snapshot::capture(m.mem(), &[r]);
        m.begin_txn().unwrap();
        // Two scatters in one round whose target sets overlap at cells 1 and
        // 2: the journal must keep the pre-images from *before the first*
        // scatter, not the intermediate values the second one clobbered.
        let idx_a = m.vimm(&[0, 1, 2]);
        let val_a = m.vimm(&[-1, -2, -3]);
        m.scatter(r, &idx_a, &val_a);
        let idx_b = m.vimm(&[1, 2, 3]);
        let val_b = m.vimm(&[-4, -5, -6]);
        m.scatter(r, &idx_b, &val_b);
        assert_eq!(m.mem().read_region(r), vec![-1, -4, -5, -6]);
        let j = m.abort_txn().unwrap();
        assert_eq!(j.len(), 4, "overlap must not double-journal");
        assert_eq!(
            j.pre_image(r.at(1)),
            Some(20),
            "first-write pre-image survives overlap"
        );
        assert_eq!(j.pre_image(r.at(2)), Some(30));
        assert!(snap.matches(m.mem()), "diff at {:?}", snap.diff(m.mem()));
    }

    #[test]
    fn txn_rolls_back_after_divide_by_zero_mid_round() {
        use crate::journal::Snapshot;
        let mut m = machine();
        let r = m.alloc(3, "r");
        m.mem_mut().write_region(r, &[7, 8, 9]);
        let snap = Snapshot::capture(m.mem(), &[r]);
        m.begin_txn().unwrap();
        // A round that stores, then traps: the partial stores must unwind.
        m.vfill(r, 111);
        let num = m.vimm(&[6, 6]);
        let den = m.vimm(&[2, 0]);
        let trap = m.try_valu(AluOp::Div, &num, &den).unwrap_err();
        assert!(matches!(trap, MachineTrap::DivideByZero { lane: 1, .. }));
        assert!(m.in_txn(), "a trap must not silently close the transaction");
        m.abort_txn().unwrap();
        assert!(
            snap.matches(m.mem()),
            "mid-round trap left residue: {:?}",
            snap.diff(m.mem())
        );
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn valu_length_mismatch_panics() {
        let mut m = machine();
        let a = m.vimm(&[1]);
        let b = m.vimm(&[1, 2]);
        let _ = m.valu(AluOp::Add, &a, &b);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn gather_oob_panics() {
        let mut m = machine();
        let r = m.alloc(2, "r");
        let idx = m.vimm(&[5]);
        let _ = m.gather(r, &idx);
    }

    #[test]
    #[should_panic(expected = "negative index")]
    fn scatter_negative_index_panics() {
        let mut m = machine();
        let r = m.alloc(2, "r");
        let idx = m.vimm(&[-1]);
        let val = m.vimm(&[0]);
        m.scatter(r, &idx, &val);
    }

    // ------------------------------------------------------------------
    // Lane health, execution masks, degradation
    // ------------------------------------------------------------------

    #[test]
    fn physical_lane_schedule_round_robins_over_active_lanes() {
        use crate::health::{LaneSet, LANE_COUNT};
        let mut m = machine();
        assert_eq!(m.physical_lane(0), 0);
        assert_eq!(m.physical_lane(LANE_COUNT + 3), 3);
        // Quarantine lane 0: elements remap onto the 63 survivors.
        m.set_active_lanes(LaneSet::all().difference(LaneSet::single(0)));
        assert_eq!(m.physical_lane(0), 1);
        assert_eq!(m.physical_lane(62), 63);
        assert_eq!(m.physical_lane(63), 1, "wraps over the reduced width");
        // An empty mask is coerced to full width.
        m.set_active_lanes(LaneSet::empty());
        assert_eq!(m.active_lanes(), LaneSet::all());
    }

    #[test]
    fn sticky_lane_drops_its_writes_and_feeds_the_health_registry() {
        use crate::fault::FaultPlan;
        let mut m = machine();
        m.set_fault_plan(Some(FaultPlan::sticky_lanes(1, 1 << 2)));
        let r = m.alloc(8, "r");
        let idx = m.vimm(&[0, 1, 2, 3]);
        let val = m.vimm(&[10, 20, 30, 40]);
        m.scatter(r, &idx, &val);
        // Element 2 rode physical lane 2 and was dropped; the rest landed.
        assert_eq!(m.mem().read_region(r)[..4], [10, 20, 0, 40]);
        assert_eq!(m.fault_log().dropped_lanes(), 1);
        assert!(m.health().score(2) > 0, "fault attributed to lane 2");
        assert_eq!(m.health().score(1), 0);
    }

    #[test]
    fn execution_mask_steers_elements_off_a_sticky_lane() {
        use crate::fault::FaultPlan;
        use crate::health::LaneSet;
        let mut m = machine();
        m.set_fault_plan(Some(FaultPlan::sticky_lanes(1, 1 << 2)));
        m.set_active_lanes(LaneSet::all().difference(LaneSet::single(2)));
        let r = m.alloc(8, "r");
        let idx = m.vimm(&[0, 1, 2, 3]);
        let val = m.vimm(&[10, 20, 30, 40]);
        m.scatter(r, &idx, &val);
        // Same program, same index vector — but no element uses lane 2, so
        // every write lands.
        assert_eq!(m.mem().read_region(r)[..4], [10, 20, 30, 40]);
        assert!(m.fault_log().is_empty());
    }

    #[test]
    fn repeated_sticky_faults_quarantine_the_lane_automatically() {
        use crate::fault::FaultPlan;
        let mut m = machine();
        m.set_fault_plan(Some(FaultPlan::sticky_lanes(1, 1 << 5)));
        let r = m.alloc(8, "r");
        // Element position 5 of each 8-long scatter rides physical lane 5.
        for _ in 0..3 {
            let idx = m.vimm(&[0, 1, 2, 3, 4, 5, 6, 7]);
            let val = m.vimm(&[0, 1, 2, 3, 4, 9, 6, 7]);
            m.scatter(r, &idx, &val);
        }
        assert!(m.health().is_quarantined(5), "{}", m.health().summary());
        assert!(!m.health().is_quarantined(4));
    }

    #[test]
    fn degraded_width_charges_proportionally_more_cycles() {
        use crate::health::LaneSet;
        let mut m = machine();
        let r = m.alloc(64, "r");
        let idx = m.vimm(&vec![0; 64]);
        let full = m.stats().clone();
        let _ = m.gather(r, &idx);
        let full_cycles = m.stats_since(&full).vector_cycles;
        m.set_active_lanes(LaneSet::from_bits(0xFFFF_FFFF)); // 32 of 64 lanes
        let half = m.stats().clone();
        let _ = m.gather(r, &idx);
        let half_cycles = m.stats_since(&half).vector_cycles;
        assert!(
            half_cycles > full_cycles,
            "half-width gather must cost more: {half_cycles} vs {full_cycles}"
        );
    }

    #[test]
    fn probe_restores_a_healthy_lane_and_keeps_a_sick_one_quarantined() {
        use crate::fault::FaultPlan;
        let mut m = machine();
        m.set_fault_plan(Some(FaultPlan::sticky_lanes(1, 1 << 3)));
        m.health_mut().quarantine(3);
        assert!(!m.probe_lane(3), "a sticky lane fails its self-test");
        assert!(m.health().is_quarantined(3));
        // The fault clears (say the pipe was reseated): the probe passes and
        // the circuit breaker restores the lane.
        m.set_fault_plan(None);
        assert!(m.probe_lane(3));
        assert!(!m.health().is_quarantined(3));
        assert_eq!(m.health().restores(), 1);
    }

    #[test]
    fn reprobe_quarantined_runs_the_breaker_over_due_lanes() {
        use crate::health::{LaneHealthRegistry, LaneSet};
        let mut m = machine();
        *m.health_mut() = LaneHealthRegistry::new().with_probe_cooldown(0);
        m.health_mut().quarantine(1);
        m.health_mut().quarantine(7);
        let restored = m.reprobe_quarantined();
        assert_eq!(restored, LaneSet::from_bits((1 << 1) | (1 << 7)));
        assert!(m.health().quarantined().is_empty());
        // Probes used scratch memory, not any workload region.
        assert!(m.mem().allocations().iter().any(|(n, _)| n == "(scratch)"));
    }

    #[test]
    fn probe_writes_are_journaled_like_any_store() {
        use crate::journal::Snapshot;
        let mut m = machine();
        // Materialize the scratch region before the snapshot so the probe's
        // writes land inside snapshotted memory.
        assert!(m.probe_lane(0));
        let scratch = m
            .mem()
            .allocations()
            .iter()
            .find(|(n, _)| n == "(scratch)")
            .map(|&(_, r)| r)
            .unwrap();
        let snap = Snapshot::capture(m.mem(), &[scratch]);
        m.begin_txn().unwrap();
        assert!(m.probe_lane(4));
        m.abort_txn().unwrap();
        assert!(
            snap.matches(m.mem()),
            "sacrificial probe writes must roll back: {:?}",
            snap.diff(m.mem())
        );
    }

    #[test]
    fn txn_misuse_never_corrupts_the_undo_log() {
        use crate::journal::Snapshot;
        let mut m = machine();
        let r = m.alloc(4, "r");
        m.mem_mut().write_region(r, &[1, 2, 3, 4]);
        let snap = Snapshot::capture(m.mem(), &[r]);
        m.begin_txn().unwrap();
        let idx = m.vimm(&[0, 1]);
        let val = m.vimm(&[10, 20]);
        m.scatter(r, &idx, &val);
        // A rejected nested begin must not reset or truncate the live
        // journal…
        assert_eq!(m.begin_txn().unwrap_err(), TxnError::NestedTransaction);
        let idx = m.vimm(&[2]);
        let val = m.vimm(&[30]);
        m.scatter(r, &idx, &val);
        // …so the eventual abort still restores everything, including the
        // writes from before the misuse.
        m.abort_txn().unwrap();
        assert!(snap.matches(m.mem()), "diff: {:?}", snap.diff(m.mem()));
        // Misuse with no transaction open is inert: typed errors, memory
        // untouched, and a fresh transaction still works.
        for _ in 0..3 {
            assert_eq!(m.commit_txn().unwrap_err(), TxnError::NoTransaction);
            assert_eq!(m.abort_txn().unwrap_err(), TxnError::NoTransaction);
        }
        assert!(snap.matches(m.mem()));
        m.begin_txn().unwrap();
        m.vfill(r, 9);
        m.abort_txn().unwrap();
        assert!(snap.matches(m.mem()));
    }

    #[test]
    fn rollback_escalates_fault_implicated_lanes() {
        use crate::fault::FaultPlan;
        let mut m = machine();
        m.set_fault_plan(Some(FaultPlan::sticky_lanes(1, 1 << 6)));
        let r = m.alloc(8, "r");
        m.begin_txn().unwrap();
        let idx = m.vimm(&[0, 1, 2, 3, 4, 5, 6, 7]);
        let val = m.vimm(&[1, 1, 1, 1, 1, 1, 1, 1]);
        m.scatter(r, &idx, &val);
        let before = m.health().score(6);
        assert!(before > 0);
        m.abort_txn().unwrap();
        assert!(
            m.health().score(6) > before,
            "the rollback corroborates the fault log"
        );
        assert_eq!(m.health().score(0), 0, "unimplicated lanes stay clean");
    }

    // ------------------------------------------------------------------
    // Integrity: checksums, scrub, bit-rot, gather faults, ELS audit
    // ------------------------------------------------------------------

    #[test]
    fn incremental_checksum_tracks_every_store_path() {
        let mut m = machine();
        let r = m.alloc(8, "r");
        m.track_region(r);
        // Scatter, vstore, vfill, strided store — every instruction-level
        // store path must keep the incremental digest in sync.
        let idx = m.vimm(&[0, 3, 5]);
        let val = m.vimm(&[10, 20, 30]);
        m.scatter(r, &idx, &val);
        let v = m.vimm(&[7, 8]);
        m.vstore(r, 6, &v);
        m.vfill(r, 1);
        let v = m.vimm(&[4, 5]);
        m.vstore_strided(r, 1, 3, &v);
        let expected = crate::integrity::digest_words(r.base(), &m.mem().read_region(r));
        assert_eq!(m.checksum_of(r), Some(expected));
        assert!(m.scrub().is_ok());
    }

    #[test]
    fn scrub_catches_out_of_band_writes() {
        let mut m = machine();
        let r = m.alloc(4, "table");
        m.track_region(r);
        assert!(m.scrub().is_ok());
        // Writing behind the store path (as bit-rot does) diverges the sums.
        m.mem_mut().write(r.at(2), 99);
        let err = m.scrub().unwrap_err();
        match &err {
            IntegrityError::ChecksumMismatch { region, len, .. } => {
                assert_eq!(region, "table");
                assert_eq!(*len, 4);
            }
            other => panic!("expected ChecksumMismatch, got {other:?}"),
        }
        // Resync accepts the current contents as the new truth.
        m.resync_integrity();
        assert!(m.scrub().is_ok());
    }

    #[test]
    fn bit_rot_strikes_only_tracked_regions_and_is_caught_by_scrub() {
        use crate::fault::FaultPlan;
        let mut m = machine();
        let tracked = m.alloc(64, "tracked");
        let untracked = m.alloc(64, "untracked");
        m.track_region(tracked);
        m.set_fault_plan(Some(FaultPlan::bit_rot(7, 0x4000)));
        let before_untracked = m.mem().read_region(untracked);
        // Drive scatters until rot lands somewhere.
        let idx = m.vimm(&[0, 1, 2, 3]);
        let val = m.vimm(&[1, 1, 1, 1]);
        for _ in 0..8 {
            m.scatter(tracked, &idx, &val);
        }
        let rots = m.fault_log().bit_rots();
        assert!(rots > 0, "rot at ~25%/word over 8 scatters must land");
        assert_eq!(
            m.mem().read_region(untracked),
            before_untracked,
            "untracked regions never rot"
        );
        assert!(
            m.scrub().is_err(),
            "scrub must notice decayed tracked words"
        );
    }

    #[test]
    fn gather_faults_fire_and_are_logged() {
        use crate::fault::FaultPlan;
        let mut m = machine();
        let r = m.alloc(16, "r");
        m.mem_mut().write_region(r, &(1..=16).collect::<Vec<_>>());
        let plan = FaultPlan::gather_flips(3, 0x2000)
            .with_stale_reads(0x2000)
            .with_torn_gathers(0x2000);
        m.set_fault_plan(Some(plan));
        let idx = m.vimm(&[0, 1, 2, 3, 4, 5, 6, 7]);
        // Overwrite first so the stale shadow has old values to serve.
        let val = m.vimm(&[91, 92, 93, 94, 95, 96, 97, 98]);
        m.scatter(r, &idx, &val);
        let mut corrupt = 0;
        for _ in 0..16 {
            let got = m.gather(r, &idx);
            corrupt += got.iter().zip(val.iter()).filter(|(g, v)| g != v).count();
        }
        assert!(corrupt > 0, "read faults at 12.5%/lane must corrupt lanes");
        let log = m.fault_log();
        assert_eq!(
            log.read_faults(),
            log.gather_flips() + log.stale_reads() + log.torn_gathers()
        );
        assert!(log.read_faults() > 0);
    }

    #[test]
    fn auditor_passes_clean_rounds_and_is_free_when_off() {
        let mut m = machine();
        let r = m.alloc(8, "work");
        let idx = m.vimm(&[0, 3, 3, 5]);
        let labels = m.vimm(&[1, 2, 3, 4]);
        // Disabled: wrappers are inert.
        m.audit_note_scatter(r, &idx, &labels);
        let junk = m.vimm(&[0, 0, 0, 0]);
        assert!(m.audit_check_gather(r, &idx, &junk).is_ok());
        assert!(m.els_auditor().is_none());
        // Enabled: a faithful scatter/gather round passes.
        m.set_els_audit(true);
        m.audit_note_scatter(r, &idx, &labels);
        m.scatter(r, &idx, &labels);
        let got = m.gather(r, &idx);
        m.audit_check_gather(r, &idx, &got).unwrap();
        let audit = m.els_auditor().unwrap();
        // Duplicate-index lanes share one address entry, checked (and
        // consumed) once: 3 distinct addresses, not 4 lanes.
        assert_eq!(audit.checked(), 3);
        assert_eq!(audit.violations(), 0);
    }

    /// The acceptance table: every injected amalgam must be flagged. Torn
    /// writes under each amalgam mode produce a stored word that is none of
    /// the competing labels; the auditor must flag 100% of them.
    #[test]
    fn auditor_flags_every_injected_amalgam() {
        use crate::fault::{AmalgamMode, FaultPlan};
        for mode in [AmalgamMode::Or, AmalgamMode::And, AmalgamMode::Xor] {
            let mut flagged = 0u32;
            let mut injected = 0u32;
            for seed in 1..=16u64 {
                let mut m = machine();
                let r = m.alloc(8, "work");
                m.set_els_audit(true);
                m.set_fault_plan(Some(FaultPlan::torn_writes(seed, 0xFFFF, mode)));
                // Labels chosen so every amalgam differs from both inputs.
                let idx = m.vimm(&[2, 2, 6, 6]);
                let labels = m.vimm(&[0b01, 0b10, 0b0101, 0b1010]);
                m.audit_note_scatter(r, &idx, &labels);
                m.scatter(r, &idx, &labels);
                let torn = m.fault_log().torn_writes() as u32;
                if torn == 0 {
                    continue;
                }
                injected += torn;
                let got = m.gather(r, &idx);
                if m.audit_check_gather(r, &idx, &got).is_err() {
                    // One check_gather reports the first violation; the
                    // counter has them all.
                    flagged += m.els_auditor().unwrap().violations() as u32;
                }
            }
            assert!(injected > 0, "tearing at 100% must inject amalgams");
            assert_eq!(
                flagged, injected,
                "auditor must flag 100% of {mode:?} amalgams"
            );
        }
    }

    #[test]
    fn auditor_tolerates_payload_overwrites_between_rounds() {
        let mut m = machine();
        let r = m.alloc(8, "work");
        m.set_els_audit(true);
        // Round 1: labels, checked and consumed.
        let idx = m.vimm(&[1, 1, 4]);
        let labels = m.vimm(&[10, 20, 30]);
        m.audit_note_scatter(r, &idx, &labels);
        m.scatter(r, &idx, &labels);
        let got = m.gather(r, &idx);
        m.audit_check_gather(r, &idx, &got).unwrap();
        // A payload scatter to the same addresses (BST winner-pointer style)
        // must not trip the next audit: round 1's notes were consumed.
        let payload = m.vimm(&[777, 777, 777]);
        m.scatter(r, &idx, &payload);
        let got = m.gather(r, &idx);
        assert!(m.audit_check_gather(r, &idx, &got).is_ok());
        assert_eq!(m.els_auditor().unwrap().violations(), 0);
    }

    #[test]
    fn masked_audit_notes_only_live_lanes() {
        let mut m = machine();
        let r = m.alloc(8, "work");
        m.set_els_audit(true);
        let idx = m.vimm(&[0, 1, 2]);
        let vals = m.vimm(&[5, 6, 7]);
        let mask = Mask::from_slice(&[true, false, true]);
        m.audit_note_scatter_masked(r, &idx, &vals, &mask);
        m.scatter_masked(r, &idx, &vals, &mask);
        let got = m.gather(r, &idx);
        // Lane 1 was suppressed: its read (of the old 0) must not be judged
        // against the never-stored 6.
        assert!(m.audit_check_gather(r, &idx, &got).is_ok());
        assert_eq!(m.els_auditor().unwrap().checked(), 2);
    }

    #[test]
    fn abort_keeps_tracked_checksums_in_sync() {
        let mut m = machine();
        let r = m.alloc(8, "r");
        m.mem_mut().write_region(r, &[1, 2, 3, 4, 5, 6, 7, 8]);
        m.track_region(r);
        m.begin_txn().unwrap();
        let idx = m.vimm(&[0, 2, 2, 7]);
        let val = m.vimm(&[10, 20, 30, 40]);
        m.scatter(r, &idx, &val);
        m.abort_txn().unwrap();
        assert_eq!(m.mem().read_region(r), vec![1, 2, 3, 4, 5, 6, 7, 8]);
        assert!(
            m.scrub().is_ok(),
            "rollback must flow through the checksum-maintaining path"
        );
    }

    #[test]
    fn dirty_regions_since_flags_exactly_the_stored_to_regions() {
        let mut m = machine();
        let a = m.alloc(8, "a");
        let b = m.alloc(8, "b");
        m.track_region(a);
        m.track_region(b);
        let baseline = m.tracked_regions().to_vec();
        assert!(m.dirty_regions_since(&baseline).is_empty());

        let idx = m.vimm(&[1, 3]);
        let val = m.vimm(&[7, 9]);
        m.scatter(b, &idx, &val);
        assert_eq!(m.dirty_regions_since(&baseline), vec![b]);

        // A region tracked after the baseline was taken counts as dirty.
        let c = m.alloc(4, "c");
        m.track_region(c);
        let dirty = m.dirty_regions_since(&baseline);
        assert!(dirty.contains(&b) && dirty.contains(&c) && !dirty.contains(&a));

        // Writing a value back to what it was keeps the digest equal — the
        // XOR digest is content-based, not a write counter.
        let mut n = machine();
        let r = n.alloc(4, "r");
        n.mem_mut().write_region(r, &[1, 2, 3, 4]);
        n.track_region(r);
        let base = n.tracked_regions().to_vec();
        let i = n.vimm(&[2]);
        let v = n.vimm(&[3]);
        n.scatter(r, &i, &v); // same value as before
        assert!(n.dirty_regions_since(&base).is_empty());
    }

    #[test]
    fn content_digest_reflects_memory_not_stale_sums() {
        let mut m = machine();
        let r = m.alloc(4, "r");
        m.track_region(r);
        let d0 = m.content_digest();
        m.mem_mut().write(r.at(0), 5); // behind the store path
        let d1 = m.content_digest();
        assert_ne!(d0, d1, "content digest is recomputed, not incremental");
        // Untracked machines digest every allocation.
        let mut n = machine();
        let s = n.alloc(4, "s");
        let e0 = n.content_digest();
        n.mem_mut().write(s.at(1), 9);
        assert_ne!(n.content_digest(), e0);
    }
}
