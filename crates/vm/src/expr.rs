//! Scalar expression trees and their vector compilation.
//!
//! The paper describes FOL as part of a *vectorizing program
//! transformation*: a scalar loop whose body addresses memory through a
//! computed subscript becomes a sequence of vector instructions. The
//! subscript computation itself is a pure scalar expression over the loop's
//! input element; [`Expr`] represents such expressions and
//! [`Expr::compile`] emits the elementwise vector code that evaluates them
//! over a whole input vector at once — the "easy half" of vectorization
//! that classical compilers already did, kept separate from the FOL half
//! (which handles the conflicting writes).

use crate::machine::{AluOp, Machine};
use crate::vreg::{VReg, Word};
use std::fmt;

/// A pure scalar expression over one input element.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Expr {
    /// The loop's input element (the paper's `key[i]`, `data[i]`…).
    Input,
    /// A constant.
    Const(Word),
    /// A binary operation.
    Bin(AluOp, Box<Expr>, Box<Expr>),
}

impl Expr {
    /// `Input`.
    pub fn input() -> Expr {
        Expr::Input
    }

    /// A constant.
    pub fn constant(w: Word) -> Expr {
        Expr::Const(w)
    }

    /// Helper: `self op rhs`.
    pub fn bin(self, op: AluOp, rhs: Expr) -> Expr {
        Expr::Bin(op, Box::new(self), Box::new(rhs))
    }

    /// `self mod m` (Euclidean).
    pub fn modulo(self, m: Word) -> Expr {
        self.bin(AluOp::Mod, Expr::Const(m))
    }

    /// `self + c`.
    pub fn plus(self, c: Word) -> Expr {
        self.bin(AluOp::Add, Expr::Const(c))
    }

    /// `self * c`.
    pub fn times(self, c: Word) -> Expr {
        self.bin(AluOp::Mul, Expr::Const(c))
    }

    /// `self & c`.
    pub fn and(self, c: Word) -> Expr {
        self.bin(AluOp::And, Expr::Const(c))
    }

    /// Evaluates the expression for one scalar input (the sequential
    /// semantics, used as the oracle).
    pub fn eval(&self, input: Word) -> Word {
        match self {
            Expr::Input => input,
            Expr::Const(w) => *w,
            Expr::Bin(op, a, b) => apply(*op, a.eval(input), b.eval(input)),
        }
    }

    /// Compiles the expression over a whole input vector: emits elementwise
    /// vector instructions on `m` and returns the result vector.
    pub fn compile(&self, m: &mut Machine, input: &VReg) -> VReg {
        match self {
            Expr::Input => input.clone(),
            Expr::Const(w) => m.vsplat(*w, input.len()),
            Expr::Bin(op, a, b) => {
                // Constant on either side lowers to the cheaper
                // vector-scalar form.
                match (a.as_ref(), b.as_ref()) {
                    (_, Expr::Const(w)) => {
                        let av = a.compile(m, input);
                        m.valu_s(*op, &av, *w)
                    }
                    _ => {
                        let av = a.compile(m, input);
                        let bv = b.compile(m, input);
                        m.valu(*op, &av, &bv)
                    }
                }
            }
        }
    }

    /// Number of vector instructions [`Expr::compile`] will emit.
    pub fn cost(&self) -> usize {
        match self {
            Expr::Input => 0,
            Expr::Const(_) => 1,
            Expr::Bin(_, a, b) => {
                if matches!(b.as_ref(), Expr::Const(_)) {
                    a.cost() + 1
                } else {
                    a.cost() + b.cost() + 1
                }
            }
        }
    }
}

fn apply(op: AluOp, a: Word, b: Word) -> Word {
    match op {
        AluOp::Add => a.wrapping_add(b),
        AluOp::Sub => a.wrapping_sub(b),
        AluOp::Mul => a.wrapping_mul(b),
        AluOp::Div => a / b,
        AluOp::Rem => a % b,
        AluOp::Mod => a.rem_euclid(b),
        AluOp::And => a & b,
        AluOp::Or => a | b,
        AluOp::Xor => a ^ b,
        AluOp::Shl => a.wrapping_shl(b as u32),
        AluOp::Shr => a.wrapping_shr(b as u32),
        AluOp::Min => a.min(b),
        AluOp::Max => a.max(b),
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Input => write!(f, "x"),
            Expr::Const(w) => write!(f, "{w}"),
            Expr::Bin(op, a, b) => write!(f, "{op:?}({a}, {b})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::CostModel;

    #[test]
    fn eval_matches_compile() {
        // hash(x) = (x * 7 + 3) mod 521
        let e = Expr::input().times(7).plus(3).modulo(521);
        let inputs: Vec<Word> = vec![0, 1, 520, 1000, 98765];
        let mut m = Machine::new(CostModel::unit());
        let iv = m.vimm(&inputs);
        let out = e.compile(&mut m, &iv);
        for (i, &x) in inputs.iter().enumerate() {
            assert_eq!(out.get(i), e.eval(x));
        }
    }

    #[test]
    fn constant_folding_path_is_cheaper() {
        let with_consts = Expr::input().plus(1).modulo(100);
        let no_consts = Expr::input().bin(AluOp::Add, Expr::input());
        assert_eq!(with_consts.cost(), 2);
        assert_eq!(no_consts.cost(), 1);
        // Const-only expression splats once.
        assert_eq!(Expr::constant(5).cost(), 1);
    }

    #[test]
    fn vector_vector_operations_compile() {
        let e = Expr::input().bin(AluOp::Mul, Expr::input()); // x*x
        let mut m = Machine::new(CostModel::unit());
        let iv = m.vimm(&[2, 3, 4]);
        assert_eq!(e.compile(&mut m, &iv).as_slice(), &[4, 9, 16]);
    }

    #[test]
    fn display_is_readable() {
        let e = Expr::input().and(31).plus(1);
        assert_eq!(format!("{e}"), "Add(And(x, 31), 1)");
    }

    #[test]
    fn empty_input_vector() {
        let e = Expr::input().plus(1);
        let mut m = Machine::new(CostModel::unit());
        let iv = m.vimm(&[]);
        assert!(e.compile(&mut m, &iv).is_empty());
    }
}
