//! End-to-end integrity: incremental region checksums and the ELS auditor.
//!
//! FOL trusts two things the fault model (PR 1–3 plus this PR's read-side
//! extensions) can break: that memory still holds what was last stored
//! (bit-rot says otherwise) and that a gather faithfully returns the label
//! a scatter landed (flips, stale reads and torn gathers say otherwise).
//! This module supplies the detection machinery for both, owned by the
//! memory layer itself rather than bolted onto each workload:
//!
//! * **Incremental checksums** — the machine keeps one 64-bit XOR-of-hashes
//!   digest per *tracked* region ([`crate::Machine::track_region`]),
//!   updated on every instruction-level store in O(1). Because the digest
//!   is an XOR over `mix(addr, word)` terms, a store updates it as
//!   `sum ^= mix(a, old) ^ mix(a, new)` with no rescan. Bit-rot bypasses
//!   the store path by construction, so the incremental digest silently
//!   goes stale — which is exactly what [`crate::Machine::scrub`] detects
//!   by recomputing digests from memory and comparing.
//! * **The ELS auditor** ([`ElsAuditor`]) — a round-boundary referee for
//!   FOL's scatter→gather handshake. Before a label scatter, the executor
//!   notes the set of competing labels per target address; at the paired
//!   gather it checks that every lane read back *some* noted label. A
//!   dropped write (gather returns the pre-image), a torn write (amalgam),
//!   a gather flip, a stale read or rot on the work area all surface here,
//!   at the round boundary — rounds earlier than an oracle compare would
//!   catch them.
//!
//! Both detectors report typed [`IntegrityError`]s, which `fol-core`
//! converts into its `FolError` taxonomy so the retry ladder can react
//! (verified replay, snapshot repair, escalation) instead of the run
//! silently returning corrupted data.

use crate::fault::hash3;
use crate::memory::{Addr, Region};
use crate::vreg::Word;
use std::collections::HashMap;

/// One term of a region digest: a seeded avalanche of `(addr, word)`.
/// Position-dependent, so swapping two cells' contents changes the digest.
#[inline]
pub fn mix(addr: Addr, word: Word) -> u64 {
    hash3(addr as u64, word as u64, 0xC0DE_C4EC)
}

/// The XOR-of-[`mix`] digest of a region's contents, recomputed from a
/// snapshot. The machine maintains the same quantity incrementally.
pub fn digest_words(base: Addr, words: &[Word]) -> u64 {
    words
        .iter()
        .enumerate()
        .fold(0u64, |acc, (i, &w)| acc ^ mix(base + i, w))
}

/// A typed integrity violation — the "never silently wrong" half of the
/// robustness contract. Everything the checksum and audit layers can
/// detect is reported through this enum, never as a bare panic and never
/// as silently corrupted data.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum IntegrityError {
    /// A tracked region's incremental checksum no longer matches its
    /// memory contents: something wrote to memory behind the store path's
    /// back (bit-rot, by construction the only way).
    ChecksumMismatch {
        /// Name of the allocation the region belongs to.
        region: String,
        /// Base address of the tracked region.
        base: Addr,
        /// Length of the tracked region in words.
        len: usize,
        /// The incrementally maintained digest (what memory *should* hold).
        expected: u64,
        /// The digest recomputed from memory (what it actually holds).
        actual: u64,
    },
    /// A gathered label was not among the labels scattered to its address
    /// this round — an amalgam, a phantom read, a dropped write's
    /// pre-image, or read-path corruption. The ELS condition, caught in
    /// the act.
    GatherMismatch {
        /// Name of the allocation the audited region belongs to.
        region: String,
        /// The audited address.
        addr: Addr,
        /// Original element position within the gather.
        lane: usize,
        /// The label the gather returned.
        got: Word,
        /// The labels actually scattered to `addr` (any of which would
        /// have satisfied ELS).
        scattered: Vec<Word>,
    },
    /// Verified replay could not find two executions agreeing on a memory
    /// digest: the fault environment is too hot for majority voting and
    /// the supervisor must escalate.
    ReplayDivergence {
        /// Number of replays executed.
        replays: usize,
        /// Number of distinct digests observed among successful replays.
        distinct: usize,
    },
}

impl std::fmt::Display for IntegrityError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IntegrityError::ChecksumMismatch {
                region,
                base,
                len,
                expected,
                actual,
            } => write!(
                f,
                "checksum mismatch on region \"{region}\" [{base}, {}): \
                 expected {expected:#018x}, memory digests to {actual:#018x} \
                 — something wrote behind the store path (bit-rot)",
                base + len
            ),
            IntegrityError::GatherMismatch {
                region,
                addr,
                lane,
                got,
                scattered,
            } => write!(
                f,
                "ELS audit: gather lane {lane} read {got} from \"{region}\" addr {addr}, \
                 but the round scattered {scattered:?} there — \
                 the stored-label-is-one-of-the-written-labels invariant (§3.2) is broken"
            ),
            IntegrityError::ReplayDivergence { replays, distinct } => write!(
                f,
                "verified replay: {replays} replays produced {distinct} distinct memory \
                 digests, no 2-of-3 majority — escalating past the replay rung"
            ),
        }
    }
}

impl std::error::Error for IntegrityError {}

/// The ELS auditor: validates each FOL round's gathered labels against the
/// set of labels actually scattered.
///
/// Usage protocol (the machine wraps this behind
/// [`crate::Machine::audit_note_scatter`] / [`crate::Machine::audit_check_gather`]):
///
/// 1. Immediately before a label scatter, `note_scatter` records, per
///    target address, the multiset of competing labels. A later note for
///    the same address replaces the earlier one (the round's scatter is
///    the authority on what the cell may hold).
/// 2. Immediately after the paired gather, `check_gather` verifies each
///    lane's value is a member of its address's noted set, **consuming**
///    the entry either way. Consumption makes the audit pairwise: an
///    address checked once is not re-judged against a stale set when a
///    later, unrelated gather touches it (e.g. a payload read after the
///    round's winners overwrote the cell).
///
/// Addresses gathered without a noted scatter are skipped — the auditor
/// only judges the scatter→gather handshakes it was told about.
///
/// # Sampling
///
/// A full audit roughly doubles gather traffic (every round's labels are
/// mirrored host-side), which is the dominant cost of the defense. The
/// auditor therefore supports *seeded round sampling*
/// ([`ElsAuditor::with_rate`]): each `note_scatter` call opens one audited
/// round, and a rate-`N` auditor judges a deterministic, seed-selected
/// 1-in-`N` subset of rounds — the skipped rounds pay nothing (no notes,
/// and the paired `check_gather` finds no entries to judge). Detection
/// latency degrades gracefully: a *persistent* corrupter is still caught,
/// just up to `N-1` rounds later (the `integrity` bench prices this
/// trade-off at N ∈ {1, 4, 16}).
#[derive(Clone, Debug)]
pub struct ElsAuditor {
    /// Candidate labels per address, from the most recent noted scatter.
    expected: HashMap<Addr, Vec<Word>>,
    /// Audit 1-in-`rate` rounds (1 = every round; never 0).
    rate: u64,
    /// Seed for the round-selection hash.
    seed: u64,
    rounds_seen: u64,
    rounds_audited: u64,
    checked: u64,
    violations: u64,
}

impl Default for ElsAuditor {
    fn default() -> Self {
        Self {
            expected: HashMap::new(),
            rate: 1,
            seed: 0,
            rounds_seen: 0,
            rounds_audited: 0,
            checked: 0,
            violations: 0,
        }
    }
}

impl ElsAuditor {
    /// A fresh auditor with no noted scatters, auditing every round.
    pub fn new() -> Self {
        Self::default()
    }

    /// A fresh auditor that judges a seeded 1-in-`rate` sample of rounds.
    /// `rate` 0 or 1 both mean every round.
    pub fn with_rate(rate: u64, seed: u64) -> Self {
        Self {
            rate: rate.max(1),
            seed,
            ..Self::default()
        }
    }

    /// The configured sampling rate (1 = every round).
    pub fn rate(&self) -> u64 {
        self.rate
    }

    /// Rounds offered for auditing (one per `note_scatter` call).
    pub fn rounds_seen(&self) -> u64 {
        self.rounds_seen
    }

    /// Rounds the sampler actually selected for auditing.
    pub fn rounds_audited(&self) -> u64 {
        self.rounds_audited
    }

    /// Notes one label scatter: `vals[i]` competes for `addrs[i]`.
    /// Replaces any earlier note for the same addresses.
    ///
    /// Each call is one *round* for the sampler; a round the seeded sampler
    /// skips records nothing, so the paired gather check is free.
    pub fn note_scatter(&mut self, addrs: &[Addr], vals: &[Word]) {
        debug_assert_eq!(addrs.len(), vals.len());
        self.rounds_seen += 1;
        if self.rate > 1
            && !hash3(self.seed, self.rounds_seen, 0xA0D1_75A1).is_multiple_of(self.rate)
        {
            return;
        }
        self.rounds_audited += 1;
        // Two passes so re-noted addresses start from a clean slate instead
        // of accumulating labels across rounds.
        for &a in addrs {
            self.expected.remove(&a);
        }
        for (&a, &v) in addrs.iter().zip(vals) {
            self.expected.entry(a).or_default().push(v);
        }
    }

    /// Checks one gather against the noted scatters: for each lane whose
    /// address has a noted candidate set, `got[i]` must be a member.
    /// Entries are consumed (checked at most once). Returns the first
    /// violation; `region` names the audited allocation for the error.
    pub fn check_gather(
        &mut self,
        region: &str,
        addrs: &[Addr],
        got: &[Word],
    ) -> Result<(), IntegrityError> {
        debug_assert_eq!(addrs.len(), got.len());
        let mut first: Option<IntegrityError> = None;
        for (lane, (&addr, &g)) in addrs.iter().zip(got).enumerate() {
            let Some(candidates) = self.expected.remove(&addr) else {
                continue;
            };
            self.checked += 1;
            if !candidates.contains(&g) {
                self.violations += 1;
                if first.is_none() {
                    first = Some(IntegrityError::GatherMismatch {
                        region: region.to_string(),
                        addr,
                        lane,
                        got: g,
                        scattered: candidates,
                    });
                }
            }
        }
        match first {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }

    /// Forgets all noted scatters (e.g. at a transaction boundary),
    /// keeping the counters.
    pub fn clear(&mut self) {
        self.expected.clear();
    }

    /// Number of (addr, gather) handshakes judged so far.
    pub fn checked(&self) -> u64 {
        self.checked
    }

    /// Number of handshakes that violated ELS.
    pub fn violations(&self) -> u64 {
        self.violations
    }
}

/// One tracked region and its incrementally maintained digest.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TrackedRegion {
    /// Name of the allocation the region belongs to.
    pub name: String,
    /// The tracked region.
    pub region: Region,
    /// The incremental XOR-of-[`mix`] digest.
    pub sum: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mix_is_position_dependent() {
        assert_ne!(mix(0, 5), mix(1, 5));
        assert_ne!(mix(0, 5), mix(0, 6));
        // Swapping two cells' contents changes the digest.
        let a = digest_words(10, &[1, 2]);
        let b = digest_words(10, &[2, 1]);
        assert_ne!(a, b);
    }

    #[test]
    fn digest_matches_incremental_update() {
        let mut words = vec![3, 1, 4, 1, 5];
        let mut sum = digest_words(100, &words);
        // Store 9 at offset 2, incrementally.
        sum ^= mix(102, words[2]) ^ mix(102, 9);
        words[2] = 9;
        assert_eq!(sum, digest_words(100, &words));
    }

    #[test]
    fn auditor_accepts_any_competing_label() {
        let mut aud = ElsAuditor::new();
        aud.note_scatter(&[7, 7, 9], &[1, 2, 3]);
        // Address 7 may hold 1 or 2 (ELS: one of the competitors), 9 holds 3.
        assert!(aud.check_gather("w", &[7, 9], &[2, 3]).is_ok());
        assert_eq!(aud.checked(), 2);
        assert_eq!(aud.violations(), 0);
    }

    #[test]
    fn auditor_flags_amalgams_and_pre_images() {
        let mut aud = ElsAuditor::new();
        aud.note_scatter(&[4, 4], &[0b01, 0b10]);
        // An XOR amalgam (0b11) is neither competitor.
        let err = aud.check_gather("w", &[4], &[0b11]).unwrap_err();
        match err {
            IntegrityError::GatherMismatch {
                addr,
                got,
                scattered,
                ..
            } => {
                assert_eq!(addr, 4);
                assert_eq!(got, 0b11);
                assert_eq!(scattered, vec![0b01, 0b10]);
            }
            other => panic!("wrong error: {other:?}"),
        }
        assert_eq!(aud.violations(), 1);
    }

    #[test]
    fn auditor_consumes_entries_and_skips_unnoted_addresses() {
        let mut aud = ElsAuditor::new();
        aud.note_scatter(&[5], &[8]);
        assert!(aud.check_gather("w", &[5], &[8]).is_ok());
        // Entry consumed: a later gather of addr 5 (now holding payload
        // data) is not judged against the stale label set.
        assert!(aud.check_gather("w", &[5], &[-123]).is_ok());
        // Never-noted addresses are skipped entirely.
        assert!(aud.check_gather("w", &[99], &[0]).is_ok());
        assert_eq!(aud.checked(), 1);
    }

    #[test]
    fn renoting_an_address_replaces_its_candidates() {
        let mut aud = ElsAuditor::new();
        aud.note_scatter(&[3], &[1]);
        aud.note_scatter(&[3], &[2]);
        // Only the latest round's label is acceptable.
        assert!(aud.check_gather("w", &[3], &[1]).is_err());
    }

    #[test]
    fn sampled_auditor_skips_rounds_deterministically() {
        let mut a = ElsAuditor::with_rate(4, 7);
        let mut b = ElsAuditor::with_rate(4, 7);
        for round in 0..64 {
            a.note_scatter(&[round], &[1]);
            b.note_scatter(&[round], &[1]);
        }
        assert_eq!(a.rounds_seen(), 64);
        assert_eq!(
            a.rounds_audited(),
            b.rounds_audited(),
            "seeded = replayable"
        );
        // Roughly 1-in-4 of rounds selected; the exact subset is seed-fixed.
        assert!(
            (8..=28).contains(&(a.rounds_audited() as i64)),
            "expected ~16 audited rounds, got {}",
            a.rounds_audited()
        );
        // A different seed selects a different subset (overwhelmingly).
        let mut c = ElsAuditor::with_rate(4, 8);
        let mut picks_c = 0;
        for round in 0..64 {
            c.note_scatter(&[round], &[1]);
            picks_c = c.rounds_audited();
        }
        assert!(picks_c > 0, "rate 4 over 64 rounds must sample something");
    }

    #[test]
    fn sampled_auditor_still_catches_persistent_corruption() {
        // A corrupter that poisons *every* round cannot hide from a 1-in-4
        // sampler for long: the first sampled round convicts it.
        let mut aud = ElsAuditor::with_rate(4, 3);
        let mut detected_at = None;
        for round in 0..32u64 {
            aud.note_scatter(&[100 + round as Addr], &[5]);
            // The gather always returns a phantom value no scatter wrote.
            if aud
                .check_gather("w", &[100 + round as Addr], &[-99])
                .is_err()
            {
                detected_at = Some(round);
                break;
            }
        }
        let at = detected_at.expect("persistent corruption must be detected");
        assert!(at < 16, "detection latency bounded by a few skip windows");
        assert!(aud.rounds_audited() >= 1);
    }

    #[test]
    fn skipped_rounds_cost_nothing_and_judge_nothing() {
        // Rate u64::MAX: statistically no round is sampled, so even a
        // blatant violation goes unjudged — the explicit cost/coverage
        // trade-off the policy knob exposes.
        let mut aud = ElsAuditor::with_rate(u64::MAX, 1);
        for round in 0..16u64 {
            aud.note_scatter(&[round as Addr], &[1]);
            assert!(aud.check_gather("w", &[round as Addr], &[-1]).is_ok());
        }
        assert_eq!(aud.checked(), 0);
        assert_eq!(aud.rounds_seen(), 16);
    }

    #[test]
    fn integrity_errors_render_their_evidence() {
        let e = IntegrityError::ChecksumMismatch {
            region: "work".into(),
            base: 10,
            len: 4,
            expected: 0xAB,
            actual: 0xCD,
        };
        let s = e.to_string();
        assert!(s.contains("work"), "{s}");
        assert!(s.contains("bit-rot"), "{s}");
        let e = IntegrityError::ReplayDivergence {
            replays: 3,
            distinct: 3,
        };
        assert!(e.to_string().contains("2-of-3"));
    }
}
