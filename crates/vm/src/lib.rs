//! # fol-vm — a cost-modelled pipelined vector-processor simulator
//!
//! This crate is the hardware substrate for the reproduction of Kanada's
//! *filtering-overwritten-label* (FOL) method ("A Method of Vector Processing
//! for Shared Symbolic Data", Supercomputing '91). The paper evaluates FOL on
//! a Hitachi S-810, a memory-to-memory pipelined vector processor with
//! *list-vector* (indirect gather/scatter) instructions and masked operation
//! support. No such machine is available, so this crate models one:
//!
//! * a word-addressed [`Memory`] shared by scalar and vector code,
//! * vector values ([`VReg`]) and boolean mask values ([`Mask`]),
//! * the instruction repertoire FOL needs: contiguous and indirect
//!   loads/stores, elementwise ALU operations, compares producing masks,
//!   masked select/store, `compress` (Fortran-90 `pack` / the paper's
//!   `A where M`), `count_true`, `iota`, and reductions,
//! * a configurable [`CostModel`] that charges every instruction — vector
//!   instructions pay a start-up latency per strip plus a per-element chime;
//!   scalar operations pay a fixed per-operation cost — accumulated in
//!   [`Stats`] so that *modelled acceleration ratios* (scalar cycles /
//!   vector cycles) can be compared with the paper's measured ratios,
//! * pluggable [`ConflictPolicy`] semantics for scatters with duplicate
//!   indices. All policies satisfy the paper's **ELS condition** (*exclusive
//!   label storing*: exactly one of the competing values is stored, never an
//!   amalgam); which one wins is the policy's choice — including an
//!   ELS-conforming adversary ([`ConflictPolicy::Adversarial`]) built to
//!   provoke FOL\*'s livelock. [`Machine::scatter_ordered`]
//!   models the S-3800 `VSTX` instruction (element order defines the winner).
//! * deterministic **fault injection** ([`fault`]): a seed-driven
//!   [`FaultPlan`] drops scatter lanes and tears conflicting writes into
//!   amalgams, with every injected fault recorded in a [`FaultLog`] — the
//!   broken-hardware models that the hardened `fol-core` execution paths are
//!   tested against,
//! * typed **machine traps** ([`MachineTrap`]): trapping instructions
//!   (division by zero) exist in panicking and fallible (`try_*`) forms,
//! * **transactions** ([`journal`]): [`Machine::begin_txn`] opens a
//!   first-write undo log over every instruction-level store;
//!   [`Machine::abort_txn`] restores memory byte-exact, which is what lets
//!   the recovery supervisor in `fol-core` retry a faulted FOL round
//!   instead of surfacing a torn result,
//! * an **integrity layer** ([`integrity`]): per-[`Region`] incremental
//!   checksums ([`Machine::track_region`] / [`Machine::scrub`]) that catch
//!   resident bit-rot, and an [`ElsAuditor`] that validates each FOL round's
//!   gathered labels against the labels actually scattered — so a read-side
//!   lie (gather bit-flip, stale read, torn gather) or decayed work area
//!   surfaces as a typed [`IntegrityError`] at the round boundary instead of
//!   a silently wrong decomposition.
//!
//! The simulator is deliberately *functional* in style: instructions take and
//! return owned vector values, and the machine only owns memory, the cost
//! meter and the conflict-resolution state. This keeps algorithm code close
//! to the paper's Fortran-90-style pseudocode while remaining safe Rust.
//!
//! ```
//! use fol_vm::{Machine, CostModel};
//!
//! let mut m = Machine::new(CostModel::s810());
//! let table = m.alloc(8, "table");
//! // Scatter 3 values through an index vector with a duplicate index (ELS:
//! // one of the two writes to slot 5 survives).
//! let idx = m.vimm(&[5, 2, 5]);
//! let val = m.vimm(&[10, 20, 30]);
//! m.scatter(table, &idx, &val);
//! let back = m.gather(table, &idx);
//! assert_eq!(back.get(1), 20);
//! assert!(back.get(0) == 10 || back.get(0) == 30);
//! assert!(m.stats().vector_cycles > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod backend;
pub mod conflict;
pub mod cost;
pub mod expr;
pub mod fault;
pub mod health;
pub mod integrity;
pub mod journal;
pub mod machine;
pub mod memory;
pub mod program;
pub mod trace;
pub mod vreg;

pub use backend::{BackendKind, LaneEngine, ScalarEngine, SimEngine};
pub use conflict::{AdversaryState, ConflictPolicy};
pub use cost::{CostModel, OpKind, Stats};
pub use fault::{AmalgamMode, FaultEvent, FaultLog, FaultPlan};
pub use health::{LaneHealthRegistry, LaneSet, LANE_COUNT};
pub use integrity::{digest_words, ElsAuditor, IntegrityError, TrackedRegion};
pub use journal::{Snapshot, TxnError, WriteJournal};
pub use machine::{AluOp, CmpOp, Machine, MachineTrap};
pub use memory::{Addr, Memory, Region, SliceError};
pub use program::{execute, Inst, Program, Registers, Stop};
pub use trace::{TraceEntry, Tracer};
pub use vreg::{Mask, VReg, Word};
