//! Word-addressed main storage shared by scalar and vector code.
//!
//! The paper's algorithms read and write *main storage* through index
//! vectors; the work areas used for labels live in the same storage as the
//! data being rewritten (§3.2 discusses exactly when they may share). We model
//! storage as a flat array of words with a bump allocator handing out named
//! [`Region`]s, which makes every experiment's memory layout explicit and
//! every out-of-bounds access a hard, attributable error.

use crate::vreg::Word;
use std::fmt;

/// A word address in main storage.
pub type Addr = usize;

/// A contiguous allocation in [`Memory`].
///
/// Regions are cheap copyable handles; they exist so algorithm code can name
/// its arrays (`table`, `work`, `C`, …) the way the paper's pseudocode does,
/// and so bounds violations report *which* array was overrun.
#[derive(Clone, Copy, PartialEq, Eq)]
pub struct Region {
    base: Addr,
    len: usize,
}

impl Region {
    /// First word address of the region.
    #[inline]
    pub fn base(&self) -> Addr {
        self.base
    }

    /// Length in words.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the region has zero length.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Address of element `i`.
    ///
    /// # Panics
    /// Panics when `i >= len()`.
    #[inline]
    #[track_caller]
    pub fn at(&self, i: usize) -> Addr {
        assert!(
            i < self.len,
            "index {i} out of bounds of region of length {}",
            self.len
        );
        self.base + i
    }

    /// True when `addr` falls inside the region.
    #[inline]
    pub fn contains(&self, addr: Addr) -> bool {
        addr >= self.base && addr < self.base + self.len
    }

    /// Reconstructs a region handle from raw geometry.
    ///
    /// Regions normally come only from [`Memory::alloc`]; this constructor
    /// exists for the durability layer, which serializes a region's
    /// `(base, len)` into a checkpoint and must rebuild the same handle on
    /// restart. The caller owns the proof that the geometry matches a live
    /// allocation — reads and writes through a stale handle still hit the
    /// memory bounds checks, so the worst a wrong geometry can do is fail
    /// loudly.
    #[inline]
    pub fn from_raw(base: Addr, len: usize) -> Region {
        Region { base, len }
    }

    /// A sub-region `[offset, offset+len)` of this region, as a typed
    /// result: out-of-range sub-ranges come back as a [`SliceError`]
    /// carrying the full geometry instead of a panic deep in index code.
    pub fn try_slice(&self, offset: usize, len: usize) -> Result<Region, SliceError> {
        if offset.checked_add(len).is_some_and(|end| end <= self.len) {
            Ok(Region {
                base: self.base + offset,
                len,
            })
        } else {
            Err(SliceError {
                region: *self,
                offset,
                len,
            })
        }
    }

    /// A sub-region `[offset, offset+len)` of this region.
    ///
    /// # Panics
    /// Panics when the sub-range does not fit, naming the region's bounds;
    /// use [`Region::try_slice`] for the typed form.
    #[track_caller]
    pub fn slice(&self, offset: usize, len: usize) -> Region {
        self.try_slice(offset, len)
            .unwrap_or_else(|e| panic!("{e}"))
    }
}

/// A sub-range that does not fit inside its parent [`Region`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SliceError {
    /// The region the slice was taken from.
    pub region: Region,
    /// Requested sub-range start (relative to the region).
    pub offset: usize,
    /// Requested sub-range length.
    pub len: usize,
}

impl fmt::Display for SliceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "sub-region [{}, {}+{}) exceeds region of length {} ({:?})",
            self.offset,
            self.offset,
            self.len,
            self.region.len(),
            self.region
        )
    }
}

impl std::error::Error for SliceError {}

impl fmt::Debug for Region {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Region[{}..{}]", self.base, self.base + self.len)
    }
}

/// Flat word-addressed main storage with named allocations.
pub struct Memory {
    words: Vec<Word>,
    /// (name, region) in allocation order, for diagnostics.
    allocs: Vec<(String, Region)>,
}

impl Memory {
    /// Creates an empty memory.
    pub fn new() -> Self {
        Self {
            words: Vec::new(),
            allocs: Vec::new(),
        }
    }

    /// Allocates `len` words zero-initialized and registers them under
    /// `name` for diagnostics. Allocation itself is free of cycle charges:
    /// the experiments all pre-allocate their arrays, as the paper's Fortran
    /// programs do.
    pub fn alloc(&mut self, len: usize, name: &str) -> Region {
        let base = self.words.len();
        self.words.resize(base + len, 0);
        let region = Region { base, len };
        self.allocs.push((name.to_string(), region));
        region
    }

    /// Returns a scratch region of at least `len` words, allocating it on
    /// first use and reusing it afterwards (growing if a later caller needs
    /// more). Scratch memory backs *sacrificial* machine operations — the
    /// lane circuit breaker's scatter–gather self-test — that must not touch
    /// workload data and must not grow memory on every invocation.
    pub fn alloc_scratch(&mut self, len: usize) -> Region {
        if let Some(&(_, r)) = self
            .allocs
            .iter()
            .find(|(n, r)| n == "(scratch)" && r.len() >= len)
        {
            return r;
        }
        self.alloc(len, "(scratch)")
    }

    /// Total words currently allocated.
    #[inline]
    pub fn size(&self) -> usize {
        self.words.len()
    }

    /// Reads the word at `addr` (no cycle charge — simulator-internal).
    ///
    /// # Panics
    /// Panics on out-of-bounds access, naming the nearest allocation.
    #[inline]
    #[track_caller]
    pub fn read(&self, addr: Addr) -> Word {
        match self.words.get(addr) {
            Some(&w) => w,
            None => self.oob(addr),
        }
    }

    /// Writes the word at `addr` (no cycle charge — simulator-internal).
    ///
    /// # Panics
    /// Panics on out-of-bounds access.
    #[inline]
    #[track_caller]
    pub fn write(&mut self, addr: Addr, w: Word) {
        match self.words.get_mut(addr) {
            Some(slot) => *slot = w,
            None => self.oob(addr),
        }
    }

    /// Copies a whole region out (diagnostic helper; free).
    pub fn read_region(&self, region: Region) -> Vec<Word> {
        self.words[region.base..region.base + region.len].to_vec()
    }

    /// Fills a whole region (test/setup helper; free). Prefer
    /// [`crate::Machine::vstore`]/[`crate::Machine::vfill`] inside modelled code.
    ///
    /// # Panics
    /// Panics when `data.len() != region.len()`.
    #[track_caller]
    pub fn write_region(&mut self, region: Region, data: &[Word]) {
        assert_eq!(
            data.len(),
            region.len,
            "write_region: data length {} != region length {}",
            data.len(),
            region.len
        );
        self.words[region.base..region.base + region.len].copy_from_slice(data);
    }

    /// The whole storage as a word slice (`words()[addr]` is the word at
    /// `addr`). Execution backends address region-local windows of this
    /// slice; it carries no cycle charge, so modelled code must still go
    /// through the machine's charged instructions.
    #[inline]
    pub fn words(&self) -> &[Word] {
        &self.words
    }

    /// Mutable form of [`Memory::words`]. Writing through this slice
    /// bypasses the machine's journal/checksum choke point — only backend
    /// fast paths that have proven those features inactive may use it.
    #[inline]
    pub fn words_mut(&mut self) -> &mut [Word] {
        &mut self.words
    }

    /// The allocations made so far, in order (name, region).
    pub fn allocations(&self) -> &[(String, Region)] {
        &self.allocs
    }

    /// The name of the allocation that fully contains `region`, if any —
    /// used to attribute slice/bounds/integrity errors to the array the
    /// workload actually named.
    pub fn name_of(&self, region: Region) -> Option<&str> {
        let end = region.base() + region.len();
        self.allocs
            .iter()
            .find(|(_, r)| r.base() <= region.base() && end <= r.base() + r.len())
            .map(|(n, _)| n.as_str())
    }

    #[cold]
    #[track_caller]
    fn oob(&self, addr: Addr) -> ! {
        let context = self
            .allocs
            .iter()
            .map(|(n, r)| format!("{n}={r:?}"))
            .collect::<Vec<_>>()
            .join(", ");
        panic!(
            "address {addr} out of bounds (memory size {}); allocations: {context}",
            self.words.len()
        );
    }
}

impl Default for Memory {
    fn default() -> Self {
        Self::new()
    }
}

impl fmt::Debug for Memory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Memory")
            .field("size", &self.words.len())
            .field("allocations", &self.allocs.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_zeroed_and_contiguous() {
        let mut m = Memory::new();
        let a = m.alloc(4, "a");
        let b = m.alloc(2, "b");
        assert_eq!(a.base(), 0);
        assert_eq!(b.base(), 4);
        assert_eq!(m.size(), 6);
        assert!((0..6).all(|i| m.read(i) == 0));
    }

    #[test]
    fn read_write_roundtrip() {
        let mut m = Memory::new();
        let r = m.alloc(3, "r");
        m.write(r.at(1), 42);
        assert_eq!(m.read(r.at(1)), 42);
        assert_eq!(m.read_region(r), vec![0, 42, 0]);
    }

    #[test]
    fn write_region_fills() {
        let mut m = Memory::new();
        let r = m.alloc(3, "r");
        m.write_region(r, &[7, 8, 9]);
        assert_eq!(m.read_region(r), vec![7, 8, 9]);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn oob_read_panics_with_context() {
        let mut m = Memory::new();
        let _ = m.alloc(2, "small");
        m.read(99);
    }

    #[test]
    #[should_panic(expected = "exceeds region")]
    fn bad_slice_panics() {
        let mut m = Memory::new();
        let r = m.alloc(4, "r");
        let _ = r.slice(2, 3);
    }

    #[test]
    fn try_slice_returns_typed_geometry() {
        let mut m = Memory::new();
        let r = m.alloc(4, "r");
        assert_eq!(r.try_slice(1, 3).unwrap(), r.slice(1, 3));
        let e = r.try_slice(2, 3).unwrap_err();
        assert_eq!(e.offset, 2);
        assert_eq!(e.len, 3);
        assert_eq!(e.region, r);
        let msg = e.to_string();
        assert!(msg.contains("exceeds region"), "{msg}");
        assert!(msg.contains("Region[0..4]"), "{msg}");
        // Overflowing ranges are an error, not a wrap-around.
        assert!(r.try_slice(usize::MAX, 2).is_err());
    }

    #[test]
    fn name_of_attributes_subregions_to_their_allocation() {
        let mut m = Memory::new();
        let a = m.alloc(8, "table");
        let b = m.alloc(4, "work");
        assert_eq!(m.name_of(a), Some("table"));
        assert_eq!(m.name_of(a.slice(2, 3)), Some("table"));
        assert_eq!(m.name_of(b), Some("work"));
        // A region spanning past every allocation is unattributable.
        let wild = Region { base: 6, len: 4 };
        assert_eq!(m.name_of(wild), None);
    }

    #[test]
    fn region_geometry() {
        let mut m = Memory::new();
        let r = m.alloc(10, "r");
        let s = r.slice(3, 4);
        assert_eq!(s.base(), r.base() + 3);
        assert_eq!(s.len(), 4);
        assert!(s.contains(r.base() + 3));
        assert!(s.contains(r.base() + 6));
        assert!(!s.contains(r.base() + 7));
        assert_eq!(s.at(0), r.base() + 3);
        assert!(!s.is_empty());
        assert!(r.slice(0, 0).is_empty());
    }

    #[test]
    fn scratch_is_reused_not_leaked() {
        let mut m = Memory::new();
        let a = m.alloc_scratch(8);
        let b = m.alloc_scratch(4);
        assert_eq!(a, b, "a big-enough scratch region is reused");
        assert_eq!(m.size(), 8);
        let c = m.alloc_scratch(16);
        assert_ne!(a, c, "an undersized scratch region grows");
        assert_eq!(c.len(), 16);
        assert_eq!(m.alloc_scratch(10), c);
    }

    #[test]
    fn allocations_are_recorded() {
        let mut m = Memory::new();
        let _ = m.alloc(1, "x");
        let _ = m.alloc(1, "y");
        let names: Vec<_> = m.allocations().iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, ["x", "y"]);
    }
}
