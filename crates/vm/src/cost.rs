//! Cycle cost model and execution statistics.
//!
//! The paper's evaluation metric is the *acceleration ratio*: sequential
//! (scalar) execution time divided by vectorized execution time, measured on
//! one machine. To reproduce the shape of those curves without the S-810 we
//! charge every simulated instruction a cycle cost from a [`CostModel`]:
//!
//! * a vector instruction over `n` elements costs
//!   `ceil(n / vlen) * startup + n * per_elem` cycles (`per_elem` is
//!   multiplied by `gather_factor`/`scatter_factor` for list-vector traffic
//!   and by `prefix_factor` for recurrence macro instructions, which on real
//!   machines run at a fraction of streaming bandwidth);
//! * a scalar operation costs a fixed per-op amount: *random* memory ops pay
//!   full main-storage latency, *sequential* ones stream from interleaved
//!   banks, ALU ops are cheap, and every loop iteration pays a branch.
//!
//! The defaults ([`CostModel::s810`]) are calibrated so the asymptotic
//! vector/scalar throughput advantage lands in the 3–13x band the paper
//! reports across its workloads; `EXPERIMENTS.md` in the repository root
//! records model-vs-paper numbers for every figure.

use std::fmt;

/// Classification of simulated operations, for cost charging and statistics.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
#[allow(missing_docs)] // variant names are self-describing
pub enum OpKind {
    VLoad,
    VStore,
    VGather,
    VScatter,
    VScatterOrdered,
    VAlu,
    VCmp,
    VMaskOp,
    VCompress,
    VExpand,
    VReduce,
    VIota,
    /// First-order-recurrence macro instruction (cumulative sum) — the
    /// S-810 family's vector macro ops.
    VPrefix,
    SLoad,
    SStore,
    /// Scalar load with sequential (streaming) access pattern.
    SLoadSeq,
    /// Scalar store with sequential (streaming) access pattern.
    SStoreSeq,
    SAlu,
    SCmp,
    SBranch,
}

impl OpKind {
    /// All kinds, in display order.
    pub const ALL: [OpKind; 20] = [
        OpKind::VLoad,
        OpKind::VStore,
        OpKind::VGather,
        OpKind::VScatter,
        OpKind::VScatterOrdered,
        OpKind::VAlu,
        OpKind::VCmp,
        OpKind::VMaskOp,
        OpKind::VCompress,
        OpKind::VExpand,
        OpKind::VReduce,
        OpKind::VIota,
        OpKind::VPrefix,
        OpKind::SLoad,
        OpKind::SStore,
        OpKind::SLoadSeq,
        OpKind::SStoreSeq,
        OpKind::SAlu,
        OpKind::SCmp,
        OpKind::SBranch,
    ];

    /// True for vector-pipeline instructions.
    pub fn is_vector(self) -> bool {
        !matches!(
            self,
            OpKind::SLoad
                | OpKind::SStore
                | OpKind::SLoadSeq
                | OpKind::SStoreSeq
                | OpKind::SAlu
                | OpKind::SCmp
                | OpKind::SBranch
        )
    }

    /// True for indirect (list-vector) memory instructions.
    pub fn is_indirect(self) -> bool {
        matches!(
            self,
            OpKind::VGather | OpKind::VScatter | OpKind::VScatterOrdered
        )
    }

    fn index(self) -> usize {
        Self::ALL
            .iter()
            .position(|&k| k == self)
            .expect("OpKind::ALL is exhaustive")
    }
}

/// Cycle costs for the simulated machine.
#[derive(Clone, Debug, PartialEq)]
pub struct CostModel {
    /// Vector register length: long vectors are processed in strips of this
    /// many elements, each strip paying `startup` once.
    pub vlen: usize,
    /// Pipeline start-up latency per vector strip, in cycles.
    pub startup: u64,
    /// Cycles per element for streaming (unit-stride) vector operations.
    pub per_elem: u64,
    /// Multiplier on `per_elem` for gather (list-vector load) traffic.
    pub gather_factor: u64,
    /// Multiplier on `per_elem` for scatter (list-vector store) traffic;
    /// higher than gathers on real machines because conflicting bank access
    /// must be arbitrated.
    pub scatter_factor: u64,
    /// Multiplier on `per_elem` for first-order-recurrence macro
    /// instructions (cumulative sum), which run the pipe below full rate.
    pub prefix_factor: u64,
    /// Cycles per *random* (data-dependent) scalar memory operation — a
    /// pointer chase or table probe pays full main-storage latency on a
    /// cache-less 1991 machine.
    pub scalar_mem: u64,
    /// Cycles per *sequential* (streaming) scalar memory operation, which
    /// interleaved memory banks service far faster.
    pub scalar_mem_seq: u64,
    /// Cycles per scalar ALU or compare operation.
    pub scalar_alu: u64,
    /// Cycles per scalar branch (charged once per loop iteration).
    pub scalar_branch: u64,
}

impl CostModel {
    /// Default calibration, loosely modelled on the Hitachi S-810: 256-element
    /// vector registers, long start-up, ~1 element/cycle streaming, indirect
    /// traffic at half streaming speed, and a slow scalar unit (a 1991
    /// memory-to-memory machine pays main-storage latency on every scalar
    /// access — there is no cache to hide it).
    ///
    /// The constants were calibrated against the paper's own measurements:
    /// with this model, multiple hashing peaks at ~4.5x (table size 521)
    /// and ~8.6x (table size 4099) near load factor 0.4 versus the paper's
    /// 5.2x and 12.3x at 0.5, with the same rise-then-fall shape and
    /// size ordering. See EXPERIMENTS.md for the full comparison.
    pub fn s810() -> Self {
        Self {
            vlen: 256,
            startup: 192,
            per_elem: 1,
            gather_factor: 4,
            scatter_factor: 8,
            prefix_factor: 2,
            scalar_mem: 128,
            scalar_mem_seq: 8,
            scalar_alu: 32,
            scalar_branch: 40,
        }
    }

    /// A degenerate model in which every operation costs 1 cycle per element
    /// and start-up is free. Useful in unit tests that assert operation
    /// *counts* rather than modelled time.
    pub fn unit() -> Self {
        Self {
            vlen: usize::MAX,
            startup: 0,
            per_elem: 1,
            gather_factor: 1,
            scatter_factor: 1,
            prefix_factor: 1,
            scalar_mem: 1,
            scalar_mem_seq: 1,
            scalar_alu: 1,
            scalar_branch: 1,
        }
    }

    /// Cycles for one vector instruction of kind `kind` over `n` elements.
    pub fn vector_cost(&self, kind: OpKind, n: usize) -> u64 {
        debug_assert!(kind.is_vector());
        let strips = if n == 0 {
            1 // even a zero-length vector instruction pays issue latency
        } else {
            n.div_ceil(self.vlen.max(1)) as u64 as usize
        };
        let factor = match kind {
            OpKind::VGather => self.gather_factor,
            OpKind::VScatter | OpKind::VScatterOrdered => self.scatter_factor,
            OpKind::VPrefix => self.prefix_factor,
            _ => 1,
        };
        strips as u64 * self.startup + self.per_elem * factor * n as u64
    }

    /// Cycles for `count` scalar operations of kind `kind`.
    pub fn scalar_cost(&self, kind: OpKind, count: u64) -> u64 {
        debug_assert!(!kind.is_vector());
        let per = match kind {
            OpKind::SLoad | OpKind::SStore => self.scalar_mem,
            OpKind::SLoadSeq | OpKind::SStoreSeq => self.scalar_mem_seq,
            OpKind::SAlu | OpKind::SCmp => self.scalar_alu,
            OpKind::SBranch => self.scalar_branch,
            _ => unreachable!("vector kind in scalar_cost"),
        };
        per * count
    }
}

impl Default for CostModel {
    fn default() -> Self {
        Self::s810()
    }
}

/// Accumulated execution statistics.
///
/// `Stats` separates scalar from vector cycles so an experiment can run the
/// scalar baseline and the vectorized algorithm on the *same* machine (the
/// paper's setup) and compute the acceleration ratio from one place.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Stats {
    /// Cycles spent in vector instructions.
    pub vector_cycles: u64,
    /// Cycles spent in scalar operations.
    pub scalar_cycles: u64,
    /// Instruction/operation counts per kind.
    counts: [u64; OpKind::ALL.len()],
    /// Total vector elements processed (sum of instruction lengths).
    pub vector_elements: u64,
    /// Longest vector instruction issued.
    pub max_vlen: usize,
    /// Number of vector instructions issued.
    pub vector_instructions: u64,
}

impl Stats {
    /// Fresh, zeroed statistics.
    pub fn new() -> Self {
        Self::default()
    }

    /// Total modelled cycles (scalar + vector).
    #[inline]
    pub fn cycles(&self) -> u64 {
        self.vector_cycles + self.scalar_cycles
    }

    /// Count for one operation kind.
    pub fn count(&self, kind: OpKind) -> u64 {
        self.counts[kind.index()]
    }

    /// Records a vector instruction of `n` elements costing `cycles`.
    pub(crate) fn record_vector(&mut self, kind: OpKind, n: usize, cycles: u64) {
        self.vector_cycles += cycles;
        self.counts[kind.index()] += 1;
        self.vector_elements += n as u64;
        self.max_vlen = self.max_vlen.max(n);
        self.vector_instructions += 1;
    }

    /// Records `count` scalar operations costing `cycles` in total.
    pub(crate) fn record_scalar(&mut self, kind: OpKind, count: u64, cycles: u64) {
        self.scalar_cycles += cycles;
        self.counts[kind.index()] += count;
    }

    /// Mean vector length over all vector instructions, or 0.0 when none
    /// were issued. Short mean vector length is the paper's explanation for
    /// poor acceleration at low load factors (Fig 10).
    pub fn mean_vlen(&self) -> f64 {
        if self.vector_instructions == 0 {
            0.0
        } else {
            self.vector_elements as f64 / self.vector_instructions as f64
        }
    }

    /// `other` minus `self`, field-wise; both must come from the same machine
    /// with `other` observed later.
    pub fn delta(&self, other: &Stats) -> Stats {
        let mut counts = [0u64; OpKind::ALL.len()];
        for (i, c) in counts.iter_mut().enumerate() {
            *c = other.counts[i] - self.counts[i];
        }
        Stats {
            vector_cycles: other.vector_cycles - self.vector_cycles,
            scalar_cycles: other.scalar_cycles - self.scalar_cycles,
            counts,
            vector_elements: other.vector_elements - self.vector_elements,
            max_vlen: other.max_vlen, // high-water mark, not subtractive
            vector_instructions: other.vector_instructions - self.vector_instructions,
        }
    }
}

impl fmt::Display for Stats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "cycles: {} (vector {}, scalar {})",
            self.cycles(),
            self.vector_cycles,
            self.scalar_cycles
        )?;
        writeln!(
            f,
            "vector instructions: {} (mean length {:.1}, max {})",
            self.vector_instructions,
            self.mean_vlen(),
            self.max_vlen
        )?;
        for kind in OpKind::ALL {
            let c = self.count(kind);
            if c > 0 {
                writeln!(f, "  {kind:?}: {c}")?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vector_cost_strip_mining() {
        let m = CostModel {
            vlen: 4,
            startup: 10,
            per_elem: 1,
            ..CostModel::unit()
        };
        // 10 elements = 3 strips of <=4.
        assert_eq!(m.vector_cost(OpKind::VAlu, 10), 3 * 10 + 10);
        // zero-length still pays one issue.
        assert_eq!(m.vector_cost(OpKind::VAlu, 0), 10);
        // exactly one strip
        assert_eq!(m.vector_cost(OpKind::VAlu, 4), 10 + 4);
    }

    #[test]
    fn indirect_ops_cost_more() {
        let m = CostModel::s810();
        let stream = m.vector_cost(OpKind::VLoad, 100);
        let gather = m.vector_cost(OpKind::VGather, 100);
        let scatter = m.vector_cost(OpKind::VScatter, 100);
        assert!(gather > stream);
        assert!(scatter > gather, "scatters pay conflict arbitration");
        assert_eq!(gather - stream, (m.gather_factor - 1) * m.per_elem * 100);
        assert_eq!(scatter - stream, (m.scatter_factor - 1) * m.per_elem * 100);
    }

    #[test]
    fn prefix_and_seq_scalar_costs() {
        let m = CostModel::s810();
        assert_eq!(
            m.vector_cost(OpKind::VPrefix, 256),
            m.startup + m.prefix_factor * 256
        );
        assert!(m.scalar_cost(OpKind::SLoadSeq, 1) < m.scalar_cost(OpKind::SLoad, 1));
    }

    #[test]
    fn scalar_costs_by_kind() {
        let m = CostModel::s810();
        assert_eq!(m.scalar_cost(OpKind::SLoad, 3), 3 * m.scalar_mem);
        assert_eq!(m.scalar_cost(OpKind::SAlu, 2), 2 * m.scalar_alu);
        assert_eq!(m.scalar_cost(OpKind::SBranch, 1), m.scalar_branch);
    }

    #[test]
    fn stats_accumulation_and_delta() {
        let mut s = Stats::new();
        s.record_vector(OpKind::VAlu, 8, 20);
        s.record_vector(OpKind::VGather, 4, 30);
        s.record_scalar(OpKind::SAlu, 5, 25);
        assert_eq!(s.cycles(), 75);
        assert_eq!(s.count(OpKind::VAlu), 1);
        assert_eq!(s.count(OpKind::SAlu), 5);
        assert_eq!(s.vector_elements, 12);
        assert_eq!(s.max_vlen, 8);
        assert!((s.mean_vlen() - 6.0).abs() < 1e-12);

        let before = s.clone();
        s.record_vector(OpKind::VAlu, 2, 5);
        let d = before.delta(&s);
        assert_eq!(d.vector_cycles, 5);
        assert_eq!(d.count(OpKind::VAlu), 1);
        assert_eq!(d.vector_elements, 2);
    }

    #[test]
    fn mean_vlen_empty_is_zero() {
        assert_eq!(Stats::new().mean_vlen(), 0.0);
    }

    #[test]
    fn display_lists_used_kinds_only() {
        let mut s = Stats::new();
        s.record_vector(OpKind::VCompress, 3, 9);
        let out = format!("{s}");
        assert!(out.contains("VCompress: 1"));
        assert!(!out.contains("VGather"));
    }

    #[test]
    fn opkind_classification() {
        assert!(OpKind::VGather.is_vector());
        assert!(OpKind::VGather.is_indirect());
        assert!(!OpKind::VAlu.is_indirect());
        assert!(!OpKind::SBranch.is_vector());
    }
}
