//! Cheney copying collection — scalar baseline and vectorized (FOL) form.

use crate::heap::{is_pointer, Heap, NOT_FWD};
use fol_vm::{CmpOp, Machine, VReg, Word};

/// Report from a collection.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct GcReport {
    /// Cells copied into to-space (live cells).
    pub copied: usize,
    /// Forwarding rounds in which at least one FOL claim lost and retried
    /// (vectorized only).
    pub contended_rounds: usize,
}

/// Scalar Cheney collection: returns the to-space heap and rewritten roots.
pub fn collect_scalar(m: &mut Machine, from: &Heap, roots: &[Word]) -> (Heap, Vec<Word>, GcReport) {
    let mut to = Heap::alloc(m, from.used.max(1), "to");
    let mut new_roots = Vec::with_capacity(roots.len());
    for &r in roots {
        let nr = forward_scalar(m, from, &mut to, r);
        new_roots.push(nr);
    }
    // Cheney scan.
    let mut scan = 0usize;
    while scan < to.used {
        m.s_cmp(1);
        m.s_branch(1);
        let car = m.s_read(to.car.at(scan));
        let ncar = forward_scalar(m, from, &mut to, car);
        if ncar != car {
            m.s_write(to.car.at(scan), ncar);
        }
        let cdr = m.s_read(to.cdr.at(scan));
        let ncdr = forward_scalar(m, from, &mut to, cdr);
        if ncdr != cdr {
            m.s_write(to.cdr.at(scan), ncdr);
        }
        scan += 1;
    }
    let copied = to.used;
    (
        to,
        new_roots,
        GcReport {
            copied,
            contended_rounds: 0,
        },
    )
}

fn forward_scalar(m: &mut Machine, from: &Heap, to: &mut Heap, w: Word) -> Word {
    m.s_cmp(1);
    if !is_pointer(w) {
        return w;
    }
    let f = m.s_read(from.fwd.at(w as usize));
    m.s_cmp(1);
    m.s_branch(1);
    if f != NOT_FWD {
        return f;
    }
    let car = m.s_read(from.car.at(w as usize));
    let cdr = m.s_read(from.cdr.at(w as usize));
    let new = to.cons(m, car, cdr);
    // cons's writes are part of the modelled copy; charge them.
    m.s_write(to.car.at(new as usize), car);
    m.s_write(to.cdr.at(new as usize), cdr);
    m.s_write(from.fwd.at(w as usize), new);
    new
}

/// Forwards a batch of tagged words with vector operations; immediates pass
/// through. The FOL claim: unforwarded referents get subscript labels
/// scattered into their forwarding slots; the element that reads its own
/// label back copies the cell and installs the real forwarding pointer, and
/// every loser resolves on a later pass through the forwarded path.
fn forward_batch(
    m: &mut Machine,
    from: &Heap,
    to: &mut Heap,
    words: &VReg,
    report: &mut GcReport,
) -> VReg {
    let n = words.len();
    let mut result: Vec<Word> = words.iter().collect();
    // Pending = positions holding still-unresolved pointers.
    let mut pending: Vec<usize> = (0..n).filter(|&i| is_pointer(words.get(i))).collect();

    while !pending.is_empty() {
        let cur: VReg = pending.iter().map(|&p| result[p]).collect();
        let cur = m.vimm(cur.as_slice());
        // Resolve already-forwarded referents.
        let fwd = m.gather(from.fwd, &cur);
        let done = m.vcmp_s(CmpOp::Ne, &fwd, NOT_FWD);
        let mut rest = Vec::with_capacity(pending.len());
        for (i, &p) in pending.iter().enumerate() {
            if done.get(i) {
                result[p] = fwd.get(i);
            } else {
                rest.push(p);
            }
        }
        if rest.is_empty() {
            break;
        }
        // FOL claim on the unforwarded referents.
        let claim: VReg = rest.iter().map(|&p| result[p]).collect();
        let claim = m.vimm(claim.as_slice());
        let labels = m.iota(0, claim.len());
        m.scatter(from.fwd, &claim, &labels);
        let got = m.gather(from.fwd, &claim);
        let won = m.vcmp(CmpOp::Eq, &got, &labels);
        let winners = m.compress(&claim, &won);
        if winners.len() < claim.len() {
            report.contended_rounds += 1;
        }
        // Bulk-copy the winners' cells (conflict-free: winners are distinct).
        let k = winners.len();
        assert!(to.used + k <= to.capacity(), "to-space exhausted");
        let new_idx = m.iota(to.used as Word, k);
        let cars = m.gather(from.car, &winners);
        let cdrs = m.gather(from.cdr, &winners);
        m.scatter(to.car, &new_idx, &cars);
        m.scatter(to.cdr, &new_idx, &cdrs);
        m.scatter(from.fwd, &winners, &new_idx);
        to.used += k;
        report.copied += k;
        pending = rest; // losers re-read the forwarding slots next pass
    }
    VReg::from_vec(result)
}

/// Vectorized Cheney collection: returns the to-space heap and rewritten
/// roots. Duplicate and aliasing roots are fine — that is the point.
pub fn collect_vector(m: &mut Machine, from: &Heap, roots: &[Word]) -> (Heap, Vec<Word>, GcReport) {
    let mut to = Heap::alloc(m, from.used.max(1), "to");
    let mut report = GcReport::default();
    let root_v = m.vimm(roots);
    let new_roots = forward_batch(m, from, &mut to, &root_v, &mut report);

    // Cheney scan in vector strips: everything between scan and the
    // allocation frontier is unscanned.
    let mut scan = 0usize;
    while scan < to.used {
        let len = to.used - scan;
        for field in [to.car, to.cdr] {
            let words = m.vload(field, scan, len);
            let fixed = forward_batch(m, from, &mut to, &words, &mut report);
            m.vstore(field, scan, &fixed);
        }
        scan += len;
    }
    (to, new_roots.into_vec(), report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::heap::{decode_imm, encode_imm};
    use fol_vm::{ConflictPolicy, CostModel, Machine};

    fn machine() -> Machine {
        Machine::new(CostModel::unit())
    }

    #[test]
    fn scalar_collects_a_list_and_drops_garbage() {
        let mut m = machine();
        let mut h = Heap::alloc(&mut m, 16, "from");
        let live = h.list_of(&mut m, &[1, 2, 3]);
        let _garbage = h.list_of(&mut m, &[9, 9, 9, 9]);
        let (to, roots, report) = collect_scalar(&mut m, &h, &[live]);
        assert_eq!(report.copied, 3);
        assert_eq!(to.used, 3);
        assert!(Heap::same_shape(&m, &h, live, &to, roots[0]));
    }

    #[test]
    fn vector_collects_a_list_and_drops_garbage() {
        let mut m = machine();
        let mut h = Heap::alloc(&mut m, 16, "from");
        let live = h.list_of(&mut m, &[1, 2, 3]);
        let _garbage = h.list_of(&mut m, &[9, 9, 9, 9]);
        let (to, roots, report) = collect_vector(&mut m, &h, &[live]);
        assert_eq!(report.copied, 3);
        assert!(Heap::same_shape(&m, &h, live, &to, roots[0]));
        // Check payload order survived.
        let (car, _) = to.cell(&m, roots[0]);
        assert_eq!(decode_imm(car), 1);
    }

    #[test]
    fn sharing_is_preserved_not_duplicated() {
        for policy in [
            ConflictPolicy::FirstWins,
            ConflictPolicy::LastWins,
            ConflictPolicy::Arbitrary(13),
        ] {
            let mut m = Machine::with_policy(CostModel::unit(), policy.clone());
            let mut h = Heap::alloc(&mut m, 16, "from");
            let shared = h.list_of(&mut m, &[7]);
            let a = h.cons(&mut m, shared, shared);
            let b = h.cons(&mut m, shared, encode_imm(0));
            let (to, roots, report) = collect_vector(&mut m, &h, &[a, b]);
            // shared(1 cell) + a + b = 3 cells, NOT 5.
            assert_eq!(report.copied, 3, "{policy:?}");
            assert!(Heap::same_shape(&m, &h, a, &to, roots[0]), "{policy:?}");
            assert!(Heap::same_shape(&m, &h, b, &to, roots[1]), "{policy:?}");
            // The two new roots must still share: a.car == b.car.
            let (a_car, a_cdr) = to.cell(&m, roots[0]);
            let (b_car, _) = to.cell(&m, roots[1]);
            assert_eq!(a_car, b_car, "{policy:?}: sharing lost");
            assert_eq!(a_car, a_cdr, "{policy:?}: intra-cell sharing lost");
        }
    }

    #[test]
    fn duplicate_roots_forward_to_one_copy() {
        let mut m = machine();
        let mut h = Heap::alloc(&mut m, 8, "from");
        let x = h.list_of(&mut m, &[4, 5]);
        let (to, roots, report) = collect_vector(&mut m, &h, &[x, x, x]);
        assert_eq!(report.copied, 2);
        assert_eq!(roots[0], roots[1]);
        assert_eq!(roots[1], roots[2]);
        assert!(Heap::same_shape(&m, &h, x, &to, roots[0]));
    }

    #[test]
    fn cycles_survive() {
        let mut m = machine();
        let mut h = Heap::alloc(&mut m, 8, "from");
        let c = h.cons(&mut m, encode_imm(1), encode_imm(0));
        m.mem_mut().write(h.cdr.at(c as usize), c); // self-loop
        let (to, roots, report) = collect_vector(&mut m, &h, &[c]);
        assert_eq!(report.copied, 1);
        let (_, cdr) = to.cell(&m, roots[0]);
        assert_eq!(cdr, roots[0], "cycle must point at the copy itself");
        assert!(Heap::same_shape(&m, &h, c, &to, roots[0]));
    }

    #[test]
    fn scalar_and_vector_agree_on_random_graphs() {
        let mut seed = 77u64;
        let mut next = move |mo: u64| {
            seed = seed.wrapping_mul(6364136223846793005).wrapping_add(123);
            ((seed >> 33) % mo) as Word
        };
        // Random heap: 60 cells, fields point backwards (DAG) or hold imms.
        let mut ms = machine();
        let mut hs = Heap::alloc(&mut ms, 80, "from");
        for i in 0..60 {
            let f = |r: Word, i: Word| {
                if r % 3 == 0 && i > 0 {
                    r % i
                } else {
                    encode_imm(r)
                }
            };
            let car = f(next(1000), i);
            let cdr = f(next(1000), i);
            let _ = hs.cons(&mut ms, car, cdr);
        }
        let roots: Vec<Word> = vec![59, 58, 59, 30];
        let (to_s, roots_s, rep_s) = collect_scalar(&mut ms, &hs, &roots);
        // Rebuild an identical machine state for the vector run by copying
        // the from-space image.
        let mut mv = machine();
        let mut hv = Heap::alloc(&mut mv, 80, "from");
        for i in 0..60 {
            let (car, cdr) = hs.cell(&ms, i as Word);
            let _ = hv.cons(&mut mv, car, cdr);
        }
        let (to_v, roots_v, rep_v) = collect_vector(&mut mv, &hv, &roots);
        assert_eq!(rep_s.copied, rep_v.copied, "live set must agree");
        // Every rewritten root must be shape-equal to its original graph.
        for (i, &orig) in roots.iter().enumerate() {
            assert!(Heap::same_shape(&ms, &hs, orig, &to_s, roots_s[i]));
            assert!(Heap::same_shape(&mv, &hv, orig, &to_v, roots_v[i]));
        }
    }

    #[test]
    fn repeated_collections_compose() {
        // Collect, mutate nothing, collect again: a second collection of
        // the to-space (acting as the new from-space) preserves structure
        // and copies exactly the same number of live cells.
        let mut m = machine();
        let mut h = Heap::alloc(&mut m, 32, "gen0");
        let shared = h.list_of(&mut m, &[1, 2]);
        let root = h.cons(&mut m, shared, shared);
        let _ = h.list_of(&mut m, &[9, 9, 9]); // garbage

        let (gen1, roots1, rep1) = collect_vector(&mut m, &h, &[root]);
        assert_eq!(rep1.copied, 3);
        let (gen2, roots2, rep2) = collect_vector(&mut m, &gen1, &[roots1[0]]);
        assert_eq!(rep2.copied, 3, "no garbage in gen1: same live count");
        assert!(Heap::same_shape(&m, &h, root, &gen2, roots2[0]));
        let (car, cdr) = gen2.cell(&m, roots2[0]);
        assert_eq!(car, cdr, "sharing survives two collections");
    }

    #[test]
    fn immediates_pass_through() {
        let mut m = machine();
        let mut h = Heap::alloc(&mut m, 4, "from");
        let _ = h.cons(&mut m, encode_imm(0), encode_imm(0));
        let (_, roots, report) = collect_vector(&mut m, &h, &[encode_imm(42)]);
        assert_eq!(roots[0], encode_imm(42));
        assert_eq!(report.copied, 0);
    }

    #[test]
    fn empty_roots_copy_nothing() {
        let mut m = machine();
        let mut h = Heap::alloc(&mut m, 4, "from");
        let _ = h.list_of(&mut m, &[1]);
        let (to, roots, report) = collect_vector(&mut m, &h, &[]);
        assert!(roots.is_empty());
        assert_eq!(report.copied, 0);
        assert_eq!(to.used, 0);
    }

    #[test]
    fn contention_is_observed_with_heavy_aliasing() {
        let mut m = machine();
        let mut h = Heap::alloc(&mut m, 8, "from");
        let x = h.cons(&mut m, encode_imm(1), encode_imm(0));
        let roots = vec![x; 10];
        let (_, new_roots, report) = collect_vector(&mut m, &h, &roots);
        assert_eq!(report.copied, 1);
        assert!(new_roots.iter().all(|&r| r == new_roots[0]));
        assert!(report.contended_rounds >= 1, "ten aliases must contend");
    }
}
