//! # fol-gc — a vectorized copying garbage collector
//!
//! The paper's related-work section (§5) observes that Appel and
//! Bendiksen's *vectorized garbage collection* "implicitly includes a very
//! specialized version of FOL": when a batch of fields all referencing the
//! same unforwarded object is evacuated with vector operations, installing
//! the forwarding pointer is an overwrite-and-check — only the first output
//! set `S1` is needed (the winner copies; everyone else re-reads the
//! forwarding pointer on the next pass). This crate builds that collector on
//! the simulated machine as a realistic symbolic workload for FOL:
//!
//! * cons-cell heaps in struct-of-arrays regions ([`heap::Heap`]): `car`,
//!   `cdr`, plus a forwarding slot per cell that doubles as the FOL label
//!   work area;
//! * a **vectorized Cheney collector** ([`collect::collect_vector`]): roots
//!   and scanned fields are forwarded in batches — gather forwarding slots,
//!   satisfy already-forwarded references, FOL-claim the rest (scatter
//!   labels, gather back), winners bulk-copy into to-space with conflict-free
//!   scatters and install real forwarding pointers, losers retry next pass;
//! * a **scalar Cheney baseline** ([`collect::collect_scalar`]) charged at
//!   scalar cost, for modelled acceleration ratios.
//!
//! Cycles and shared substructure are preserved exactly (the forwarding
//! pointer *is* the sharing), which the test suite checks with a
//! graph-isomorphism walk.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod collect;
pub mod heap;

pub use collect::{collect_scalar, collect_vector};
pub use heap::{decode_imm, encode_imm, is_pointer, Heap, NOT_FWD};
