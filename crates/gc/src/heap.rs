//! Cons-cell heaps in machine memory.
//!
//! A cell is a pair of tagged words. A word `w >= 0` is a **pointer** to
//! cell `w` of the same heap; `w < 0` is an **immediate** carrying payload
//! `-w - 1` (so payload 0 encodes as -1, etc.). The struct-of-arrays layout
//! (`car[i]`, `cdr[i]`, `fwd[i]`) keeps every GC phase expressible as
//! vector instructions over whole regions.

use fol_vm::{Machine, Region, Word};

/// Forwarding-slot value meaning "not yet forwarded".
///
/// Forwarding slots otherwise hold to-space indices (or, transiently inside
/// one FOL round, labels) — all non-negative, so `NOT_FWD` is unambiguous.
pub const NOT_FWD: Word = -1;

/// Encodes an immediate payload (`payload >= 0`) as a tagged word.
#[inline]
pub fn encode_imm(payload: Word) -> Word {
    assert!(payload >= 0, "immediate payloads are non-negative");
    -payload - 1
}

/// Decodes an immediate word back to its payload.
///
/// # Panics
/// Panics when the word is a pointer.
#[inline]
pub fn decode_imm(w: Word) -> Word {
    assert!(w < 0, "{w} is a pointer, not an immediate");
    -w - 1
}

/// True when the tagged word is a pointer.
#[inline]
pub fn is_pointer(w: Word) -> bool {
    w >= 0
}

/// A semispace of cons cells.
#[derive(Clone, Copy, Debug)]
pub struct Heap {
    /// First fields.
    pub car: Region,
    /// Second fields.
    pub cdr: Region,
    /// Forwarding slots (and FOL label work area).
    pub fwd: Region,
    /// Cells allocated so far.
    pub used: usize,
}

impl Heap {
    /// Allocates an empty semispace of `capacity` cells, forwarding slots
    /// initialized to [`NOT_FWD`].
    pub fn alloc(m: &mut Machine, capacity: usize, name: &str) -> Self {
        let car = m.alloc(capacity, &format!("{name}.car"));
        let cdr = m.alloc(capacity, &format!("{name}.cdr"));
        let fwd = m.alloc(capacity, &format!("{name}.fwd"));
        m.vfill(fwd, NOT_FWD);
        Heap {
            car,
            cdr,
            fwd,
            used: 0,
        }
    }

    /// Capacity in cells.
    pub fn capacity(&self) -> usize {
        self.car.len()
    }

    /// Allocates one cell (free setup op); returns its index.
    pub fn cons(&mut self, m: &mut Machine, car: Word, cdr: Word) -> Word {
        assert!(self.used < self.capacity(), "heap exhausted");
        let i = self.used;
        self.used += 1;
        m.mem_mut().write(self.car.at(i), car);
        m.mem_mut().write(self.cdr.at(i), cdr);
        i as Word
    }

    /// Builds a proper list of immediates; returns the head pointer (or the
    /// empty-list immediate `encode_imm(0)` for no elements).
    pub fn list_of(&mut self, m: &mut Machine, payloads: &[Word]) -> Word {
        let mut tail = encode_imm(0);
        for &p in payloads.iter().rev() {
            tail = self.cons(m, encode_imm(p), tail);
        }
        tail
    }

    /// Reads a cell (diagnostic, free).
    pub fn cell(&self, m: &Machine, ptr: Word) -> (Word, Word) {
        let i = ptr as usize;
        (m.mem().read(self.car.at(i)), m.mem().read(self.cdr.at(i)))
    }

    /// Structural equality of two rooted graphs across (possibly different)
    /// heaps — isomorphism that respects sharing and cycles: pointer pairs
    /// must correspond one-to-one.
    pub fn same_shape(m: &Machine, a: &Heap, root_a: Word, b: &Heap, root_b: Word) -> bool {
        fn walk(
            m: &Machine,
            a: &Heap,
            wa: Word,
            b: &Heap,
            wb: Word,
            map: &mut std::collections::HashMap<Word, Word>,
        ) -> bool {
            if !is_pointer(wa) || !is_pointer(wb) {
                return wa == wb;
            }
            if let Some(&mapped) = map.get(&wa) {
                return mapped == wb;
            }
            map.insert(wa, wb);
            let (ca, da) = a.cell(m, wa);
            let (cb, db) = b.cell(m, wb);
            walk(m, a, ca, b, cb, map) && walk(m, a, da, b, db, map)
        }
        let mut map = std::collections::HashMap::new();
        walk(m, a, root_a, b, root_b, &mut map)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fol_vm::CostModel;

    #[test]
    fn tagging_roundtrip() {
        assert_eq!(decode_imm(encode_imm(0)), 0);
        assert_eq!(decode_imm(encode_imm(42)), 42);
        assert!(is_pointer(0));
        assert!(is_pointer(7));
        assert!(!is_pointer(encode_imm(3)));
    }

    #[test]
    #[should_panic(expected = "is a pointer")]
    fn decode_pointer_panics() {
        decode_imm(5);
    }

    #[test]
    fn cons_and_list() {
        let mut m = Machine::new(CostModel::unit());
        let mut h = Heap::alloc(&mut m, 8, "h");
        let l = h.list_of(&mut m, &[1, 2]);
        assert!(is_pointer(l));
        let (car, cdr) = h.cell(&m, l);
        assert_eq!(decode_imm(car), 1);
        let (car2, cdr2) = h.cell(&m, cdr);
        assert_eq!(decode_imm(car2), 2);
        assert_eq!(cdr2, encode_imm(0));
        assert_eq!(h.used, 2);
    }

    #[test]
    fn same_shape_detects_sharing() {
        let mut m = Machine::new(CostModel::unit());
        let mut a = Heap::alloc(&mut m, 8, "a");
        let shared = a.cons(&mut m, encode_imm(9), encode_imm(0));
        let ra = a.cons(&mut m, shared, shared); // both fields share a cell

        let mut b = Heap::alloc(&mut m, 8, "b");
        let s1 = b.cons(&mut m, encode_imm(9), encode_imm(0));
        let s2 = b.cons(&mut m, encode_imm(9), encode_imm(0));
        let rb_unshared = b.cons(&mut m, s1, s2); // same values, no sharing
        let s3 = b.cons(&mut m, encode_imm(9), encode_imm(0));
        let rb_shared = b.cons(&mut m, s3, s3);

        assert!(Heap::same_shape(&m, &a, ra, &b, rb_shared));
        assert!(!Heap::same_shape(&m, &a, ra, &b, rb_unshared));
    }

    #[test]
    fn same_shape_handles_cycles() {
        let mut m = Machine::new(CostModel::unit());
        let mut a = Heap::alloc(&mut m, 4, "a");
        let ca = a.cons(&mut m, encode_imm(1), encode_imm(0));
        m.mem_mut().write(a.cdr.at(ca as usize), ca); // self-cycle

        let mut b = Heap::alloc(&mut m, 4, "b");
        let cb = b.cons(&mut m, encode_imm(1), encode_imm(0));
        m.mem_mut().write(b.cdr.at(cb as usize), cb);

        assert!(Heap::same_shape(&m, &a, ca, &b, cb));
    }

    #[test]
    #[should_panic(expected = "heap exhausted")]
    fn overflow_panics() {
        let mut m = Machine::new(CostModel::unit());
        let mut h = Heap::alloc(&mut m, 1, "h");
        let _ = h.cons(&mut m, encode_imm(0), encode_imm(0));
        let _ = h.cons(&mut m, encode_imm(0), encode_imm(0));
    }
}
