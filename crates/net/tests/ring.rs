//! Property tests for the consistent-hash ring behind [`fol_net::ShardMap`].
//!
//! Two properties carry the whole rebalance story and are checked across a
//! seed sweep of cluster geometries:
//!
//! * **balance** — with enough vnodes (≥ 64), no node owns wildly more
//!   shards than another (bounded max/min ratio), so a join/evict moves a
//!   bounded slice of the key space;
//! * **minimal movement** — a membership change moves only the shards it
//!   must: a join moves shards *to the joiner only* (no third-party
//!   shuffle), an evict moves *only the leaver's shards*, and re-adding
//!   the same node restores the exact prior assignment.

use fol_net::ShardMap;
use std::collections::HashMap;

/// Deterministic pseudo-node names varied by `seed`, so the sweep probes
/// many distinct ring-point layouts without any runtime randomness.
fn nodes(n: usize, seed: u64) -> Vec<String> {
    (0..n)
        .map(|i| format!("10.{}.{}.{}:7000", seed % 251, (seed / 251) % 251, i))
        .collect()
}

fn shards_per_node(map: &ShardMap) -> Vec<usize> {
    let mut counts = vec![0usize; map.nodes.len()];
    for shard in 0..map.shards {
        counts[map.owner(shard)] += 1;
    }
    counts
}

#[test]
fn ring_balances_within_bounds_at_64_vnodes() {
    for seed in 0..8u64 {
        for &n in &[3usize, 5, 8] {
            let map = ShardMap::build(nodes(n, seed), 256, 64, 2);
            let counts = shards_per_node(&map);
            let max = *counts.iter().max().unwrap();
            let min = *counts.iter().min().unwrap();
            assert!(min > 0, "seed {seed}, {n} nodes: a node owns nothing");
            let ratio = max as f64 / min as f64;
            assert!(
                ratio <= 3.0,
                "seed {seed}, {n} nodes: max/min shard ratio {ratio:.2} \
                 (counts {counts:?}) exceeds the 64-vnode balance bound"
            );
        }
    }
}

#[test]
fn join_moves_shards_only_to_the_joiner() {
    for seed in 0..8u64 {
        for &n in &[3usize, 5] {
            let old = ShardMap::build(nodes(n, seed), 128, 64, 2);
            let joiner = format!("10.99.{seed}.42:7000");
            let new = old.with_node_added(joiner.clone());
            assert_eq!(new.epoch, old.epoch + 1, "a join bumps the epoch");
            let moved = old.moved_shards(&new);
            for (shard, from, to) in &moved {
                assert_eq!(
                    to, &joiner,
                    "seed {seed}: shard {shard} moved {from} -> {to}, \
                     but only the joiner may gain shards"
                );
            }
            // Every shard that did NOT move kept its owner.
            let moved_ids: Vec<u32> = moved.iter().map(|(s, _, _)| *s).collect();
            for shard in 0..old.shards {
                if !moved_ids.contains(&shard) {
                    assert_eq!(
                        old.owner_addr(shard),
                        new.owner_addr(shard),
                        "seed {seed}: unmoved shard {shard} changed owner"
                    );
                }
            }
            // The joiner's gain is a meaningful slice, not zero and not
            // the whole ring.
            assert!(!moved.is_empty(), "seed {seed}: the joiner gained nothing");
            assert!(
                moved.len() < old.shards as usize / 2,
                "seed {seed}: a single join moved {} of {} shards",
                moved.len(),
                old.shards
            );
        }
    }
}

#[test]
fn evict_moves_only_the_leavers_shards() {
    for seed in 0..8u64 {
        for &n in &[3usize, 5] {
            let old = ShardMap::build(nodes(n, seed), 128, 64, 2);
            let leaver_idx = (seed as usize) % n;
            let leaver = old.nodes[leaver_idx].clone();
            // Handoffs track *primary* ownership; secondary replica slots
            // the leaver held are re-derived from the map, not shipped.
            let leaver_shards: Vec<u32> = (0..old.shards)
                .filter(|&s| old.owner(s) == leaver_idx)
                .collect();
            let new = old.without_node(&leaver);
            assert_eq!(new.epoch, old.epoch + 1, "an evict bumps the epoch");
            let moved = old.moved_shards(&new);
            for (shard, from, _to) in &moved {
                assert_eq!(
                    from, &leaver,
                    "seed {seed}: shard {shard} left {from}, \
                     but only the leaver's shards may move"
                );
                assert!(
                    leaver_shards.contains(shard),
                    "seed {seed}: moved shard {shard} was not the leaver's"
                );
            }
            assert_eq!(
                moved.len(),
                leaver_shards.len(),
                "seed {seed}: every shard the leaver owned must move"
            );
        }
    }
}

#[test]
fn rejoin_restores_the_exact_prior_assignment() {
    for seed in 0..8u64 {
        let old = ShardMap::build(nodes(5, seed), 128, 64, 2);
        let leaver = old.nodes[2].clone();
        let shrunk = old.without_node(&leaver);
        let grown = shrunk.with_node_added(leaver);
        // Ring points depend only on addresses, so the round trip lands
        // every shard exactly where it started (epoch aside).
        for shard in 0..old.shards {
            assert_eq!(
                old.owner_addr(shard),
                grown.owner_addr(shard),
                "seed {seed}: shard {shard} did not return home"
            );
        }
        assert_eq!(grown.epoch, old.epoch + 2);
    }
}

#[test]
fn replica_groups_are_distinct_nodes() {
    for seed in 0..4u64 {
        for &(n, r) in &[(3usize, 2u32), (5, 3)] {
            let map = ShardMap::build(nodes(n, seed), 128, 64, r);
            for shard in 0..map.shards {
                let group = map.replicas(shard);
                assert_eq!(group.len(), r as usize);
                let mut seen: HashMap<u32, ()> = HashMap::new();
                for &node in group {
                    assert!(
                        seen.insert(node, ()).is_none(),
                        "seed {seed}: shard {shard} lists node {node} twice"
                    );
                }
            }
        }
    }
}
