//! Property tests for the wire codec: round-trip fidelity plus the
//! adversarial guarantee — for every message, truncation at *every* byte
//! boundary and *any* single-byte flip yields a typed refusal or (for a
//! payload-only flip that happens to keep the CRC — impossible for a
//! single flip) a correct parse. Never a silent mis-parse.

use fol_net::wire::{frame_bytes, read_frame, ClientMsg, ReadFrameError, ServerMsg, WireOutcome};
use fol_persist::PersistError;
use fol_serve::{Request, Response, ServeError, WorkloadClass};

fn sample_client_msgs() -> Vec<ClientMsg> {
    let mut msgs = vec![ClientMsg::Health, ClientMsg::Shutdown];
    let requests = vec![
        Request::ChainInsert { keys: vec![] },
        Request::ChainInsert {
            keys: vec![0, -1, i64::MAX, i64::MIN],
        },
        Request::OaInsert {
            keys: vec![1, 2, 3],
        },
        Request::OaLookup { keys: vec![7] },
        Request::BstInsert {
            keys: (0..40).collect(),
        },
        Request::Digest {
            class: WorkloadClass::Chain,
        },
        Request::InjectRot {
            class: WorkloadClass::OpenAddr,
        },
        Request::PoisonPill {
            class: WorkloadClass::Bst,
        },
    ];
    for (i, request) in requests.into_iter().enumerate() {
        // Alternate un-sharded (NO_SHARD, epoch 0) and sharded stamps so
        // the sweep covers both routing forms of the submit frame.
        let sharded = i % 2 == 1;
        msgs.push(ClientMsg::Submit {
            client_id: i as u64,
            seq: (i as u64) * 17 + 3,
            acked_floor: i as u64,
            deadline_millis: (i % 2 == 0).then_some(250 + i as u64),
            shard: if sharded {
                i as u32
            } else {
                fol_serve::NO_SHARD
            },
            map_epoch: if sharded { 1 + i as u64 } else { 0 },
            request,
        });
    }
    msgs
}

fn sample_server_msgs() -> Vec<ServerMsg> {
    let outcomes = vec![
        WireOutcome::Ok(Response::ChainInserted { rounds: 3 }),
        WireOutcome::Ok(Response::OaInserted {
            iterations: 2,
            probes: 19,
        }),
        WireOutcome::Ok(Response::OaLookedUp {
            found: vec![true, false, true],
        }),
        WireOutcome::Ok(Response::BstInserted {
            iterations: 4,
            retries: 1,
        }),
        WireOutcome::Ok(Response::ClassDigest {
            digest: u64::MAX,
            count: 40,
        }),
        WireOutcome::Ok(Response::RotInjected),
        WireOutcome::Busy,
        WireOutcome::Err(ServeError::Overloaded { capacity: 8 }),
        WireOutcome::Err(ServeError::DeadlineExceeded),
        WireOutcome::Err(ServeError::Rejected {
            reason: "negative key -7".into(),
        }),
        WireOutcome::Err(ServeError::Failed {
            reason: "ladder exhausted".into(),
        }),
        WireOutcome::Err(ServeError::WorkerLost),
        WireOutcome::Err(ServeError::ShuttingDown),
        WireOutcome::Err(ServeError::Persist {
            error: PersistError::CrcMismatch {
                what: "wal segment".into(),
                offset: 128,
                expected: 0xAB,
                actual: 0xCD,
            },
        }),
        WireOutcome::Err(ServeError::Persist {
            error: PersistError::Truncated {
                what: "checkpoint".into(),
                offset: 8,
                needed: 64,
                available: 3,
            },
        }),
    ];
    let mut msgs: Vec<ServerMsg> = outcomes
        .into_iter()
        .enumerate()
        .map(|(i, outcome)| ServerMsg::Result {
            seq: i as u64,
            outcome,
        })
        .collect();
    msgs.push(ServerMsg::Health {
        counters: vec![("submitted".into(), 12), ("net.in_flight".into(), 3)],
    });
    msgs.push(ServerMsg::WireRefused {
        what: "crc mismatch at offset 0".into(),
    });
    msgs.push(ServerMsg::ShutdownAck);
    msgs
}

/// Reads one frame from `bytes` and fully decodes it with `decode`,
/// classifying the result.
enum Parse<T> {
    Clean(T),
    Typed,
}

fn parse<T>(bytes: &[u8], decode: impl Fn(&[u8]) -> Result<T, PersistError>) -> Parse<T> {
    match read_frame(&mut &bytes[..], "prop") {
        Ok(Some(payload)) => match decode(&payload) {
            Ok(v) => Parse::Clean(v),
            Err(_) => Parse::Typed,
        },
        // A clean EOF here means the truncation removed the whole frame:
        // the reader correctly reports "no message", which is a typed,
        // non-silent verdict at the session layer (the peer hung up).
        Ok(None) => Parse::Typed,
        Err(ReadFrameError::Io { .. }) | Err(ReadFrameError::Frame(_)) => Parse::Typed,
    }
}

fn assert_adversarial_bytes_never_misparse<T: PartialEq + std::fmt::Debug>(
    framed: &[u8],
    original: &T,
    decode: impl Fn(&[u8]) -> Result<T, PersistError> + Copy,
) {
    // Truncation at every byte boundary.
    for cut in 0..framed.len() {
        match parse(&framed[..cut], decode) {
            Parse::Typed => {}
            Parse::Clean(_) => panic!("truncation to {cut}/{} bytes parsed", framed.len()),
        }
    }
    // Every single-byte flip (all 8 bits of every byte would be 8x slower;
    // one inverted byte per position already covers header, length, CRC,
    // and payload corruption classes).
    for at in 0..framed.len() {
        let mut bad = framed.to_vec();
        bad[at] ^= 0xFF;
        match parse(&bad, decode) {
            Parse::Typed => {}
            Parse::Clean(v) => {
                // The only acceptable clean parse of corrupted bytes is the
                // original message (e.g. a flip in bytes past the frame —
                // impossible here since we frame exactly one message).
                assert_eq!(
                    &v, original,
                    "flip at byte {at} mis-parsed into a different message"
                );
                panic!("flip at byte {at} of {} parsed cleanly", framed.len());
            }
        }
    }
}

#[test]
fn every_client_message_round_trips() {
    for msg in sample_client_msgs() {
        let framed = frame_bytes(&msg.encode());
        match parse(&framed, ClientMsg::decode) {
            Parse::Clean(decoded) => assert_eq!(decoded, msg),
            Parse::Typed => panic!("clean frame refused for {msg:?}"),
        }
    }
}

#[test]
fn every_server_message_round_trips() {
    for msg in sample_server_msgs() {
        let framed = frame_bytes(&msg.encode());
        match parse(&framed, ServerMsg::decode) {
            Parse::Clean(decoded) => assert_eq!(decoded, msg),
            Parse::Typed => panic!("clean frame refused for {msg:?}"),
        }
    }
}

#[test]
fn truncations_and_flips_of_client_frames_are_typed_refusals() {
    for msg in sample_client_msgs() {
        let framed = frame_bytes(&msg.encode());
        assert_adversarial_bytes_never_misparse(&framed, &msg, ClientMsg::decode);
    }
}

#[test]
fn truncations_and_flips_of_server_frames_are_typed_refusals() {
    for msg in sample_server_msgs() {
        let framed = frame_bytes(&msg.encode());
        assert_adversarial_bytes_never_misparse(&framed, &msg, ServerMsg::decode);
    }
}

#[test]
fn trailing_garbage_inside_a_frame_is_malformed() {
    // The CRC cannot catch garbage that was framed in; the decoders must.
    for msg in sample_client_msgs() {
        let mut payload = msg.encode();
        payload.push(0xEE);
        let err = ClientMsg::decode(&payload).unwrap_err();
        assert!(
            matches!(err, PersistError::Malformed { .. }),
            "{msg:?}: {err}"
        );
    }
}
