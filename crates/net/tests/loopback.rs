//! End-to-end over loopback: the wire front-end must preserve every
//! guarantee of the in-process serving layer — typed outcomes, bounded
//! admission, exactly-once re-submission, health under saturation, and
//! graceful drain.

use fol_net::{NetClient, NetClientConfig, NetError, NetServer, NetServerConfig, WireFaultPlan};
use fol_serve::{keys_digest, Request, Response, ServeError, Server, ServerConfig, WorkloadClass};
use fol_vm::Word;
use std::time::Duration;

fn small_server(workers: usize) -> Server {
    Server::start(ServerConfig {
        workers,
        queue_capacity: 256,
        max_batch: 32,
        max_wait: Duration::from_millis(1),
        idle_tick: Duration::from_millis(1),
        chain_buckets: 32,
        chain_capacity: 2048,
        oa_slots: 256,
        bst_capacity: 512,
        ..ServerConfig::default()
    })
}

fn client_for(net: &NetServer, client_id: u64) -> NetClient {
    NetClient::new(
        net.local_addr().to_string(),
        NetClientConfig {
            client_id,
            call_deadline: Duration::from_secs(10),
            ..NetClientConfig::default()
        },
    )
}

fn chain_union(report: &fol_serve::ShutdownReport) -> Vec<Word> {
    let mut keys: Vec<Word> = report
        .dumps
        .iter()
        .filter(|d| d.class == WorkloadClass::Chain)
        .flat_map(|d| d.keys.iter().copied())
        .collect();
    keys.sort_unstable();
    keys
}

#[test]
fn remote_requests_round_trip_with_typed_outcomes() {
    let net = NetServer::start(small_server(2), NetServerConfig::default()).unwrap();
    let mut client = client_for(&net, 7);

    // Success paths, all four kinds.
    assert!(matches!(
        client.call(Request::ChainInsert { keys: vec![1, 2] }),
        Ok(Response::ChainInserted { .. })
    ));
    assert!(matches!(
        client.call(Request::OaInsert { keys: vec![5, 9] }),
        Ok(Response::OaInserted { .. })
    ));
    assert_eq!(
        client.call(Request::OaLookup { keys: vec![5, 6] }),
        Ok(Response::OaLookedUp {
            found: vec![true, false]
        })
    );
    assert!(matches!(
        client.call(Request::BstInsert { keys: vec![3] }),
        Ok(Response::BstInserted { .. })
    ));

    // A typed rejection crosses the wire as the same typed rejection, and
    // is terminal (no retry burned the deadline).
    match client.call(Request::OaInsert { keys: vec![-4] }) {
        Err(NetError::Serve(ServeError::Rejected { reason })) => {
            assert!(reason.contains("negative"), "{reason}")
        }
        other => panic!("expected a typed rejection, got {other:?}"),
    }

    // The remote digest equals the digest of what we inserted.
    let (digest, count) = client.digest(WorkloadClass::Chain).unwrap();
    assert_eq!((digest, count), (keys_digest(&[1, 2]), 2));

    let report = net.shutdown();
    assert_eq!(chain_union(&report), vec![1, 2]);
}

#[test]
fn pipelined_batches_coalesce_remotely() {
    let net = NetServer::start(small_server(1), NetServerConfig::default()).unwrap();
    let mut client = client_for(&net, 3);
    let batch: Vec<Request> = (0..64)
        .map(|k| Request::ChainInsert { keys: vec![k] })
        .collect();
    let results = client.call_many(&batch);
    assert!(results.iter().all(|r| r.is_ok()), "{results:?}");
    let stats = net.stats();
    assert!(
        stats.batches < 64,
        "64 pipelined submits must coalesce into fewer batches, got {}",
        stats.batches
    );
    let report = net.shutdown();
    assert_eq!(chain_union(&report), (0..64).collect::<Vec<Word>>());
}

#[test]
fn resubmission_under_the_same_seq_is_exactly_once() {
    // A client-side fault plan that drops many request frames forces
    // retries; the dedupe table must keep re-submission from double-
    // applying. The oracle: every acknowledged key appears exactly once.
    let net = NetServer::start(small_server(2), NetServerConfig::default()).unwrap();
    let mut client = NetClient::new(
        net.local_addr().to_string(),
        NetClientConfig {
            client_id: 11,
            call_deadline: Duration::from_secs(30),
            fault_plan: Some(WireFaultPlan {
                seed: 0xD00D,
                drop_per_mille: 250,
                dup_per_mille: 150,
                ..Default::default()
            }),
            ..NetClientConfig::default()
        },
    );
    let keys: Vec<Word> = (100..164).collect();
    for &k in &keys {
        assert!(
            matches!(
                client.call(Request::ChainInsert { keys: vec![k] }),
                Ok(Response::ChainInserted { .. })
            ),
            "key {k} must eventually be acknowledged"
        );
    }
    let report = net.shutdown();
    assert_eq!(
        chain_union(&report),
        keys,
        "dropped/duplicated/retried frames must not lose or double-apply keys"
    );
}

#[test]
fn net_admission_bound_is_a_typed_overload_and_health_still_answers() {
    // A tiny in-flight bound and a server that lingers: saturate, then
    // assert (a) the typed Overloaded verdict, (b) Health answered anyway.
    let server = Server::start(ServerConfig {
        workers: 1,
        queue_capacity: 256,
        max_batch: 256,
        max_wait: Duration::from_secs(2), // linger holds tickets open
        idle_tick: Duration::from_millis(1),
        chain_buckets: 32,
        chain_capacity: 2048,
        oa_slots: 256,
        bst_capacity: 512,
        ..ServerConfig::default()
    });
    let net = NetServer::start(
        server,
        NetServerConfig {
            max_in_flight: 4,
            ..NetServerConfig::default()
        },
    )
    .unwrap();

    // Saturate from a raw pipelined burst: 32 submits, bound 4. The burst
    // client must NOT retry (retries would eventually succeed and hide the
    // refusal), so drive the wire directly with a zero-retry deadline...
    let mut burst = NetClient::new(
        net.local_addr().to_string(),
        NetClientConfig {
            client_id: 21,
            call_deadline: Duration::from_millis(900),
            io_timeout: Duration::from_millis(300),
            ..NetClientConfig::default()
        },
    );
    let batch: Vec<Request> = (0..32)
        .map(|k| Request::ChainInsert { keys: vec![k] })
        .collect();
    let results = burst.call_many(&batch);
    let overloaded = results
        .iter()
        .filter(|r| matches!(r, Err(NetError::Deadline { .. })))
        .count();
    assert!(
        overloaded > 0,
        "a 32-deep burst against a 4-deep bound must shed something: {results:?}"
    );

    // While the admission window is saturated (the linger holds tickets
    // for up to 2s), Health must still answer from a fresh connection.
    let mut prober = client_for(&net, 22);
    let t0 = std::time::Instant::now();
    let counters = prober.health().expect("health must bypass admission");
    assert!(
        t0.elapsed() < Duration::from_millis(800),
        "health answered in {:?}, not promptly",
        t0.elapsed()
    );
    let in_flight = counters
        .iter()
        .find(|(n, _)| n == "net.in_flight")
        .map(|(_, v)| *v)
        .expect("health carries the net-layer in-flight gauge");
    assert!(in_flight <= 4, "bound respected: {in_flight}");
    drop(net.shutdown());
}

#[test]
fn graceful_shutdown_answers_admitted_requests_before_draining() {
    let net = NetServer::start(small_server(2), NetServerConfig::default()).unwrap();
    let mut client = client_for(&net, 9);
    let results = client.call_many(
        &(0..16)
            .map(|k| Request::ChainInsert { keys: vec![k] })
            .collect::<Vec<_>>(),
    );
    assert!(results.iter().all(|r| r.is_ok()));
    // A wire-level shutdown request flips the flag the embedding process
    // polls.
    assert!(!net.shutdown_requested());
    client.request_shutdown().unwrap();
    assert!(net.shutdown_requested());
    let report = net.shutdown();
    assert_eq!(report.stats.submitted, report.stats.completed);
    assert_eq!(chain_union(&report), (0..16).collect::<Vec<Word>>());
}
