//! Replicated serving with content-digest voting and failover.
//!
//! A [`ReplicaSet`] drives the same request traffic to N independent
//! serving processes and only trusts what a **quorum** agrees on:
//!
//! * every batch is applied to every live replica (each with its own retry
//!   ladder); a request is acknowledged to the caller when at least
//!   `quorum` replicas returned the same typed outcome;
//! * correctness is checked by **content-digest voting**
//!   ([`fol_serve::Request::Digest`]): the per-class, order-insensitive
//!   key digest is requested from each replica, and the majority value
//!   wins. Response payloads (round counts, probe counts) legitimately
//!   differ across replicas — batch composition and escalation history
//!   are not replicated — so votes are cast on *logical content*, which
//!   must agree, never on response bytes, which need not;
//! * **failover is eviction**: a replica that stops answering (crashed or
//!   unreachable past `max_strikes` consecutive batches) or lands in the
//!   digest minority is removed from the set and never consulted again.
//!   The set keeps serving while `live >= quorum` and returns a typed
//!   [`NetError::NoQuorum`] once it cannot.
//!
//! The recovery ladder behind each replica ends in a rung that always
//! completes (`ScalarTail`), so two live replicas that acknowledged the
//! same traffic converge on the same content digest — divergence signals
//! real corruption, not scheduling noise.

use crate::client::{NetClient, NetClientConfig};
use crate::NetError;
use fol_serve::{Request, Response, WorkloadClass};
use std::collections::HashMap;

/// Why a replica was removed from the set.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum EvictReason {
    /// The replica stopped answering (crash, partition, or persistent
    /// timeouts) for `max_strikes` consecutive batches.
    Unresponsive {
        /// The final failure, rendered.
        last: String,
    },
    /// The replica's content digest disagreed with the quorum's.
    DigestMinority {
        /// What the replica answered.
        got: (u64, u64),
        /// What the quorum agreed on.
        majority: (u64, u64),
    },
}

/// One replica's public state.
#[derive(Clone, Debug)]
pub struct ReplicaStatus {
    /// The replica's address.
    pub addr: String,
    /// Consecutive failed batches (reset by any success).
    pub strikes: u32,
    /// Set once the replica has been evicted.
    pub evicted: Option<EvictReason>,
}

/// Replica-set tuning.
#[derive(Clone, Debug)]
pub struct ReplicaSetConfig {
    /// Client template used for every member (each gets the same
    /// `client_id`; members are distinct servers with distinct dedupe
    /// tables, so sharing the id is safe and keeps sequences aligned).
    pub client: NetClientConfig,
    /// Replicas that must agree before an outcome is trusted. Defaults to
    /// a majority of the initial membership.
    pub quorum: usize,
    /// Consecutive unanswered batches before a member is evicted.
    pub max_strikes: u32,
}

impl Default for ReplicaSetConfig {
    fn default() -> Self {
        ReplicaSetConfig {
            client: NetClientConfig::default(),
            quorum: 0, // 0 = majority of the membership, resolved at connect
            max_strikes: 2,
        }
    }
}

struct Member {
    addr: String,
    client: NetClient,
    strikes: u32,
    evicted: Option<EvictReason>,
}

/// A set of N replicated serving endpoints, quorum-acknowledged and
/// digest-voted.
pub struct ReplicaSet {
    members: Vec<Member>,
    quorum: usize,
    max_strikes: u32,
}

impl ReplicaSet {
    /// A set over `addrs`. No I/O happens until the first batch.
    pub fn connect(addrs: &[String], cfg: ReplicaSetConfig) -> Self {
        assert!(!addrs.is_empty(), "a replica set needs members");
        let quorum = if cfg.quorum == 0 {
            addrs.len() / 2 + 1
        } else {
            cfg.quorum
        };
        let members = addrs
            .iter()
            .map(|addr| Member {
                addr: addr.clone(),
                client: NetClient::new(addr.clone(), cfg.client.clone()),
                strikes: 0,
                evicted: None,
            })
            .collect();
        ReplicaSet {
            members,
            quorum,
            max_strikes: cfg.max_strikes.max(1),
        }
    }

    /// Members not yet evicted.
    pub fn live(&self) -> usize {
        self.members.iter().filter(|m| m.evicted.is_none()).count()
    }

    /// The configured quorum.
    pub fn quorum(&self) -> usize {
        self.quorum
    }

    /// Every member's state, in connect order.
    pub fn status(&self) -> Vec<ReplicaStatus> {
        self.members
            .iter()
            .map(|m| ReplicaStatus {
                addr: m.addr.clone(),
                strikes: m.strikes,
                evicted: m.evicted.clone(),
            })
            .collect()
    }

    fn check_quorum(&self) -> Result<(), NetError> {
        let live = self.live();
        if live < self.quorum {
            Err(NetError::NoQuorum {
                live,
                need: self.quorum,
            })
        } else {
            Ok(())
        }
    }

    fn strike(&mut self, idx: usize, last: &NetError) {
        let max = self.max_strikes;
        let m = &mut self.members[idx];
        m.strikes += 1;
        if m.strikes >= max && m.evicted.is_none() {
            m.evicted = Some(EvictReason::Unresponsive {
                last: last.to_string(),
            });
        }
    }

    /// Applies one batch to every live replica and aggregates per-request:
    /// an outcome is returned once at least `quorum` replicas agree on it
    /// (successes agree by *kind* — response payloads such as round counts
    /// legitimately differ — while errors must match exactly). A replica
    /// whose whole batch went unanswered takes a strike toward eviction.
    ///
    /// The outer error is set-level: quorum lost before the batch ran.
    #[allow(clippy::type_complexity)]
    pub fn apply(
        &mut self,
        batch: &[Request],
    ) -> Result<Vec<Result<Response, NetError>>, NetError> {
        self.check_quorum()?;
        let live_idx: Vec<usize> = self
            .members
            .iter()
            .enumerate()
            .filter(|(_, m)| m.evicted.is_none())
            .map(|(i, _)| i)
            .collect();
        let mut per_member: Vec<(usize, Vec<Result<Response, NetError>>)> = Vec::new();
        for idx in live_idx {
            let results = self.members[idx].client.call_many(batch);
            // A member that answered nothing this batch is striking out; a
            // member that answered anything is alive (reset strikes).
            let all_dead = results.iter().all(|r| {
                matches!(
                    r,
                    Err(NetError::Deadline { .. })
                        | Err(NetError::Io { .. })
                        | Err(NetError::Frame(_))
                        | Err(NetError::PeerRefused { .. })
                )
            });
            if all_dead {
                let last = results
                    .iter()
                    .find_map(|r| r.as_ref().err())
                    .expect("a dead batch has an error")
                    .clone();
                self.strike(idx, &last);
            } else {
                self.members[idx].strikes = 0;
            }
            per_member.push((idx, results));
        }
        let answered: Vec<&(usize, Vec<Result<Response, NetError>>)> = per_member
            .iter()
            .filter(|(idx, _)| self.members[*idx].evicted.is_none())
            .collect();
        let out = (0..batch.len())
            .map(|i| {
                let oks: Vec<&Response> = answered
                    .iter()
                    .filter_map(|(_, rs)| rs[i].as_ref().ok())
                    .collect();
                if oks.len() >= self.quorum {
                    return Ok(oks[0].clone());
                }
                // Errors must agree exactly to be trusted as a verdict.
                let mut counts: Vec<(&NetError, usize)> = Vec::new();
                for (_, rs) in &answered {
                    if let Err(e) = &rs[i] {
                        match counts.iter_mut().find(|(k, _)| *k == e) {
                            Some((_, n)) => *n += 1,
                            None => counts.push((e, 1)),
                        }
                    }
                }
                if let Some((e, _)) = counts.iter().find(|(_, n)| *n >= self.quorum) {
                    return Err((*e).clone());
                }
                Err(NetError::NoQuorum {
                    live: oks.len(),
                    need: self.quorum,
                })
            })
            .collect();
        Ok(out)
    }

    /// Requests `class`'s content digest from every live replica and votes:
    /// the majority (`>= quorum`) value is returned, and any live replica
    /// that answered a *different* digest is evicted as
    /// [`EvictReason::DigestMinority`] — its logical content has diverged
    /// from the quorum's, which acknowledged traffic can never cause.
    pub fn vote_digest(&mut self, class: WorkloadClass) -> Result<(u64, u64), NetError> {
        self.check_quorum()?;
        let live_idx: Vec<usize> = self
            .members
            .iter()
            .enumerate()
            .filter(|(_, m)| m.evicted.is_none())
            .map(|(i, _)| i)
            .collect();
        let mut votes: Vec<(usize, (u64, u64))> = Vec::new();
        for idx in live_idx {
            match self.members[idx].client.digest(class) {
                Ok(v) => {
                    self.members[idx].strikes = 0;
                    votes.push((idx, v));
                }
                Err(e) => self.strike(idx, &e),
            }
        }
        let mut tally: HashMap<(u64, u64), usize> = HashMap::new();
        for (_, v) in &votes {
            *tally.entry(*v).or_insert(0) += 1;
        }
        let Some((&majority, _)) = tally.iter().max_by_key(|(_, n)| **n) else {
            return Err(NetError::NoQuorum {
                live: 0,
                need: self.quorum,
            });
        };
        let n = tally[&majority];
        if n < self.quorum {
            return Err(NetError::NoQuorum {
                live: n,
                need: self.quorum,
            });
        }
        for (idx, v) in votes {
            if v != majority {
                self.members[idx].evicted = Some(EvictReason::DigestMinority { got: v, majority });
            }
        }
        Ok(majority)
    }
}
