//! Replicated serving with content-digest voting and failover.
//!
//! A [`ReplicaSet`] drives the same request traffic to N independent
//! serving processes and only trusts what a **quorum** agrees on:
//!
//! * every batch is applied to every live replica (each with its own retry
//!   ladder); a request is acknowledged to the caller when at least
//!   `quorum` replicas returned the same typed outcome;
//! * correctness is checked by **content-digest voting**
//!   ([`fol_serve::Request::Digest`]): the per-class, order-insensitive
//!   key digest is requested from each replica, and the majority value
//!   wins. Response payloads (round counts, probe counts) legitimately
//!   differ across replicas — batch composition and escalation history
//!   are not replicated — so votes are cast on *logical content*, which
//!   must agree, never on response bytes, which need not;
//! * **failover is eviction**: a replica that stops answering (crashed or
//!   unreachable past `max_strikes` consecutive batches) or lands in the
//!   digest minority is removed from the set and never consulted again.
//!   The set keeps serving while `live >= quorum` and returns a typed
//!   [`NetError::NoQuorum`] once it cannot.
//!
//! The recovery ladder behind each replica ends in a rung that always
//! completes (`ScalarTail`), so two live replicas that acknowledged the
//! same traffic converge on the same content digest — divergence signals
//! real corruption, not scheduling noise.
//!
//! **Rejoin.** Eviction is no longer forever: every evicted member is
//! re-probed **half-open** on a seeded-backoff cadence (the same
//! probe-cooldown discipline the VM's lane health layer uses) — a cheap
//! liveness probe first, then a **digest-verified catch-up** before any
//! traffic is trusted to it again. The policy is [`EvictReason`]-aware:
//!
//! * [`EvictReason::Unresponsive`] — the member crashed or was
//!   partitioned; it may have *missed* acknowledged writes but never
//!   acknowledged anything the quorum did not. Catch-up ships the keys it
//!   is missing (per class, set-difference against a live donor) and
//!   readmits once every class digest matches the donor's.
//! * [`EvictReason::DigestMinority`] — its *content* diverged, which
//!   acknowledged traffic cannot cause; shipping keys would merge
//!   corruption. It is readmitted only if its digests already match again
//!   (e.g. the process was restarted from a good checkpoint out-of-band);
//!   otherwise it stays out and the probe cooldown doubles.
//!
//! A member found *ahead* of the quorum (keys the donor lacks) is never
//! readmitted automatically — that is split-brain evidence, not lag.

use crate::client::{NetClient, NetClientConfig};
use crate::NetError;
use fol_serve::{Request, Response, WorkloadClass};
use fol_vm::Word;
use std::collections::HashMap;

/// The classes digest-verified during rejoin catch-up.
const CLASSES: [WorkloadClass; 3] = [
    WorkloadClass::Chain,
    WorkloadClass::OpenAddr,
    WorkloadClass::Bst,
];

/// Why a replica was removed from the set.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum EvictReason {
    /// The replica stopped answering (crash, partition, or persistent
    /// timeouts) for `max_strikes` consecutive batches.
    Unresponsive {
        /// The final failure, rendered.
        last: String,
    },
    /// The replica's content digest disagreed with the quorum's.
    DigestMinority {
        /// What the replica answered.
        got: (u64, u64),
        /// What the quorum agreed on.
        majority: (u64, u64),
    },
}

/// One replica's public state.
#[derive(Clone, Debug)]
pub struct ReplicaStatus {
    /// The replica's address.
    pub addr: String,
    /// Consecutive failed batches (reset by any success).
    pub strikes: u32,
    /// Set once the replica has been evicted.
    pub evicted: Option<EvictReason>,
}

/// Replica-set tuning.
#[derive(Clone, Debug)]
pub struct ReplicaSetConfig {
    /// Client template used for every member (each gets the same
    /// `client_id`; members are distinct servers with distinct dedupe
    /// tables, so sharing the id is safe and keeps sequences aligned).
    pub client: NetClientConfig,
    /// Replicas that must agree before an outcome is trusted. Defaults to
    /// a majority of the initial membership.
    pub quorum: usize,
    /// Consecutive unanswered batches before a member is evicted.
    pub max_strikes: u32,
    /// Base cooldown, in batches, between half-open rejoin probes of an
    /// evicted member. Doubles (with seeded jitter) after every failed
    /// probe, saturating at [`ReplicaSetConfig::rejoin_cooldown_cap`].
    /// `0` disables rejoin probing — eviction is then forever, the
    /// pre-rejoin behaviour.
    pub rejoin_cooldown: u64,
    /// Upper bound the doubling probe cooldown saturates at.
    pub rejoin_cooldown_cap: u64,
    /// Seed for the probe-cadence jitter, so churn schedules replay
    /// byte-identically under a fixed seed.
    pub rejoin_seed: u64,
}

impl Default for ReplicaSetConfig {
    fn default() -> Self {
        ReplicaSetConfig {
            client: NetClientConfig::default(),
            quorum: 0, // 0 = majority of the membership, resolved at connect
            max_strikes: 2,
            rejoin_cooldown: 4,
            rejoin_cooldown_cap: 64,
            rejoin_seed: 0x5EED_CAFE,
        }
    }
}

struct Member {
    addr: String,
    client: NetClient,
    strikes: u32,
    evicted: Option<EvictReason>,
    /// Batch counter value of the last rejoin probe (or of eviction).
    last_probe: u64,
    /// Batches to wait before the next probe.
    cooldown: u64,
    /// Failed probes since eviction (drives the cooldown doubling).
    probes: u64,
}

/// A set of N replicated serving endpoints, quorum-acknowledged and
/// digest-voted.
pub struct ReplicaSet {
    members: Vec<Member>,
    quorum: usize,
    max_strikes: u32,
    /// Batches applied so far — the clock rejoin cooldowns are measured in.
    batches: u64,
    rejoin_cooldown: u64,
    rejoin_cooldown_cap: u64,
    rejoin_seed: u64,
}

impl ReplicaSet {
    /// A set over `addrs`. No I/O happens until the first batch.
    pub fn connect(addrs: &[String], cfg: ReplicaSetConfig) -> Self {
        assert!(!addrs.is_empty(), "a replica set needs members");
        let quorum = if cfg.quorum == 0 {
            addrs.len() / 2 + 1
        } else {
            cfg.quorum
        };
        let members = addrs
            .iter()
            .map(|addr| Member {
                addr: addr.clone(),
                client: NetClient::new(addr.clone(), cfg.client.clone()),
                strikes: 0,
                evicted: None,
                last_probe: 0,
                cooldown: cfg.rejoin_cooldown.max(1),
                probes: 0,
            })
            .collect();
        ReplicaSet {
            members,
            quorum,
            max_strikes: cfg.max_strikes.max(1),
            batches: 0,
            rejoin_cooldown: cfg.rejoin_cooldown,
            rejoin_cooldown_cap: cfg.rejoin_cooldown_cap.max(cfg.rejoin_cooldown),
            rejoin_seed: cfg.rejoin_seed,
        }
    }

    /// Members not yet evicted.
    pub fn live(&self) -> usize {
        self.members.iter().filter(|m| m.evicted.is_none()).count()
    }

    /// The configured quorum.
    pub fn quorum(&self) -> usize {
        self.quorum
    }

    /// Every member's state, in connect order.
    pub fn status(&self) -> Vec<ReplicaStatus> {
        self.members
            .iter()
            .map(|m| ReplicaStatus {
                addr: m.addr.clone(),
                strikes: m.strikes,
                evicted: m.evicted.clone(),
            })
            .collect()
    }

    fn check_quorum(&self) -> Result<(), NetError> {
        let live = self.live();
        if live < self.quorum {
            Err(NetError::NoQuorum {
                live,
                need: self.quorum,
            })
        } else {
            Ok(())
        }
    }

    fn strike(&mut self, idx: usize, last: &NetError) {
        let max = self.max_strikes;
        let batches = self.batches;
        let base = self.rejoin_cooldown.max(1);
        let m = &mut self.members[idx];
        m.strikes += 1;
        if m.strikes >= max && m.evicted.is_none() {
            m.evicted = Some(EvictReason::Unresponsive {
                last: last.to_string(),
            });
            m.last_probe = batches;
            m.cooldown = base;
            m.probes = 0;
        }
    }

    /// Applies one batch to every live replica and aggregates per-request:
    /// an outcome is returned once at least `quorum` replicas agree on it
    /// (successes agree by *kind* — response payloads such as round counts
    /// legitimately differ — while errors must match exactly). A replica
    /// whose whole batch went unanswered takes a strike toward eviction.
    ///
    /// The outer error is set-level: quorum lost before the batch ran.
    ///
    /// Every call also advances the rejoin clock and runs one
    /// [`ReplicaSet::reprobe_evicted`] pass first, so an evicted member
    /// whose cooldown elapsed can be caught up and readmitted in time to
    /// receive this very batch.
    #[allow(clippy::type_complexity)]
    pub fn apply(
        &mut self,
        batch: &[Request],
    ) -> Result<Vec<Result<Response, NetError>>, NetError> {
        self.batches += 1;
        self.reprobe_evicted();
        self.check_quorum()?;
        let live_idx: Vec<usize> = self
            .members
            .iter()
            .enumerate()
            .filter(|(_, m)| m.evicted.is_none())
            .map(|(i, _)| i)
            .collect();
        let mut per_member: Vec<(usize, Vec<Result<Response, NetError>>)> = Vec::new();
        for idx in live_idx {
            let results = self.members[idx].client.call_many(batch);
            // A member that answered nothing this batch is striking out; a
            // member that answered anything is alive (reset strikes).
            let all_dead = results.iter().all(|r| {
                matches!(
                    r,
                    Err(NetError::Deadline { .. })
                        | Err(NetError::Io { .. })
                        | Err(NetError::Frame(_))
                        | Err(NetError::PeerRefused { .. })
                )
            });
            if all_dead {
                let last = results
                    .iter()
                    .find_map(|r| r.as_ref().err())
                    .expect("a dead batch has an error")
                    .clone();
                self.strike(idx, &last);
            } else {
                self.members[idx].strikes = 0;
            }
            per_member.push((idx, results));
        }
        let answered: Vec<&(usize, Vec<Result<Response, NetError>>)> = per_member
            .iter()
            .filter(|(idx, _)| self.members[*idx].evicted.is_none())
            .collect();
        let out = (0..batch.len())
            .map(|i| {
                let oks: Vec<&Response> = answered
                    .iter()
                    .filter_map(|(_, rs)| rs[i].as_ref().ok())
                    .collect();
                if oks.len() >= self.quorum {
                    return Ok(oks[0].clone());
                }
                // Errors must agree exactly to be trusted as a verdict.
                let mut counts: Vec<(&NetError, usize)> = Vec::new();
                for (_, rs) in &answered {
                    if let Err(e) = &rs[i] {
                        match counts.iter_mut().find(|(k, _)| *k == e) {
                            Some((_, n)) => *n += 1,
                            None => counts.push((e, 1)),
                        }
                    }
                }
                if let Some((e, _)) = counts.iter().find(|(_, n)| *n >= self.quorum) {
                    return Err((*e).clone());
                }
                Err(NetError::NoQuorum {
                    live: oks.len(),
                    need: self.quorum,
                })
            })
            .collect();
        Ok(out)
    }

    /// Requests `class`'s content digest from every live replica and votes:
    /// the majority (`>= quorum`) value is returned, and any live replica
    /// that answered a *different* digest is evicted as
    /// [`EvictReason::DigestMinority`] — its logical content has diverged
    /// from the quorum's, which acknowledged traffic can never cause.
    pub fn vote_digest(&mut self, class: WorkloadClass) -> Result<(u64, u64), NetError> {
        self.check_quorum()?;
        let live_idx: Vec<usize> = self
            .members
            .iter()
            .enumerate()
            .filter(|(_, m)| m.evicted.is_none())
            .map(|(i, _)| i)
            .collect();
        let mut votes: Vec<(usize, (u64, u64))> = Vec::new();
        for idx in live_idx {
            match self.members[idx].client.digest(class) {
                Ok(v) => {
                    self.members[idx].strikes = 0;
                    votes.push((idx, v));
                }
                Err(e) => self.strike(idx, &e),
            }
        }
        let mut tally: HashMap<(u64, u64), usize> = HashMap::new();
        for (_, v) in &votes {
            *tally.entry(*v).or_insert(0) += 1;
        }
        let Some((&majority, _)) = tally.iter().max_by_key(|(_, n)| **n) else {
            return Err(NetError::NoQuorum {
                live: 0,
                need: self.quorum,
            });
        };
        let n = tally[&majority];
        if n < self.quorum {
            return Err(NetError::NoQuorum {
                live: n,
                need: self.quorum,
            });
        }
        for (idx, v) in votes {
            if v != majority {
                let batches = self.batches;
                let base = self.rejoin_cooldown.max(1);
                let m = &mut self.members[idx];
                m.evicted = Some(EvictReason::DigestMinority { got: v, majority });
                m.last_probe = batches;
                m.cooldown = base;
                m.probes = 0;
            }
        }
        Ok(majority)
    }

    /// Half-open rejoin pass: probes every evicted member whose cooldown
    /// has elapsed and readmits the ones that pass the
    /// [`EvictReason`]-aware catch-up (see the module docs). Runs
    /// automatically at the start of every [`ReplicaSet::apply`]; returns
    /// the addresses readmitted this pass.
    pub fn reprobe_evicted(&mut self) -> Vec<String> {
        if self.rejoin_cooldown == 0 {
            return Vec::new();
        }
        let due: Vec<usize> = self
            .members
            .iter()
            .enumerate()
            .filter(|(_, m)| {
                m.evicted.is_some() && self.batches.saturating_sub(m.last_probe) >= m.cooldown
            })
            .map(|(i, _)| i)
            .collect();
        let mut readmitted = Vec::new();
        for idx in due {
            if self.try_rejoin(idx) {
                readmitted.push(self.members[idx].addr.clone());
            } else {
                let jitter = self.probe_jitter(idx);
                let cap = self.rejoin_cooldown_cap;
                let batches = self.batches;
                let m = &mut self.members[idx];
                m.probes += 1;
                m.last_probe = batches;
                m.cooldown = m.cooldown.saturating_mul(2).min(cap).saturating_add(jitter);
            }
        }
        readmitted
    }

    /// Seeded jitter added to a failed probe's doubled cooldown, so a
    /// fleet of sets sharing a dead member does not probe it in lockstep —
    /// and replays identically under a fixed seed.
    fn probe_jitter(&self, idx: usize) -> u64 {
        let m = &self.members[idx];
        let mut x = self
            .rejoin_seed
            .wrapping_add((idx as u64) << 32)
            .wrapping_add(m.probes)
            .wrapping_add(0x9E37_79B9_7F4A_7C15);
        x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        x ^= x >> 31;
        x % (self.rejoin_cooldown.max(1) / 2 + 1)
    }

    /// One half-open probe of evicted member `idx`: liveness, then
    /// reason-aware catch-up, then an all-class digest match against a
    /// live donor. True means the member was readmitted.
    fn try_rejoin(&mut self, idx: usize) -> bool {
        let reason = self.members[idx]
            .evicted
            .clone()
            .expect("only evicted members are probed");
        // Liveness first — a member that cannot even answer a health
        // probe burns no catch-up work.
        if self.members[idx].client.health().is_err() {
            return false;
        }
        // Catch up against a member the quorum still trusts.
        let Some(donor) = self.members.iter().position(|m| m.evicted.is_none()) else {
            return false;
        };
        for class in CLASSES {
            let Some(donor_keys) = fetch_all_keys(&mut self.members[donor].client, class) else {
                return false;
            };
            let Some(mine) = fetch_all_keys(&mut self.members[idx].client, class) else {
                return false;
            };
            let (missing, extra) = multiset_diff(&donor_keys, &mine);
            // Keys the donor lacks are split-brain evidence — the member
            // acknowledged (or invented) writes the quorum never saw. No
            // automatic readmission, under either reason.
            if extra != 0 {
                return false;
            }
            if !missing.is_empty() {
                match reason {
                    // Missed writes are exactly what a crash/partition
                    // produces: ship them.
                    EvictReason::Unresponsive { .. } => {
                        let req = match class {
                            WorkloadClass::Chain => Request::ChainInsert { keys: missing },
                            WorkloadClass::OpenAddr => Request::OaInsert { keys: missing },
                            WorkloadClass::Bst => Request::BstInsert { keys: missing },
                        };
                        if self.members[idx].client.call(req).is_err() {
                            return false;
                        }
                    }
                    // Diverged content must converge out-of-band; merging
                    // keys into a corrupt structure would launder it.
                    EvictReason::DigestMinority { .. } => return false,
                }
            }
        }
        // Trust nothing until every class digest matches the donor's.
        for class in CLASSES {
            let (Ok(want), Ok(got)) = (
                self.members[donor].client.digest(class),
                self.members[idx].client.digest(class),
            ) else {
                return false;
            };
            if want != got {
                return false;
            }
        }
        let base = self.rejoin_cooldown.max(1);
        let m = &mut self.members[idx];
        m.evicted = None;
        m.strikes = 0;
        m.probes = 0;
        m.cooldown = base;
        true
    }
}

/// The full key multiset of `class` (every shard of a 1-shard partition
/// is the whole key space), sorted — `None` on any transport or typed
/// failure.
fn fetch_all_keys(client: &mut NetClient, class: WorkloadClass) -> Option<Vec<Word>> {
    match client.call(Request::ShardKeys {
        class,
        shards: 1,
        shard: 0,
    }) {
        Ok(Response::Keys { keys }) => Some(keys),
        _ => None,
    }
}

/// Sorted-multiset difference: keys in `donor` but not `mine` (with
/// multiplicity), plus the count of keys `mine` holds beyond `donor`.
fn multiset_diff(donor: &[Word], mine: &[Word]) -> (Vec<Word>, usize) {
    let mut missing = Vec::new();
    let mut extra = 0usize;
    let (mut i, mut j) = (0usize, 0usize);
    while i < donor.len() && j < mine.len() {
        match donor[i].cmp(&mine[j]) {
            std::cmp::Ordering::Less => {
                missing.push(donor[i]);
                i += 1;
            }
            std::cmp::Ordering::Greater => {
                extra += 1;
                j += 1;
            }
            std::cmp::Ordering::Equal => {
                i += 1;
                j += 1;
            }
        }
    }
    missing.extend_from_slice(&donor[i..]);
    extra += mine.len() - j;
    (missing, extra)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::{NetServer, NetServerConfig};
    use fol_serve::{Server, ServerConfig};
    use std::net::TcpListener;
    use std::time::Duration;

    fn spawn_node(bind: &str) -> NetServer {
        let server = Server::start(ServerConfig {
            workers: 2,
            queue_capacity: 256,
            max_batch: 16,
            max_wait: Duration::from_micros(200),
            oa_slots: 4096,
            ..ServerConfig::default()
        });
        NetServer::start(
            server,
            NetServerConfig {
                bind: bind.to_string(),
                ..NetServerConfig::default()
            },
        )
        .expect("bind net server")
    }

    fn fast_cfg() -> ReplicaSetConfig {
        ReplicaSetConfig {
            client: NetClientConfig {
                connect_timeout: Duration::from_millis(100),
                io_timeout: Duration::from_millis(300),
                call_deadline: Duration::from_millis(600),
                ..NetClientConfig::default()
            },
            quorum: 2,
            max_strikes: 1,
            rejoin_cooldown: 1,
            rejoin_cooldown_cap: 2,
            rejoin_seed: 7,
        }
    }

    /// A side-channel client with its own identity, so its writes are not
    /// deduped against the set's shared sequence space.
    fn side_client(addr: &str) -> NetClient {
        NetClient::new(
            addr.to_string(),
            NetClientConfig {
                client_id: 77,
                ..fast_cfg().client
            },
        )
    }

    /// Crash-style eviction heals: the member misses acknowledged writes
    /// while down, and the half-open reprobe ships the diff and readmits
    /// it once every class digest matches a live donor's.
    #[test]
    fn unresponsive_member_catches_up_and_rejoins() {
        let a = spawn_node("127.0.0.1:0");
        let b = spawn_node("127.0.0.1:0");
        // Reserve an address with nothing listening on it yet: member C
        // starts "crashed".
        let held = TcpListener::bind("127.0.0.1:0").expect("reserve port");
        let addr_c = held.local_addr().expect("addr").to_string();
        drop(held);
        let addrs = vec![
            a.local_addr().to_string(),
            b.local_addr().to_string(),
            addr_c.clone(),
        ];
        let mut set = ReplicaSet::connect(&addrs, fast_cfg());

        let seed = vec![
            Request::ChainInsert {
                keys: vec![1, 2, 3],
            },
            Request::OaInsert { keys: vec![10, 11] },
            Request::BstInsert { keys: vec![5] },
        ];
        let out = set.apply(&seed).expect("quorum holds");
        assert!(out.iter().all(|r| r.is_ok()), "quorum acks the batch");
        assert_eq!(set.live(), 2, "the dead member strikes out");
        let status = set.status();
        assert!(
            matches!(status[2].evicted, Some(EvictReason::Unresponsive { .. })),
            "evicted for unresponsiveness, got {:?}",
            status[2].evicted
        );

        // More acknowledged traffic the dead member misses entirely.
        set.apply(&[Request::ChainInsert { keys: vec![4] }])
            .expect("quorum holds");

        // C comes back — empty, because it "lost" its process state.
        let c = spawn_node(&addr_c);
        for _ in 0..50 {
            set.apply(&[Request::OaLookup { keys: vec![10] }])
                .expect("quorum holds");
            if set.live() == 3 {
                break;
            }
        }
        assert_eq!(set.live(), 3, "the caught-up member is readmitted");
        assert!(set.status()[2].evicted.is_none());

        // The readmitted member votes with the majority on every class —
        // catch-up really converged the content.
        for class in CLASSES {
            set.vote_digest(class).expect("3-way digest agreement");
            assert_eq!(set.live(), 3, "no member lands in the minority");
        }
        drop((a, b, c));
    }

    /// Diverged content does not heal by key-shipping: a digest-minority
    /// member is refused readmission while it holds keys the quorum never
    /// acknowledged, and readmitted only once its content matches again.
    #[test]
    fn digest_minority_stays_out_until_content_converges() {
        let a = spawn_node("127.0.0.1:0");
        let b = spawn_node("127.0.0.1:0");
        let c = spawn_node("127.0.0.1:0");
        let addrs = vec![
            a.local_addr().to_string(),
            b.local_addr().to_string(),
            c.local_addr().to_string(),
        ];
        let mut set = ReplicaSet::connect(&addrs, fast_cfg());
        set.apply(&[Request::ChainInsert {
            keys: vec![1, 2, 3],
        }])
        .expect("quorum holds");

        // Corrupt C behind the set's back: a write the quorum never saw.
        side_client(&addrs[2])
            .call(Request::ChainInsert { keys: vec![99] })
            .expect("side-channel divergence lands");
        set.vote_digest(WorkloadClass::Chain)
            .expect("majority still agrees");
        assert_eq!(set.live(), 2);
        assert!(
            matches!(
                set.status()[2].evicted,
                Some(EvictReason::DigestMinority { .. })
            ),
            "evicted as digest minority"
        );

        // While C is ahead of the quorum, every reprobe refuses it — extra
        // keys are split-brain evidence, not lag.
        for _ in 0..5 {
            set.apply(&[Request::OaLookup { keys: vec![1] }])
                .expect("quorum holds");
        }
        assert_eq!(set.live(), 2, "a diverged member is never auto-readmitted");

        // Converge out-of-band: the quorum's members adopt the same key,
        // making all three contents identical again.
        for addr in &addrs[..2] {
            side_client(addr)
                .call(Request::ChainInsert { keys: vec![99] })
                .expect("convergence write lands");
        }
        for _ in 0..50 {
            set.apply(&[Request::OaLookup { keys: vec![1] }])
                .expect("quorum holds");
            if set.live() == 3 {
                break;
            }
        }
        assert_eq!(set.live(), 3, "matching content is readmitted");
        set.vote_digest(WorkloadClass::Chain)
            .expect("3-way digest agreement");
        assert_eq!(set.live(), 3);
        drop((a, b, c));
    }
}
