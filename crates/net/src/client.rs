//! The deadline-aware retrying client.
//!
//! A [`NetClient`] owns one connection (rebuilt on demand), a monotonically
//! increasing request sequence, and a [`Backoff`]. Every call runs a retry
//! ladder under a single client-side deadline:
//!
//! * **retryable** failures — connect refused, reset, read/write timeout,
//!   a torn or CRC-bad frame in either direction, a peer refusal, server
//!   overload, a lost worker, a duplicate-in-flight [`WireOutcome::Busy`] —
//!   are retried on a fresh connection after a capped, seeded-jitter
//!   backoff delay;
//! * **terminal** failures — typed rejections, server-side deadline
//!   expiry, transaction failure, shutdown, persistence refusals, and the
//!   client deadline itself running out — surface immediately as
//!   [`NetError`].
//!
//! Re-submission is **idempotent by sequence number**: a retry carries the
//! same `(client_id, seq)` pair as the attempt it replaces, and the
//! server's dedupe table replays the recorded outcome instead of
//! re-executing — a request acknowledged once is applied exactly once, no
//! matter how many retries the wire faults forced. Batched calls
//! ([`NetClient::call_many`]) write every unresolved submit before reading
//! any result, which hands the remote scheduler a full coalescing window.

use crate::fault::{FaultedWriter, WireFaultPlan};
use crate::shard::ShardMap;
use crate::wire::{frame_bytes, read_frame, ClientMsg, ReadFrameError, ServerMsg, WireOutcome};
use crate::NetError;
use fol_core::recover::Backoff;
use fol_serve::{Request, Response, ServeError, NO_SHARD};
use std::collections::BTreeSet;
use std::io::{ErrorKind, Write};
use std::net::{Shutdown, SocketAddr, TcpStream, ToSocketAddrs};
use std::time::{Duration, Instant};

/// Client tuning.
#[derive(Clone, Debug)]
pub struct NetClientConfig {
    /// Stable identity for the server's dedupe table. Two clients sharing
    /// an id would collide on sequence numbers; give each its own.
    pub client_id: u64,
    /// TCP connect timeout per attempt.
    pub connect_timeout: Duration,
    /// Per-read/write socket timeout within an attempt.
    pub io_timeout: Duration,
    /// Overall deadline for one [`NetClient::call`] /
    /// [`NetClient::call_many`], across every retry.
    pub call_deadline: Duration,
    /// Inter-attempt spacing: capped exponential with seeded jitter.
    pub backoff: Backoff,
    /// Seeded fault injection on this client's request writes (chaos
    /// testing; `None` in production).
    pub fault_plan: Option<WireFaultPlan>,
}

impl Default for NetClientConfig {
    fn default() -> Self {
        NetClientConfig {
            client_id: 1,
            connect_timeout: Duration::from_millis(500),
            io_timeout: Duration::from_millis(500),
            call_deadline: Duration::from_secs(10),
            backoff: Backoff::new(Duration::from_micros(200), Duration::from_millis(20), 0xF01),
            fault_plan: None,
        }
    }
}

struct Conn {
    stream: TcpStream,
    /// Buffered read half (a `try_clone` of `stream`): a pipelined burst
    /// of response frames costs one syscall, not two per frame.
    reader: std::io::BufReader<TcpStream>,
    writer: FaultedWriter,
}

/// A client for one serving endpoint. Not `Sync`: one client, one caller.
pub struct NetClient {
    addr: String,
    cfg: NetClientConfig,
    conn: Option<Conn>,
    /// Connections opened so far; each gets a fresh fault stream.
    streams: u64,
    next_seq: u64,
    /// Sequences with a known terminal outcome, for the acked floor.
    acked: BTreeSet<u64>,
    /// Every `seq < acked_floor` has a known outcome; sent with each
    /// submit so the server can prune its dedupe entries.
    acked_floor: u64,
    /// The shard-map epoch stamped on untagged submits. `0` (the default)
    /// together with [`NO_SHARD`] means "standalone client, no map".
    map_epoch: u64,
}

/// How one attempt left a request.
enum Slot {
    /// Not yet answered this attempt.
    Pending,
    /// Answered retryably; try again next attempt.
    Retry,
    /// Final outcome.
    Done(Result<Response, NetError>),
}

impl NetClient {
    /// A client for `addr` (e.g. `"127.0.0.1:4711"`). No I/O happens until
    /// the first call.
    pub fn new(addr: impl Into<String>, cfg: NetClientConfig) -> Self {
        NetClient {
            addr: addr.into(),
            cfg,
            conn: None,
            streams: 0,
            next_seq: 0,
            acked: BTreeSet::new(),
            acked_floor: 0,
            map_epoch: 0,
        }
    }

    /// The configured client identity.
    pub fn client_id(&self) -> u64 {
        self.cfg.client_id
    }

    /// Stamps every subsequent untagged submit with `epoch`. The server
    /// refuses mismatches typed; `0` restores the standalone default.
    pub fn set_map_epoch(&mut self, epoch: u64) {
        self.map_epoch = epoch;
    }

    /// Submits one request and retries until a terminal outcome or the
    /// call deadline.
    pub fn call(&mut self, request: Request) -> Result<Response, NetError> {
        self.call_many(std::slice::from_ref(&request))
            .pop()
            .expect("one request, one outcome")
    }

    /// Submits a batch, pipelined: every unresolved submit is written
    /// before any result is read, so the remote scheduler sees the whole
    /// batch at once. Returns one outcome per request, in order.
    pub fn call_many(&mut self, requests: &[Request]) -> Vec<Result<Response, NetError>> {
        let tagged: Vec<(Request, u32)> = requests.iter().map(|r| (r.clone(), NO_SHARD)).collect();
        self.call_many_tagged(&tagged, self.map_epoch)
    }

    /// [`NetClient::call_many`] with an explicit shard tag per request and
    /// a map epoch stamped on the whole batch — the cluster router's entry
    /// point. Typed `WrongEpoch`/`NotOwner` refusals are terminal here (the
    /// *map* is wrong, not the wire); the router refreshes and re-routes.
    pub fn call_many_tagged(
        &mut self,
        requests: &[(Request, u32)],
        epoch: u64,
    ) -> Vec<Result<Response, NetError>> {
        if requests.is_empty() {
            return Vec::new();
        }
        let deadline = Instant::now() + self.cfg.call_deadline;
        let seqs: Vec<u64> = requests
            .iter()
            .map(|_| {
                let s = self.next_seq;
                self.next_seq += 1;
                s
            })
            .collect();
        let mut slots: Vec<Slot> = requests.iter().map(|_| Slot::Retry).collect();
        let mut backoff = self.cfg.backoff.clone();
        backoff.reset();
        let mut attempts = 0u32;
        loop {
            let unresolved: Vec<usize> = slots
                .iter()
                .enumerate()
                .filter(|(_, s)| !matches!(s, Slot::Done(_)))
                .map(|(i, _)| i)
                .collect();
            if unresolved.is_empty() {
                break;
            }
            let now = Instant::now();
            if now >= deadline {
                for i in unresolved {
                    slots[i] = Slot::Done(Err(NetError::Deadline { attempts }));
                }
                break;
            }
            if attempts > 0 {
                let delay = backoff.next_delay().min(deadline - now);
                if !delay.is_zero() {
                    std::thread::sleep(delay);
                }
            }
            attempts += 1;
            self.attempt(requests, epoch, &seqs, &mut slots, deadline);
        }
        // Every outcome is now known; advance the acknowledged floor.
        for &s in &seqs {
            self.acked.insert(s);
        }
        while self.acked.remove(&self.acked_floor) {
            self.acked_floor += 1;
        }
        slots
            .into_iter()
            .map(|s| match s {
                Slot::Done(r) => r,
                _ => unreachable!("loop exits only when every slot is done"),
            })
            .collect()
    }

    /// The server's health counters, answered at its network layer even
    /// under full admission saturation. Single attempt per retry rung.
    pub fn health(&mut self) -> Result<Vec<(String, u64)>, NetError> {
        self.simple_roundtrip(&ClientMsg::Health, |msg| match msg {
            ServerMsg::Health { counters } => Some(Ok(counters)),
            _ => None,
        })
    }

    /// Asks the serving process to drain and shut down; resolves when the
    /// server acknowledges.
    pub fn request_shutdown(&mut self) -> Result<(), NetError> {
        self.simple_roundtrip(&ClientMsg::Shutdown, |msg| match msg {
            ServerMsg::ShutdownAck => Some(Ok(())),
            _ => None,
        })
    }

    /// Convenience: the remote content digest of `class`.
    pub fn digest(&mut self, class: fol_serve::WorkloadClass) -> Result<(u64, u64), NetError> {
        match self.call(Request::Digest { class })? {
            Response::ClassDigest { digest, count } => Ok((digest, count)),
            other => Err(NetError::Frame(fol_persist::PersistError::Malformed {
                what: format!("digest request answered with {other:?}"),
            })),
        }
    }

    /// Fetches the server's installed shard map (`None` when it has never
    /// been handed one — e.g. freshly restarted).
    pub fn fetch_map(&mut self) -> Result<Option<ShardMap>, NetError> {
        self.simple_roundtrip(&ClientMsg::GetMap, |msg| match msg {
            ServerMsg::Map { map } => Some(Ok(map)),
            _ => None,
        })
    }

    /// Installs a shard map on the server, telling it which member of the
    /// map's node list it is. Idempotent: re-installing the same epoch is a
    /// no-op ack.
    pub fn install_map(&mut self, map: &ShardMap, you_are: u32) -> Result<(), NetError> {
        let msg = ClientMsg::InstallMap {
            map: map.clone(),
            you_are,
        };
        self.simple_roundtrip(&msg, admin_ack)
    }

    /// Freezes (or unfreezes) one shard on the server for a rebalance.
    pub fn freeze_shard(&mut self, shard: u32, freeze: bool) -> Result<(), NetError> {
        self.simple_roundtrip(&ClientMsg::FreezeShard { shard, freeze }, admin_ack)
    }

    /// Extracts a frozen, drained shard as encoded handoff-image bytes.
    /// Read-only on the server, so retries are safe.
    pub fn extract_shard(&mut self, shard: u32) -> Result<Vec<u8>, NetError> {
        self.simple_roundtrip(&ClientMsg::ExtractShard { shard }, |msg| match msg {
            ServerMsg::ShardImage { image } => Some(Ok(image)),
            ServerMsg::AdminErr { what } => {
                Some(Err(NetError::Serve(ServeError::Rejected { reason: what })))
            }
            _ => None,
        })
    }

    /// Installs handoff-image bytes on the server. The server digest-checks
    /// before and after touching its structures, which also makes a retry
    /// after a lost ack an idempotent skip.
    pub fn install_shard(&mut self, image: Vec<u8>) -> Result<(), NetError> {
        self.simple_roundtrip(&ClientMsg::InstallShard { image }, admin_ack)
    }

    fn simple_roundtrip<T>(
        &mut self,
        msg: &ClientMsg,
        mut accept: impl FnMut(ServerMsg) -> Option<Result<T, NetError>>,
    ) -> Result<T, NetError> {
        let deadline = Instant::now() + self.cfg.call_deadline;
        let mut backoff = self.cfg.backoff.clone();
        backoff.reset();
        let mut attempts = 0u32;
        let mut last_err: Option<NetError> = None;
        loop {
            let now = Instant::now();
            if now >= deadline {
                return Err(last_err.unwrap_or(NetError::Deadline { attempts }));
            }
            if attempts > 0 {
                let delay = backoff.next_delay().min(deadline - now);
                if !delay.is_zero() {
                    std::thread::sleep(delay);
                }
            }
            attempts += 1;
            match self.roundtrip_once(msg, &mut accept) {
                Ok(v) => return Ok(v),
                Err(e) if e.is_retryable() => last_err = Some(e),
                Err(e) => return Err(e),
            }
        }
    }

    fn roundtrip_once<T>(
        &mut self,
        msg: &ClientMsg,
        accept: &mut impl FnMut(ServerMsg) -> Option<Result<T, NetError>>,
    ) -> Result<T, NetError> {
        self.ensure_connected()?;
        if let Err(e) = self.send_payloads(&[msg.encode()]) {
            self.conn = None;
            return Err(e);
        }
        loop {
            match self.read_msg() {
                Ok(m) => {
                    if let Some(v) = accept(m) {
                        if v.is_err() {
                            self.conn = None;
                        }
                        return v;
                    }
                    // A stale Result from an earlier call: skip it.
                }
                Err(e) => {
                    self.conn = None;
                    return Err(e);
                }
            }
        }
    }

    /// One wire attempt over the unresolved slots: (re)connect, write every
    /// unresolved submit, then read results until all are answered or the
    /// connection gives out. Transport failures mark the remainder
    /// [`Slot::Retry`].
    fn attempt(
        &mut self,
        requests: &[(Request, u32)],
        epoch: u64,
        seqs: &[u64],
        slots: &mut [Slot],
        deadline: Instant,
    ) {
        if self.ensure_connected().is_err() {
            return; // every non-done slot keeps its Retry state
        }
        let mut payloads = Vec::new();
        let remaining = deadline.saturating_duration_since(Instant::now());
        for (i, slot) in slots.iter_mut().enumerate() {
            if matches!(slot, Slot::Done(_)) {
                continue;
            }
            *slot = Slot::Pending;
            payloads.push(
                ClientMsg::Submit {
                    client_id: self.cfg.client_id,
                    seq: seqs[i],
                    acked_floor: self.acked_floor,
                    deadline_millis: Some(remaining.as_millis().max(1) as u64),
                    shard: requests[i].1,
                    map_epoch: epoch,
                    request: requests[i].0.clone(),
                }
                .encode(),
            );
        }
        if let Err(_e) = self.send_payloads(&payloads) {
            self.conn = None;
            mark_pending_retry(slots);
            return;
        }
        // Read until every pending slot is answered (or the stream fails).
        while slots.iter().any(|s| matches!(s, Slot::Pending)) {
            if Instant::now() >= deadline {
                mark_pending_retry(slots);
                return;
            }
            match self.read_msg() {
                Ok(ServerMsg::Result { seq, outcome }) => {
                    let Some(i) = seqs.iter().position(|&s| s == seq) else {
                        continue; // duplicate of an earlier call's result
                    };
                    if matches!(slots[i], Slot::Done(_)) {
                        continue; // duplicated frame for a resolved slot
                    }
                    slots[i] = match outcome {
                        WireOutcome::Ok(r) => Slot::Done(Ok(r)),
                        WireOutcome::Busy => Slot::Retry,
                        WireOutcome::Err(e) => {
                            let net = NetError::Serve(e);
                            if net.is_retryable() {
                                Slot::Retry
                            } else {
                                Slot::Done(Err(net))
                            }
                        }
                    };
                }
                Ok(_) => continue, // stray health/ack frame: ignore
                Err(_e) => {
                    self.conn = None;
                    mark_pending_retry(slots);
                    return;
                }
            }
        }
    }

    fn ensure_connected(&mut self) -> Result<(), NetError> {
        if self.conn.is_some() {
            return Ok(());
        }
        let addrs: Vec<SocketAddr> = self
            .addr
            .to_socket_addrs()
            .map_err(|e| NetError::io("resolving the server address", &e))?
            .collect();
        let mut last = None;
        for addr in addrs {
            match TcpStream::connect_timeout(&addr, self.cfg.connect_timeout) {
                Ok(stream) => {
                    let _ = stream.set_read_timeout(Some(self.cfg.io_timeout));
                    let _ = stream.set_write_timeout(Some(self.cfg.io_timeout));
                    let _ = stream.set_nodelay(true);
                    let read_half = match stream.try_clone() {
                        Ok(s) => s,
                        Err(e) => {
                            last = Some(e);
                            continue;
                        }
                    };
                    let stream_index = self.streams;
                    self.streams += 1;
                    self.conn = Some(Conn {
                        stream,
                        reader: std::io::BufReader::new(read_half),
                        writer: FaultedWriter::for_stream(
                            self.cfg.fault_plan.clone(),
                            stream_index,
                        ),
                    });
                    return Ok(());
                }
                Err(e) => last = Some(e),
            }
        }
        Err(match last {
            Some(e) => NetError::io("connecting", &e),
            None => NetError::Io {
                what: "resolving the server address".into(),
                error: "no addresses".into(),
            },
        })
    }

    /// Writes every payload as one buffered burst (one syscall in the
    /// common case), applying the fault plan per frame.
    fn send_payloads(&mut self, payloads: &[Vec<u8>]) -> Result<(), NetError> {
        let conn = self.conn.as_mut().expect("connected");
        let mut buf: Vec<u8> = Vec::new();
        let mut intact = true;
        for payload in payloads {
            let framed = frame_bytes(payload);
            match conn.writer.render_frame(&framed, &mut buf) {
                Ok(true) => {}
                Ok(false) => {
                    intact = false;
                    break;
                }
                Err(e) => return Err(NetError::io("writing requests", &e)),
            }
        }
        let r = conn
            .stream
            .write_all(&buf)
            .and_then(|()| conn.stream.flush());
        if let Err(e) = r {
            return Err(NetError::io("writing requests", &e));
        }
        if !intact {
            let _ = conn.stream.shutdown(Shutdown::Write);
            return Err(NetError::Io {
                what: "writing requests".into(),
                error: "connection torn by fault plan".into(),
            });
        }
        Ok(())
    }

    fn read_msg(&mut self) -> Result<ServerMsg, NetError> {
        let conn = self.conn.as_mut().expect("connected");
        match read_frame(&mut conn.reader, "wire response") {
            Ok(Some(payload)) => match ServerMsg::decode(&payload) {
                Ok(ServerMsg::WireRefused { what }) => Err(NetError::PeerRefused { what }),
                Ok(msg) => Ok(msg),
                Err(defect) => Err(NetError::Frame(defect)),
            },
            Ok(None) => Err(NetError::Io {
                what: "reading a response".into(),
                error: "connection closed".into(),
            }),
            Err(ReadFrameError::Io { error, .. }) => {
                let what = if matches!(error.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) {
                    "response read deadline"
                } else {
                    "reading a response"
                };
                Err(NetError::io(what, &error))
            }
            Err(ReadFrameError::Frame(defect)) => Err(NetError::Frame(defect)),
        }
    }
}

/// Accepts an admin ack: `AdminOk` succeeds, `AdminErr` is a terminal
/// typed rejection (the op was refused, not lost).
fn admin_ack(msg: ServerMsg) -> Option<Result<(), NetError>> {
    match msg {
        ServerMsg::AdminOk => Some(Ok(())),
        ServerMsg::AdminErr { what } => {
            Some(Err(NetError::Serve(ServeError::Rejected { reason: what })))
        }
        _ => None,
    }
}

fn mark_pending_retry(slots: &mut [Slot]) {
    for s in slots.iter_mut() {
        if matches!(s, Slot::Pending) {
            *s = Slot::Retry;
        }
    }
}
