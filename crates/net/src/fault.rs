//! Seeded wire-fault injection at the transport seam.
//!
//! A [`WireFaultPlan`] sits between the framed codec and the socket and
//! misbehaves *deterministically*: given the same seed and the same frame
//! sequence, the same frames are dropped, delayed, duplicated, flipped, or
//! torn. That turns "the network was unlucky" into a replayable test cell —
//! the chaos matrix names its seed, and a failure reproduces.
//!
//! Faults are injected on the **write** side, per frame:
//!
//! * **drop** — the frame is simply not sent. Length-prefixed framing keeps
//!   the stream in sync; the peer just never sees the message and the
//!   sender's caller times out and retries.
//! * **delay** — the write happens late, exercising read-deadline paths.
//! * **duplicate** — the frame is sent twice; the receiver's dedupe table
//!   (server) or stale-seq filter (client) must absorb it.
//! * **flip** — one payload byte is inverted; the receiver sees a typed
//!   [`fol_persist::PersistError::CrcMismatch`] and poisons the connection.
//! * **tear** — only a prefix of the frame is written and the connection is
//!   shut down, the wire image of a peer dying mid-write; the receiver sees
//!   a typed [`fol_persist::PersistError::Truncated`].
//!
//! Rates are per-mille, rolled independently per frame from a splitmix64
//! stream over `(seed, frame index)`; a plan is cheap to clone and each
//! connection advances its own frame counter.

use std::io::Write;
use std::time::Duration;

/// The per-frame fault rates, in units of 1/1000 per frame.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct WireFaultPlan {
    /// RNG seed; equal seeds replay equal fault sequences.
    pub seed: u64,
    /// Chance the frame is silently not written.
    pub drop_per_mille: u16,
    /// Chance the write is delayed by [`WireFaultPlan::delay`].
    pub delay_per_mille: u16,
    /// How long a delayed write waits.
    pub delay: Duration,
    /// Chance the frame is written twice.
    pub dup_per_mille: u16,
    /// Chance one payload byte is inverted (the 8-byte header is spared so
    /// the defect is a CRC mismatch, not a desynced stream).
    pub flip_per_mille: u16,
    /// Chance only a prefix of the frame is written before the stream is
    /// shut down (a half-open tear).
    pub tear_per_mille: u16,
}

impl WireFaultPlan {
    /// A plan that never misbehaves (all rates zero).
    pub fn clean(seed: u64) -> Self {
        WireFaultPlan {
            seed,
            ..Default::default()
        }
    }

    /// True when every rate is zero.
    pub fn is_clean(&self) -> bool {
        self.drop_per_mille == 0
            && self.delay_per_mille == 0
            && self.dup_per_mille == 0
            && self.flip_per_mille == 0
            && self.tear_per_mille == 0
    }
}

/// What the plan decided for one frame.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultDecision {
    /// Write the frame unchanged.
    Deliver,
    /// Do not write the frame at all.
    Drop,
    /// Sleep, then write unchanged.
    Delay,
    /// Write the frame twice.
    Duplicate,
    /// Invert the payload byte at `offset` (relative to the whole frame).
    Flip {
        /// Byte offset to invert.
        offset: usize,
    },
    /// Write only `keep` bytes, then shut the stream down.
    Tear {
        /// Prefix length to write before the tear.
        keep: usize,
    },
}

fn splitmix(seed: u64, index: u64) -> u64 {
    let mut z = seed
        .wrapping_add(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(index.wrapping_mul(0xD1B5_4A32_D192_ED03));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A faulting frame writer: applies one [`WireFaultPlan`] decision per
/// frame, advancing a deterministic per-connection frame counter.
///
/// Each connection gets its own `stream` index, folded into the seed: a
/// reconnect draws a *fresh* fault sequence instead of replaying the old
/// one. Without that fold, a plan that faults frame 0 would fault the
/// first frame of every reconnect identically and livelock a retrying
/// peer — real networks are not adversarially periodic, and the whole run
/// stays replayable because the connection order is itself deterministic
/// under a seed.
pub(crate) struct FaultedWriter {
    plan: WireFaultPlan,
    frame_index: u64,
    torn: bool,
}

impl FaultedWriter {
    #[cfg(test)]
    pub(crate) fn new(plan: Option<WireFaultPlan>) -> Self {
        Self::for_stream(plan, 0)
    }

    /// A writer for the `stream`-th connection of this endpoint.
    pub(crate) fn for_stream(plan: Option<WireFaultPlan>, stream: u64) -> Self {
        let mut plan = plan.unwrap_or_default();
        if !plan.is_clean() {
            plan.seed = splitmix(plan.seed, stream.wrapping_mul(0x9E37_79B9));
        }
        FaultedWriter {
            plan,
            frame_index: 0,
            torn: false,
        }
    }

    /// The plan's verdict for the next frame of `len` bytes.
    pub(crate) fn decide(&mut self, len: usize) -> FaultDecision {
        let i = self.frame_index;
        self.frame_index += 1;
        if self.plan.is_clean() {
            return FaultDecision::Deliver;
        }
        let roll = splitmix(self.plan.seed, i);
        // One roll, carved into independent per-mille bands: at most one
        // fault per frame, which keeps cells interpretable.
        let mut band = (roll % 1000) as u16;
        for (rate, mk) in [
            (self.plan.drop_per_mille, 0u8),
            (self.plan.delay_per_mille, 1),
            (self.plan.dup_per_mille, 2),
            (self.plan.flip_per_mille, 3),
            (self.plan.tear_per_mille, 4),
        ] {
            if band < rate {
                let aux = splitmix(self.plan.seed, i ^ 0x5EED_F00D);
                return match mk {
                    0 => FaultDecision::Drop,
                    1 => FaultDecision::Delay,
                    2 => FaultDecision::Duplicate,
                    3 => FaultDecision::Flip {
                        // Spare the 8-byte header: a flipped length would
                        // desync the stream instead of failing the CRC.
                        offset: 8 + (aux as usize) % len.max(1),
                    },
                    _ => FaultDecision::Tear {
                        keep: (aux as usize) % (len + 8),
                    },
                };
            }
            band -= rate;
        }
        FaultDecision::Deliver
    }

    /// Applies the plan's verdict for `framed` (a whole `[header][payload]`
    /// frame), appending the bytes that should actually hit the wire to
    /// `buf`. Returns `false` when the frame was torn: the caller must
    /// write `buf`, then half-close the stream; this writer refuses any
    /// further frames.
    pub(crate) fn render_frame(
        &mut self,
        framed: &[u8],
        buf: &mut Vec<u8>,
    ) -> std::io::Result<bool> {
        if self.torn {
            return Err(std::io::Error::new(
                std::io::ErrorKind::BrokenPipe,
                "stream torn by fault plan",
            ));
        }
        debug_assert!(framed.len() >= 8, "a frame is at least its header");
        match self.decide(framed.len() - 8) {
            FaultDecision::Deliver => buf.extend_from_slice(framed),
            FaultDecision::Drop => {}
            FaultDecision::Delay => {
                // Delay everything from this frame on (the burst is one
                // write; a mid-burst reorder would desync nothing but would
                // misrepresent a FIFO transport).
                std::thread::sleep(self.plan.delay);
                buf.extend_from_slice(framed);
            }
            FaultDecision::Duplicate => {
                buf.extend_from_slice(framed);
                buf.extend_from_slice(framed);
            }
            FaultDecision::Flip { offset } => {
                let start = buf.len();
                buf.extend_from_slice(framed);
                let at = start + offset.min(framed.len() - 1);
                buf[at] ^= 0xFF;
            }
            FaultDecision::Tear { keep } => {
                let keep = keep.min(framed.len().saturating_sub(1));
                buf.extend_from_slice(&framed[..keep]);
                self.torn = true;
                return Ok(false);
            }
        }
        Ok(true)
    }

    /// Writes `framed` through the plan. Returns `Ok(false)` when the
    /// stream was torn and must be considered dead by the caller;
    /// `Ok(true)` otherwise (including silent drops — the caller cannot
    /// tell, which is the point).
    pub(crate) fn write_frame(
        &mut self,
        stream: &mut (impl Write + Shutdownable),
        framed: &[u8],
    ) -> std::io::Result<bool> {
        let mut buf = Vec::with_capacity(framed.len());
        let intact = self.render_frame(framed, &mut buf)?;
        stream.write_all(&buf)?;
        if !intact {
            let _ = stream.flush();
            stream.shutdown_write();
        }
        Ok(intact)
    }
}

/// The one transport capability the tear fault needs beyond [`Write`].
pub(crate) trait Shutdownable {
    /// Half-close the write side (best-effort).
    fn shutdown_write(&mut self);
}

impl Shutdownable for std::net::TcpStream {
    fn shutdown_write(&mut self) {
        let _ = std::net::TcpStream::shutdown(self, std::net::Shutdown::Write);
    }
}

impl Shutdownable for Vec<u8> {
    fn shutdown_write(&mut self) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decisions_are_deterministic_under_a_seed_and_clean_plans_deliver() {
        let plan = WireFaultPlan {
            seed: 77,
            drop_per_mille: 100,
            delay_per_mille: 0,
            delay: Duration::ZERO,
            dup_per_mille: 100,
            flip_per_mille: 100,
            tear_per_mille: 100,
        };
        let run = |p: &WireFaultPlan| {
            let mut w = FaultedWriter::new(Some(p.clone()));
            (0..200).map(|_| w.decide(64)).collect::<Vec<_>>()
        };
        assert_eq!(run(&plan), run(&plan), "same seed, same fault sequence");
        let reseeded = WireFaultPlan { seed: 78, ..plan };
        assert_ne!(run(&plan), run(&reseeded), "different seed differs");
        let mut faults = 0;
        for d in run(&plan) {
            if d != FaultDecision::Deliver {
                faults += 1;
            }
        }
        assert!(faults > 0, "40% aggregate rate must fire in 200 frames");

        let mut clean = FaultedWriter::new(None);
        assert!((0..100).all(|_| clean.decide(16) == FaultDecision::Deliver));
    }

    #[test]
    fn torn_writer_refuses_further_frames() {
        let plan = WireFaultPlan {
            seed: 1,
            tear_per_mille: 1000,
            ..Default::default()
        };
        let mut w = FaultedWriter::new(Some(plan));
        let mut sink: Vec<u8> = Vec::new();
        let framed = crate::wire::frame_bytes(b"payload");
        assert!(!w.write_frame(&mut sink, &framed).unwrap());
        assert!(sink.len() < framed.len(), "tear keeps only a prefix");
        assert!(w.write_frame(&mut sink, &framed).is_err());
    }
}
