//! The rebalance coordinator: moves shards between epochs crash-safely.
//!
//! A rebalance is a transition from one [`ShardMap`] to its successor
//! (a node joined or was evicted). For every shard whose primary owner
//! changes, the coordinator runs the handoff state machine:
//!
//! ```text
//! FREEZE(source)  — the shard refuses new writes typed (NotOwner)
//!    │
//! DRAIN           — in-flight wire work at the source quiesces
//!    │
//! EXTRACT(source) — per-class keys + content digests, CRC-framed
//!    │                ([`fol_persist::HandoffImage`])
//! VERIFY          — the coordinator re-hashes every section itself
//!    │
//! INSTALL(target) — digest-checked: skip if identical, insert if empty,
//!    │                typed refusal if partially populated
//! ADVANCE         — the new map (epoch + 1) is installed on every node,
//!                   shard gainers first, donors last
//! ```
//!
//! The epoch advances **only after the target has acked a digest-verified
//! install**; until then every node still serves the old epoch, and a
//! request racing the move is refused typed (`WrongEpoch` / `NotOwner`)
//! for the client to refresh and retry — never silently applied to the
//! wrong owner.
//!
//! Every step is **idempotent**, which is the whole crash-safety story: a
//! coordinator (or node) killed mid-handoff is recovered by *running the
//! same rebalance again*. Freezing a frozen shard is a no-op; extraction
//! is read-only; installing an already-installed shard digest-skips; a
//! SIGKILLed-and-restarted node comes back mapless (its gate refuses all
//! cluster traffic) and the re-run's preamble re-hands it the old map
//! before redoing the move. What is *not* retried blindly: a target whose
//! shard slice is partially populated answers a typed refusal and the
//! rebalance stops — merging would guess.

use crate::client::{NetClient, NetClientConfig};
use crate::shard::ShardMap;
use crate::NetError;
use fol_persist::HandoffImage;
use fol_serve::keys_digest;
use std::collections::HashMap;

/// One completed shard handoff.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MovedShard {
    /// The shard that moved.
    pub shard: u32,
    /// Previous owner's address.
    pub from: String,
    /// New owner's address.
    pub to: String,
    /// Keys shipped (across all workload classes).
    pub keys: usize,
}

/// What a completed [`rebalance`] did.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RebalanceReport {
    /// The epoch the cluster served before.
    pub from_epoch: u64,
    /// The epoch it serves now.
    pub to_epoch: u64,
    /// Every shard handoff performed (re-runs count digest-skipped
    /// installs too — the keys were already there).
    pub moved: Vec<MovedShard>,
}

/// Per-address admin connections for one coordinator run.
struct Conns {
    cfg: NetClientConfig,
    by_addr: HashMap<String, NetClient>,
}

impl Conns {
    fn get(&mut self, addr: &str) -> &mut NetClient {
        self.by_addr
            .entry(addr.to_string())
            .or_insert_with(|| NetClient::new(addr.to_string(), self.cfg.clone()))
    }
}

/// Drives the cluster from `old` to `new` (which must be `old` plus or
/// minus a node, or any map with `old.epoch < new.epoch` over the same
/// shard count). Safe to re-run after any crash — see the module docs.
pub fn rebalance(
    old: &ShardMap,
    new: &ShardMap,
    cfg: &NetClientConfig,
) -> Result<RebalanceReport, NetError> {
    assert_eq!(old.shards, new.shards, "maps partition the same key space");
    assert!(old.epoch < new.epoch, "the new map must advance the epoch");
    let mut conns = Conns {
        cfg: cfg.clone(),
        by_addr: HashMap::new(),
    };

    // Preamble: every node of the OLD map must be serving it. A node that
    // was SIGKILLed and restarted comes back mapless (its gate refuses
    // everything) — re-hand it the old map so the move below can freeze
    // and extract. Nodes already past `old.epoch` (a previous run of this
    // same rebalance got further than the crash) are left alone.
    for (i, addr) in old.nodes.iter().enumerate() {
        let have = conns.get(addr).fetch_map()?.map(|m| m.epoch).unwrap_or(0);
        if have < old.epoch {
            conns.get(addr).install_map(old, i as u32)?;
        }
    }

    // The moves: freeze → drain → extract → verify → install, one shard
    // at a time. Extraction drains server-side; the coordinator re-hashes
    // the image itself before handing it to the target, so a source whose
    // bytes rotted in memory or in transit is caught here, typed.
    let mut moved = Vec::new();
    for (shard, from, to) in old.moved_shards(new) {
        conns.get(&from).freeze_shard(shard, true)?;
        let bytes = conns.get(&from).extract_shard(shard)?;
        let image = HandoffImage::decode(&bytes).map_err(NetError::Frame)?;
        image.verify(keys_digest).map_err(NetError::Frame)?;
        conns.get(&to).install_shard(bytes)?;
        moved.push(MovedShard {
            shard,
            from,
            to,
            keys: image.key_count(),
        });
    }

    // Advance the epoch: shard gainers first (they start owning the
    // moment they see the new map), donors last (they keep refusing the
    // frozen shard until the very end, so no window exists in which
    // nobody would refuse a stale write). A node evicted from the map
    // gets nothing — its gate keeps serving the old epoch and every
    // cluster request against it is refused typed.
    let gained: Vec<&String> = new
        .nodes
        .iter()
        .filter(|a| moved.iter().any(|m| &m.to == *a))
        .collect();
    let mut order: Vec<usize> = (0..new.nodes.len()).collect();
    order.sort_by_key(|&i| {
        let addr = &new.nodes[i];
        if gained.contains(&addr) {
            0
        } else if moved.iter().any(|m| &m.from == addr) {
            2
        } else {
            1
        }
    });
    for i in order {
        conns.get(&new.nodes[i]).install_map(new, i as u32)?;
    }

    Ok(RebalanceReport {
        from_epoch: old.epoch,
        to_epoch: new.epoch,
        moved,
    })
}

/// Abandons a rebalance that froze shards but has not advanced the epoch:
/// lifts every freeze the move toward `new` would have placed, so the old
/// owners resume serving under the old map. Only valid before any node
/// has installed `new` — afterwards, drive the rebalance forward instead
/// (its steps are idempotent).
pub fn abort_rebalance(
    old: &ShardMap,
    new: &ShardMap,
    cfg: &NetClientConfig,
) -> Result<(), NetError> {
    let mut conns = Conns {
        cfg: cfg.clone(),
        by_addr: HashMap::new(),
    };
    for (shard, from, _to) in old.moved_shards(new) {
        conns.get(&from).freeze_shard(shard, false)?;
    }
    Ok(())
}
