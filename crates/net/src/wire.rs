//! The wire protocol: CRC-framed, length-prefixed messages over a byte
//! stream, speaking the same frame vocabulary as the durable artifacts.
//!
//! Every message is one [`fol_persist::frame`] frame —
//! `[len u32 LE] [crc u32 LE] [payload]` — whose payload starts with an
//! opcode byte. The receiver refuses defects **typed**, reusing
//! [`PersistError`]'s distinctions: a stream that ends mid-frame is
//! [`PersistError::Truncated`], a complete frame whose CRC disagrees is
//! [`PersistError::CrcMismatch`], and a CRC-clean payload that does not
//! decode as the declared structure is [`PersistError::Malformed`]. A frame
//! defect poisons the whole connection (stream sync can no longer be
//! trusted): the receiving peer best-effort sends a [`ServerMsg::WireRefused`]
//! naming the defect, then closes — the client reconnects and re-submits
//! under the same sequence number, and the server's dedupe table makes the
//! re-submission exactly-once.

use crate::shard::ShardMap;
use fol_persist::frame::{crc32, Dec, Enc};
use fol_persist::PersistError;
use fol_serve::{Priority, Request, Response, ServeError, WorkloadClass};
use fol_vm::Word;
use std::io::Read;

/// Hard bound on one frame's payload length. A length prefix past it is
/// refused as [`PersistError::Malformed`] before any allocation — a flipped
/// length byte must not let the reader try to buffer 4 GiB.
pub const MAX_FRAME: usize = 1 << 22;

const OP_SUBMIT: u8 = 1;
const OP_HEALTH: u8 = 2;
const OP_SHUTDOWN: u8 = 3;
const OP_INSTALL_MAP: u8 = 4;
const OP_FREEZE_SHARD: u8 = 5;
const OP_EXTRACT_SHARD: u8 = 6;
const OP_INSTALL_SHARD: u8 = 7;
const OP_GET_MAP: u8 = 8;

const OP_RESULT: u8 = 1;
const OP_HEALTH_OK: u8 = 2;
const OP_WIRE_REFUSED: u8 = 3;
const OP_SHUTDOWN_ACK: u8 = 4;
const OP_MAP: u8 = 5;
const OP_SHARD_IMAGE: u8 = 6;
const OP_ADMIN_OK: u8 = 7;
const OP_ADMIN_ERR: u8 = 8;

const REQ_CHAIN_INSERT: u8 = 0;
const REQ_OA_INSERT: u8 = 1;
const REQ_OA_LOOKUP: u8 = 2;
const REQ_BST_INSERT: u8 = 3;
const REQ_INJECT_ROT: u8 = 4;
const REQ_POISON_PILL: u8 = 5;
const REQ_DIGEST: u8 = 6;
const REQ_SHARD_DIGEST: u8 = 7;
const REQ_SHARD_KEYS: u8 = 8;

const RESP_CHAIN_INSERTED: u8 = 0;
const RESP_OA_INSERTED: u8 = 1;
const RESP_OA_LOOKED_UP: u8 = 2;
const RESP_BST_INSERTED: u8 = 3;
const RESP_CLASS_DIGEST: u8 = 4;
const RESP_ROT_INJECTED: u8 = 5;
const RESP_KEYS: u8 = 6;

const ERR_OVERLOADED: u8 = 0;
const ERR_DEADLINE: u8 = 1;
const ERR_REJECTED: u8 = 2;
const ERR_FAILED: u8 = 3;
const ERR_WORKER_LOST: u8 = 4;
const ERR_SHUTTING_DOWN: u8 = 5;
const ERR_PERSIST: u8 = 6;
const ERR_WRONG_EPOCH: u8 = 7;
const ERR_NOT_OWNER: u8 = 8;

const PERSIST_IO: u8 = 0;
const PERSIST_BAD_MAGIC: u8 = 1;
const PERSIST_UNSUPPORTED: u8 = 2;
const PERSIST_TRUNCATED: u8 = 3;
const PERSIST_CRC: u8 = 4;
const PERSIST_MALFORMED: u8 = 5;

const OUTCOME_OK: u8 = 0;
const OUTCOME_ERR: u8 = 1;
const OUTCOME_BUSY: u8 = 2;

/// One client-to-server message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ClientMsg {
    /// Submit `request` under (`client_id`, `seq`). Re-submitting the same
    /// pair after a timeout is safe: the server dedupes and replays the
    /// recorded outcome instead of re-executing. `acked_floor` is the
    /// highest sequence number below which the client has every outcome —
    /// the server prunes its dedupe entries up to it.
    Submit {
        /// Stable identity of the submitting client.
        client_id: u64,
        /// Client-assigned request sequence number (the dedupe key,
        /// together with `client_id` and `map_epoch`).
        seq: u64,
        /// Every `seq < acked_floor` is acknowledged client-side.
        acked_floor: u64,
        /// Server-side deadline for the request, in milliseconds.
        deadline_millis: Option<u64>,
        /// The cluster shard the client routed this request to, or
        /// [`fol_serve::NO_SHARD`] for untagged / keyless traffic.
        shard: u32,
        /// The shard-map epoch the routing decision was made under; the
        /// server refuses mismatches typed ([`ServeError::WrongEpoch`]).
        /// `0` together with [`fol_serve::NO_SHARD`] means "standalone
        /// client, no map" and bypasses the epoch check.
        map_epoch: u64,
        /// The request itself.
        request: Request,
    },
    /// Cheap liveness/stats probe, answered at the network layer without
    /// entering the admission queue — it works even when the queue is
    /// saturated.
    Health,
    /// Ask the serving process to drain and shut down.
    Shutdown,
    /// Install a shard map on the server: the gate starts admitting only
    /// traffic stamped with this map's epoch, owning the shards whose
    /// replica groups include node index `you_are`.
    InstallMap {
        /// The map to install.
        map: ShardMap,
        /// The receiving server's index into `map.nodes`.
        you_are: u32,
    },
    /// Freeze (`true`) or unfreeze (`false`) one owned shard: frozen
    /// shards refuse new writes typed ([`ServeError::NotOwner`]) while a
    /// rebalance drains and extracts them.
    FreezeShard {
        /// The shard to (un)freeze.
        shard: u32,
        /// `true` to freeze, `false` to lift an aborted rebalance's freeze.
        freeze: bool,
    },
    /// Extract a frozen shard's contents as a digest-carrying handoff
    /// image ([`ServerMsg::ShardImage`]). The shard must be frozen and
    /// drained first.
    ExtractShard {
        /// The shard to extract.
        shard: u32,
    },
    /// Install a handoff image extracted from the shard's previous owner.
    /// The server verifies every section digest before touching its
    /// structures and acks with [`ServerMsg::AdminOk`] only after a
    /// digest-verified install.
    InstallShard {
        /// The encoded [`fol_persist::HandoffImage`].
        image: Vec<u8>,
    },
    /// Fetch the server's current shard map, if one is installed.
    GetMap,
}

/// The per-request outcome carried by [`ServerMsg::Result`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WireOutcome {
    /// The request's typed success payload.
    Ok(Response),
    /// The request's typed failure.
    Err(ServeError),
    /// A duplicate of a request that is still executing: the original
    /// attempt's outcome is not known yet, so there is nothing to replay.
    /// Retryable — by the next attempt the outcome will be cached.
    Busy,
}

impl WireOutcome {
    /// Encodes the outcome standalone (tag byte onward, no frame header) —
    /// the opaque byte form shard-handoff images ship dedupe records in.
    pub fn encode(&self) -> Vec<u8> {
        let mut e = Enc::new();
        enc_outcome(&mut e, self);
        e.into_bytes()
    }

    /// Decodes a standalone encoding produced by [`WireOutcome::encode`];
    /// every defect is a typed [`PersistError::Malformed`].
    pub fn decode(payload: &[u8]) -> Result<Self, PersistError> {
        let mut d = Dec::new(payload);
        let outcome = dec_outcome(&mut d)?;
        d.finish("wire.outcome")?;
        Ok(outcome)
    }
}

/// One server-to-client message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ServerMsg {
    /// The outcome of the submit carrying `seq`.
    Result {
        /// Echo of the submit's sequence number.
        seq: u64,
        /// The typed outcome.
        outcome: WireOutcome,
    },
    /// The answer to [`ClientMsg::Health`]: the server's counter snapshot
    /// as (name, value) pairs plus the network layer's own in-flight count.
    Health {
        /// Counter names and values, in server-defined order.
        counters: Vec<(String, u64)>,
    },
    /// The peer's last frame was defective (torn, CRC-bad, or malformed);
    /// the connection is being closed. `what` renders the typed defect.
    WireRefused {
        /// The rendered [`PersistError`].
        what: String,
    },
    /// Shutdown acknowledged; the server is draining.
    ShutdownAck,
    /// The answer to [`ClientMsg::GetMap`]: the installed map, or `None`
    /// when the server has never been handed one.
    Map {
        /// The server's current map, if any.
        map: Option<ShardMap>,
    },
    /// The answer to [`ClientMsg::ExtractShard`]: the encoded
    /// [`fol_persist::HandoffImage`] of the frozen, drained shard.
    ShardImage {
        /// The encoded image bytes.
        image: Vec<u8>,
    },
    /// An administrative operation (map install, freeze, shard install)
    /// succeeded.
    AdminOk,
    /// An administrative operation was refused; `what` renders the typed
    /// reason. The connection stays open — admin refusals are verdicts,
    /// not frame defects.
    AdminErr {
        /// The rendered refusal.
        what: String,
    },
}

fn malformed(what: impl Into<String>) -> PersistError {
    PersistError::Malformed { what: what.into() }
}

fn class_tag(c: WorkloadClass) -> u8 {
    match c {
        WorkloadClass::Chain => 0,
        WorkloadClass::OpenAddr => 1,
        WorkloadClass::Bst => 2,
    }
}

fn class_of_tag(t: u8) -> Result<WorkloadClass, PersistError> {
    match t {
        0 => Ok(WorkloadClass::Chain),
        1 => Ok(WorkloadClass::OpenAddr),
        2 => Ok(WorkloadClass::Bst),
        other => Err(malformed(format!("wire: unknown class tag {other}"))),
    }
}

fn priority_tag(p: Priority) -> u8 {
    match p {
        Priority::Low => 0,
        Priority::Normal => 1,
        Priority::High => 2,
    }
}

fn priority_of_tag(t: u8) -> Result<Priority, PersistError> {
    match t {
        0 => Ok(Priority::Low),
        1 => Ok(Priority::Normal),
        2 => Ok(Priority::High),
        other => Err(malformed(format!("wire: unknown priority tag {other}"))),
    }
}

fn enc_keys(e: &mut Enc, keys: &[Word]) {
    e.u32(keys.len() as u32);
    for &k in keys {
        e.i64(k);
    }
}

fn dec_keys(d: &mut Dec<'_>, what: &str) -> Result<Vec<Word>, PersistError> {
    let n = d.u32(what)? as usize;
    let mut keys = Vec::with_capacity(n.min(1 << 16));
    for _ in 0..n {
        keys.push(d.i64(what)?);
    }
    Ok(keys)
}

fn enc_request(e: &mut Enc, request: &Request) {
    match request {
        Request::ChainInsert { keys } => {
            e.u8(REQ_CHAIN_INSERT);
            enc_keys(e, keys);
        }
        Request::OaInsert { keys } => {
            e.u8(REQ_OA_INSERT);
            enc_keys(e, keys);
        }
        Request::OaLookup { keys } => {
            e.u8(REQ_OA_LOOKUP);
            enc_keys(e, keys);
        }
        Request::BstInsert { keys } => {
            e.u8(REQ_BST_INSERT);
            enc_keys(e, keys);
        }
        Request::InjectRot { class } => {
            e.u8(REQ_INJECT_ROT);
            e.u8(class_tag(*class));
        }
        Request::PoisonPill { class } => {
            e.u8(REQ_POISON_PILL);
            e.u8(class_tag(*class));
        }
        Request::Digest { class } => {
            e.u8(REQ_DIGEST);
            e.u8(class_tag(*class));
        }
        Request::ShardDigest {
            class,
            shards,
            shard,
        } => {
            e.u8(REQ_SHARD_DIGEST);
            e.u8(class_tag(*class));
            e.u32(*shards);
            e.u32(*shard);
        }
        Request::ShardKeys {
            class,
            shards,
            shard,
        } => {
            e.u8(REQ_SHARD_KEYS);
            e.u8(class_tag(*class));
            e.u32(*shards);
            e.u32(*shard);
        }
    }
}

fn dec_request(d: &mut Dec<'_>) -> Result<Request, PersistError> {
    let tag = d.u8("wire.request.tag")?;
    Ok(match tag {
        REQ_CHAIN_INSERT => Request::ChainInsert {
            keys: dec_keys(d, "wire.request.keys")?,
        },
        REQ_OA_INSERT => Request::OaInsert {
            keys: dec_keys(d, "wire.request.keys")?,
        },
        REQ_OA_LOOKUP => Request::OaLookup {
            keys: dec_keys(d, "wire.request.keys")?,
        },
        REQ_BST_INSERT => Request::BstInsert {
            keys: dec_keys(d, "wire.request.keys")?,
        },
        REQ_INJECT_ROT => Request::InjectRot {
            class: class_of_tag(d.u8("wire.request.class")?)?,
        },
        REQ_POISON_PILL => Request::PoisonPill {
            class: class_of_tag(d.u8("wire.request.class")?)?,
        },
        REQ_DIGEST => Request::Digest {
            class: class_of_tag(d.u8("wire.request.class")?)?,
        },
        REQ_SHARD_DIGEST => Request::ShardDigest {
            class: class_of_tag(d.u8("wire.request.class")?)?,
            shards: d.u32("wire.request.shards")?,
            shard: d.u32("wire.request.shard")?,
        },
        REQ_SHARD_KEYS => Request::ShardKeys {
            class: class_of_tag(d.u8("wire.request.class")?)?,
            shards: d.u32("wire.request.shards")?,
            shard: d.u32("wire.request.shard")?,
        },
        other => return Err(malformed(format!("wire: unknown request tag {other}"))),
    })
}

fn enc_response(e: &mut Enc, response: &Response) {
    match response {
        Response::ChainInserted { rounds } => {
            e.u8(RESP_CHAIN_INSERTED);
            e.u64(*rounds as u64);
        }
        Response::OaInserted { iterations, probes } => {
            e.u8(RESP_OA_INSERTED);
            e.u64(*iterations as u64);
            e.u64(*probes);
        }
        Response::OaLookedUp { found } => {
            e.u8(RESP_OA_LOOKED_UP);
            e.u32(found.len() as u32);
            for &b in found {
                e.u8(b as u8);
            }
        }
        Response::BstInserted {
            iterations,
            retries,
        } => {
            e.u8(RESP_BST_INSERTED);
            e.u64(*iterations as u64);
            e.u64(*retries);
        }
        Response::ClassDigest { digest, count } => {
            e.u8(RESP_CLASS_DIGEST);
            e.u64(*digest);
            e.u64(*count);
        }
        Response::RotInjected => e.u8(RESP_ROT_INJECTED),
        Response::Keys { keys } => {
            e.u8(RESP_KEYS);
            enc_keys(e, keys);
        }
    }
}

fn dec_response(d: &mut Dec<'_>) -> Result<Response, PersistError> {
    let tag = d.u8("wire.response.tag")?;
    Ok(match tag {
        RESP_CHAIN_INSERTED => Response::ChainInserted {
            rounds: d.u64("wire.response.rounds")? as usize,
        },
        RESP_OA_INSERTED => Response::OaInserted {
            iterations: d.u64("wire.response.iterations")? as usize,
            probes: d.u64("wire.response.probes")?,
        },
        RESP_OA_LOOKED_UP => {
            let n = d.u32("wire.response.found.len")? as usize;
            let mut found = Vec::with_capacity(n.min(1 << 16));
            for _ in 0..n {
                found.push(match d.u8("wire.response.found")? {
                    0 => false,
                    1 => true,
                    other => {
                        return Err(malformed(format!("wire: found flag {other} is not a bool")))
                    }
                });
            }
            Response::OaLookedUp { found }
        }
        RESP_BST_INSERTED => Response::BstInserted {
            iterations: d.u64("wire.response.iterations")? as usize,
            retries: d.u64("wire.response.retries")?,
        },
        RESP_CLASS_DIGEST => Response::ClassDigest {
            digest: d.u64("wire.response.digest")?,
            count: d.u64("wire.response.count")?,
        },
        RESP_ROT_INJECTED => Response::RotInjected,
        RESP_KEYS => Response::Keys {
            keys: dec_keys(d, "wire.response.keys")?,
        },
        other => return Err(malformed(format!("wire: unknown response tag {other}"))),
    })
}

fn enc_persist_error(e: &mut Enc, err: &PersistError) {
    match err {
        PersistError::Io { what, error } => {
            e.u8(PERSIST_IO);
            e.str(what);
            e.str(error);
        }
        PersistError::BadMagic { what, found } => {
            e.u8(PERSIST_BAD_MAGIC);
            e.str(what);
            e.u32(found.len() as u32);
            for &b in found {
                e.u8(b);
            }
        }
        PersistError::UnsupportedVersion {
            what,
            found,
            supported,
        } => {
            e.u8(PERSIST_UNSUPPORTED);
            e.str(what);
            e.u32(*found);
            e.u32(*supported);
        }
        PersistError::Truncated {
            what,
            offset,
            needed,
            available,
        } => {
            e.u8(PERSIST_TRUNCATED);
            e.str(what);
            e.u64(*offset as u64);
            e.u64(*needed as u64);
            e.u64(*available as u64);
        }
        PersistError::CrcMismatch {
            what,
            offset,
            expected,
            actual,
        } => {
            e.u8(PERSIST_CRC);
            e.str(what);
            e.u64(*offset as u64);
            e.u32(*expected);
            e.u32(*actual);
        }
        PersistError::Malformed { what } => {
            e.u8(PERSIST_MALFORMED);
            e.str(what);
        }
    }
}

fn dec_persist_error(d: &mut Dec<'_>) -> Result<PersistError, PersistError> {
    let tag = d.u8("wire.persist.tag")?;
    Ok(match tag {
        PERSIST_IO => PersistError::Io {
            what: d.str("wire.persist.what")?,
            error: d.str("wire.persist.error")?,
        },
        PERSIST_BAD_MAGIC => {
            let what = d.str("wire.persist.what")?;
            let n = d.u32("wire.persist.found.len")? as usize;
            let mut found = Vec::with_capacity(n.min(64));
            for _ in 0..n {
                found.push(d.u8("wire.persist.found")?);
            }
            PersistError::BadMagic { what, found }
        }
        PERSIST_UNSUPPORTED => PersistError::UnsupportedVersion {
            what: d.str("wire.persist.what")?,
            found: d.u32("wire.persist.found")?,
            supported: d.u32("wire.persist.supported")?,
        },
        PERSIST_TRUNCATED => PersistError::Truncated {
            what: d.str("wire.persist.what")?,
            offset: d.u64("wire.persist.offset")? as usize,
            needed: d.u64("wire.persist.needed")? as usize,
            available: d.u64("wire.persist.available")? as usize,
        },
        PERSIST_CRC => PersistError::CrcMismatch {
            what: d.str("wire.persist.what")?,
            offset: d.u64("wire.persist.offset")? as usize,
            expected: d.u32("wire.persist.expected")?,
            actual: d.u32("wire.persist.actual")?,
        },
        PERSIST_MALFORMED => PersistError::Malformed {
            what: d.str("wire.persist.what")?,
        },
        other => return Err(malformed(format!("wire: unknown persist tag {other}"))),
    })
}

fn enc_serve_error(e: &mut Enc, err: &ServeError) {
    match err {
        ServeError::Overloaded { capacity } => {
            e.u8(ERR_OVERLOADED);
            e.u64(*capacity as u64);
        }
        ServeError::DeadlineExceeded => e.u8(ERR_DEADLINE),
        ServeError::Rejected { reason } => {
            e.u8(ERR_REJECTED);
            e.str(reason);
        }
        ServeError::Failed { reason } => {
            e.u8(ERR_FAILED);
            e.str(reason);
        }
        ServeError::WorkerLost => e.u8(ERR_WORKER_LOST),
        ServeError::ShuttingDown => e.u8(ERR_SHUTTING_DOWN),
        ServeError::Persist { error } => {
            e.u8(ERR_PERSIST);
            enc_persist_error(e, error);
        }
        ServeError::WrongEpoch { got, current } => {
            e.u8(ERR_WRONG_EPOCH);
            e.u64(*got);
            e.u64(*current);
        }
        ServeError::NotOwner { shard } => {
            e.u8(ERR_NOT_OWNER);
            e.u32(*shard);
        }
    }
}

fn dec_serve_error(d: &mut Dec<'_>) -> Result<ServeError, PersistError> {
    let tag = d.u8("wire.error.tag")?;
    Ok(match tag {
        ERR_OVERLOADED => ServeError::Overloaded {
            capacity: d.u64("wire.error.capacity")? as usize,
        },
        ERR_DEADLINE => ServeError::DeadlineExceeded,
        ERR_REJECTED => ServeError::Rejected {
            reason: d.str("wire.error.reason")?,
        },
        ERR_FAILED => ServeError::Failed {
            reason: d.str("wire.error.reason")?,
        },
        ERR_WORKER_LOST => ServeError::WorkerLost,
        ERR_SHUTTING_DOWN => ServeError::ShuttingDown,
        ERR_PERSIST => ServeError::Persist {
            error: dec_persist_error(d)?,
        },
        ERR_WRONG_EPOCH => ServeError::WrongEpoch {
            got: d.u64("wire.error.got")?,
            current: d.u64("wire.error.current")?,
        },
        ERR_NOT_OWNER => ServeError::NotOwner {
            shard: d.u32("wire.error.shard")?,
        },
        other => return Err(malformed(format!("wire: unknown error tag {other}"))),
    })
}

fn enc_outcome(e: &mut Enc, outcome: &WireOutcome) {
    match outcome {
        WireOutcome::Ok(r) => {
            e.u8(OUTCOME_OK);
            enc_response(e, r);
        }
        WireOutcome::Err(err) => {
            e.u8(OUTCOME_ERR);
            enc_serve_error(e, err);
        }
        WireOutcome::Busy => e.u8(OUTCOME_BUSY),
    }
}

fn dec_outcome(d: &mut Dec<'_>) -> Result<WireOutcome, PersistError> {
    Ok(match d.u8("wire.result.outcome")? {
        OUTCOME_OK => WireOutcome::Ok(dec_response(d)?),
        OUTCOME_ERR => WireOutcome::Err(dec_serve_error(d)?),
        OUTCOME_BUSY => WireOutcome::Busy,
        other => return Err(malformed(format!("wire: unknown outcome tag {other}"))),
    })
}

fn enc_blob(e: &mut Enc, bytes: &[u8]) {
    e.u32(bytes.len() as u32);
    for &b in bytes {
        e.u8(b);
    }
}

fn dec_blob(d: &mut Dec<'_>, what: &str) -> Result<Vec<u8>, PersistError> {
    let n = d.u32(what)? as usize;
    if n > MAX_FRAME {
        return Err(malformed(format!(
            "wire: {what} blob length {n} exceeds the {MAX_FRAME}-byte bound"
        )));
    }
    let mut bytes = Vec::with_capacity(n.min(1 << 16));
    for _ in 0..n {
        bytes.push(d.u8(what)?);
    }
    Ok(bytes)
}

impl ClientMsg {
    /// Encodes the message payload (opcode byte onward, no frame header).
    pub fn encode(&self) -> Vec<u8> {
        let mut e = Enc::new();
        match self {
            ClientMsg::Submit {
                client_id,
                seq,
                acked_floor,
                deadline_millis,
                shard,
                map_epoch,
                request,
            } => {
                e.u8(OP_SUBMIT);
                e.u64(*client_id);
                e.u64(*seq);
                e.u64(*acked_floor);
                match deadline_millis {
                    Some(ms) => {
                        e.u8(1);
                        e.u64(*ms);
                    }
                    None => {
                        e.u8(0);
                        e.u64(0);
                    }
                }
                e.u32(*shard);
                e.u64(*map_epoch);
                // Priority is not carried: remote traffic is all Normal
                // (the lanes already order by kind; a remote peer must not
                // starve local High submitters).
                e.u8(priority_tag(Priority::Normal));
                enc_request(&mut e, request);
            }
            ClientMsg::Health => e.u8(OP_HEALTH),
            ClientMsg::Shutdown => e.u8(OP_SHUTDOWN),
            ClientMsg::InstallMap { map, you_are } => {
                e.u8(OP_INSTALL_MAP);
                e.u32(*you_are);
                enc_blob(&mut e, &map.encode());
            }
            ClientMsg::FreezeShard { shard, freeze } => {
                e.u8(OP_FREEZE_SHARD);
                e.u32(*shard);
                e.u8(*freeze as u8);
            }
            ClientMsg::ExtractShard { shard } => {
                e.u8(OP_EXTRACT_SHARD);
                e.u32(*shard);
            }
            ClientMsg::InstallShard { image } => {
                e.u8(OP_INSTALL_SHARD);
                enc_blob(&mut e, image);
            }
            ClientMsg::GetMap => e.u8(OP_GET_MAP),
        }
        e.into_bytes()
    }

    /// Decodes a payload; every defect is a typed
    /// [`PersistError::Malformed`].
    pub fn decode(payload: &[u8]) -> Result<Self, PersistError> {
        let mut d = Dec::new(payload);
        let op = d.u8("wire.client.op")?;
        let msg = match op {
            OP_SUBMIT => {
                let client_id = d.u64("wire.submit.client_id")?;
                let seq = d.u64("wire.submit.seq")?;
                let acked_floor = d.u64("wire.submit.acked_floor")?;
                let has_deadline = d.u8("wire.submit.has_deadline")? != 0;
                let millis = d.u64("wire.submit.deadline_millis")?;
                let shard = d.u32("wire.submit.shard")?;
                let map_epoch = d.u64("wire.submit.map_epoch")?;
                let _priority = priority_of_tag(d.u8("wire.submit.priority")?)?;
                let request = dec_request(&mut d)?;
                ClientMsg::Submit {
                    client_id,
                    seq,
                    acked_floor,
                    deadline_millis: has_deadline.then_some(millis),
                    shard,
                    map_epoch,
                    request,
                }
            }
            OP_HEALTH => ClientMsg::Health,
            OP_SHUTDOWN => ClientMsg::Shutdown,
            OP_INSTALL_MAP => {
                let you_are = d.u32("wire.install_map.you_are")?;
                let bytes = dec_blob(&mut d, "wire.install_map.map")?;
                ClientMsg::InstallMap {
                    map: ShardMap::decode(&bytes)?,
                    you_are,
                }
            }
            OP_FREEZE_SHARD => ClientMsg::FreezeShard {
                shard: d.u32("wire.freeze.shard")?,
                freeze: d.u8("wire.freeze.flag")? != 0,
            },
            OP_EXTRACT_SHARD => ClientMsg::ExtractShard {
                shard: d.u32("wire.extract.shard")?,
            },
            OP_INSTALL_SHARD => ClientMsg::InstallShard {
                image: dec_blob(&mut d, "wire.install_shard.image")?,
            },
            OP_GET_MAP => ClientMsg::GetMap,
            other => return Err(malformed(format!("wire: unknown client op {other}"))),
        };
        d.finish("wire.client message")?;
        Ok(msg)
    }
}

impl ServerMsg {
    /// Encodes the message payload (opcode byte onward, no frame header).
    pub fn encode(&self) -> Vec<u8> {
        let mut e = Enc::new();
        match self {
            ServerMsg::Result { seq, outcome } => {
                e.u8(OP_RESULT);
                e.u64(*seq);
                enc_outcome(&mut e, outcome);
            }
            ServerMsg::Health { counters } => {
                e.u8(OP_HEALTH_OK);
                e.u32(counters.len() as u32);
                for (name, value) in counters {
                    e.str(name);
                    e.u64(*value);
                }
            }
            ServerMsg::WireRefused { what } => {
                e.u8(OP_WIRE_REFUSED);
                e.str(what);
            }
            ServerMsg::ShutdownAck => e.u8(OP_SHUTDOWN_ACK),
            ServerMsg::Map { map } => {
                e.u8(OP_MAP);
                match map {
                    Some(m) => {
                        e.u8(1);
                        enc_blob(&mut e, &m.encode());
                    }
                    None => e.u8(0),
                }
            }
            ServerMsg::ShardImage { image } => {
                e.u8(OP_SHARD_IMAGE);
                enc_blob(&mut e, image);
            }
            ServerMsg::AdminOk => e.u8(OP_ADMIN_OK),
            ServerMsg::AdminErr { what } => {
                e.u8(OP_ADMIN_ERR);
                e.str(what);
            }
        }
        e.into_bytes()
    }

    /// Decodes a payload; every defect is a typed
    /// [`PersistError::Malformed`].
    pub fn decode(payload: &[u8]) -> Result<Self, PersistError> {
        let mut d = Dec::new(payload);
        let op = d.u8("wire.server.op")?;
        let msg = match op {
            OP_RESULT => {
                let seq = d.u64("wire.result.seq")?;
                let outcome = dec_outcome(&mut d)?;
                ServerMsg::Result { seq, outcome }
            }
            OP_HEALTH_OK => {
                let n = d.u32("wire.health.len")? as usize;
                let mut counters = Vec::with_capacity(n.min(256));
                for _ in 0..n {
                    let name = d.str("wire.health.name")?;
                    let value = d.u64("wire.health.value")?;
                    counters.push((name, value));
                }
                ServerMsg::Health { counters }
            }
            OP_WIRE_REFUSED => ServerMsg::WireRefused {
                what: d.str("wire.refused.what")?,
            },
            OP_SHUTDOWN_ACK => ServerMsg::ShutdownAck,
            OP_MAP => {
                let has = d.u8("wire.map.has")? != 0;
                let map = if has {
                    let bytes = dec_blob(&mut d, "wire.map.bytes")?;
                    Some(ShardMap::decode(&bytes)?)
                } else {
                    None
                };
                ServerMsg::Map { map }
            }
            OP_SHARD_IMAGE => ServerMsg::ShardImage {
                image: dec_blob(&mut d, "wire.shard_image.bytes")?,
            },
            OP_ADMIN_OK => ServerMsg::AdminOk,
            OP_ADMIN_ERR => ServerMsg::AdminErr {
                what: d.str("wire.admin_err.what")?,
            },
            other => return Err(malformed(format!("wire: unknown server op {other}"))),
        };
        d.finish("wire.server message")?;
        Ok(msg)
    }
}

/// Frames `payload` for the wire: the identical header the durable
/// artifacts use ([`fol_persist::frame::push_frame`]).
pub fn frame_bytes(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(payload.len() + 8);
    fol_persist::frame::push_frame(&mut out, payload);
    out
}

/// Reads exactly one frame from `stream` and returns its CRC-verified
/// payload, or `Ok(None)` on a clean EOF *at a frame boundary*.
///
/// Failure typing mirrors the durable reader: EOF mid-frame is
/// [`PersistError::Truncated`] (a torn frame — the peer died or injected a
/// half-open mid-write), a CRC disagreement is
/// [`PersistError::CrcMismatch`], and a length prefix past [`MAX_FRAME`] is
/// [`PersistError::Malformed`]. I/O errors (including read timeouts) pass
/// through as `Err(Ok(io))` via the nested result so the caller can
/// distinguish transport failure from frame corruption.
pub fn read_frame(
    stream: &mut impl Read,
    context: &str,
) -> Result<Option<Vec<u8>>, ReadFrameError> {
    let mut header = [0u8; 8];
    match read_full(stream, &mut header) {
        ReadFull::Eof(0) => return Ok(None),
        ReadFull::Eof(got) => {
            return Err(ReadFrameError::Frame(PersistError::Truncated {
                what: format!("{context}: frame header"),
                offset: 0,
                needed: 8,
                available: got,
            }))
        }
        ReadFull::Io { error, got } => {
            return Err(ReadFrameError::Io {
                error,
                mid_frame: got > 0,
            })
        }
        ReadFull::Done => {}
    }
    let len = u32::from_le_bytes(header[..4].try_into().unwrap()) as usize;
    let crc = u32::from_le_bytes(header[4..].try_into().unwrap());
    if len > MAX_FRAME {
        return Err(ReadFrameError::Frame(PersistError::Malformed {
            what: format!("{context}: frame length {len} exceeds the {MAX_FRAME}-byte bound"),
        }));
    }
    let mut payload = vec![0u8; len];
    match read_full(stream, &mut payload) {
        ReadFull::Eof(got) => {
            return Err(ReadFrameError::Frame(PersistError::Truncated {
                what: format!("{context}: frame payload"),
                offset: 8,
                needed: len,
                available: got,
            }))
        }
        ReadFull::Io { error, .. } => {
            return Err(ReadFrameError::Io {
                error,
                mid_frame: true,
            })
        }
        ReadFull::Done => {}
    }
    let actual = crc32(&payload);
    if actual != crc {
        return Err(ReadFrameError::Frame(PersistError::CrcMismatch {
            what: context.to_string(),
            offset: 0,
            expected: crc,
            actual,
        }));
    }
    Ok(Some(payload))
}

/// Why [`read_frame`] failed: transport versus frame integrity.
#[derive(Debug)]
pub enum ReadFrameError {
    /// The operating system refused the read (timeout, reset, ...).
    Io {
        /// The underlying error.
        error: std::io::Error,
        /// Whether part of a frame had already been read: a timeout at a
        /// frame boundary is an idle connection (benign); a timeout
        /// mid-frame means the peer stalled and the stream is desynced.
        mid_frame: bool,
    },
    /// The bytes arrived but the frame is defective (typed).
    Frame(PersistError),
}

enum ReadFull {
    Done,
    /// EOF after this many bytes of the wanted buffer.
    Eof(usize),
    Io {
        error: std::io::Error,
        got: usize,
    },
}

fn read_full(stream: &mut impl Read, buf: &mut [u8]) -> ReadFull {
    let mut got = 0;
    while got < buf.len() {
        match stream.read(&mut buf[got..]) {
            Ok(0) => return ReadFull::Eof(got),
            Ok(n) => got += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(error) => return ReadFull::Io { error, got },
        }
    }
    ReadFull::Done
}

#[cfg(test)]
mod tests {
    use super::*;
    use fol_serve::NO_SHARD;

    #[test]
    fn client_and_server_messages_round_trip() {
        let map = ShardMap::build(vec!["a:1".into(), "b:2".into()], 16, 32, 1);
        let msgs = vec![
            ClientMsg::Submit {
                client_id: 9,
                seq: 42,
                acked_floor: 40,
                deadline_millis: Some(250),
                shard: NO_SHARD,
                map_epoch: 0,
                request: Request::ChainInsert { keys: vec![1, -2] },
            },
            ClientMsg::Submit {
                client_id: 9,
                seq: 43,
                acked_floor: 40,
                deadline_millis: None,
                shard: 5,
                map_epoch: 3,
                request: Request::ShardDigest {
                    class: WorkloadClass::Bst,
                    shards: 16,
                    shard: 5,
                },
            },
            ClientMsg::Health,
            ClientMsg::Shutdown,
            ClientMsg::InstallMap {
                map: map.clone(),
                you_are: 1,
            },
            ClientMsg::FreezeShard {
                shard: 3,
                freeze: true,
            },
            ClientMsg::ExtractShard { shard: 3 },
            ClientMsg::InstallShard {
                image: vec![1, 2, 3, 4],
            },
            ClientMsg::GetMap,
        ];
        for m in msgs {
            assert_eq!(ClientMsg::decode(&m.encode()).unwrap(), m);
        }
        let msgs = vec![
            ServerMsg::Result {
                seq: 42,
                outcome: WireOutcome::Ok(Response::OaLookedUp {
                    found: vec![true, false],
                }),
            },
            ServerMsg::Result {
                seq: 7,
                outcome: WireOutcome::Err(ServeError::Persist {
                    error: PersistError::CrcMismatch {
                        what: "wal".into(),
                        offset: 16,
                        expected: 1,
                        actual: 2,
                    },
                }),
            },
            ServerMsg::Result {
                seq: 8,
                outcome: WireOutcome::Busy,
            },
            ServerMsg::Health {
                counters: vec![("submitted".into(), 3), ("completed".into(), 3)],
            },
            ServerMsg::Result {
                seq: 11,
                outcome: WireOutcome::Err(ServeError::WrongEpoch { got: 2, current: 3 }),
            },
            ServerMsg::Result {
                seq: 12,
                outcome: WireOutcome::Err(ServeError::NotOwner { shard: 7 }),
            },
            ServerMsg::Result {
                seq: 13,
                outcome: WireOutcome::Ok(Response::Keys { keys: vec![4, -9] }),
            },
            ServerMsg::WireRefused {
                what: "crc mismatch".into(),
            },
            ServerMsg::ShutdownAck,
            ServerMsg::Map { map: None },
            ServerMsg::Map { map: Some(map) },
            ServerMsg::ShardImage {
                image: vec![9, 9, 9],
            },
            ServerMsg::AdminOk,
            ServerMsg::AdminErr {
                what: "shard 3 is not frozen".into(),
            },
        ];
        for m in msgs {
            assert_eq!(ServerMsg::decode(&m.encode()).unwrap(), m);
        }
    }

    #[test]
    fn oversized_length_prefix_is_refused_before_allocation() {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&(u32::MAX).to_le_bytes());
        bytes.extend_from_slice(&0u32.to_le_bytes());
        let err = read_frame(&mut &bytes[..], "t").unwrap_err();
        assert!(
            matches!(err, ReadFrameError::Frame(PersistError::Malformed { .. })),
            "{err:?}"
        );
    }

    #[test]
    fn torn_and_flipped_frames_are_distinct_typed_defects() {
        let framed = frame_bytes(&ClientMsg::Health.encode());
        // Clean EOF at the boundary.
        assert!(read_frame(&mut &framed[..0], "t").unwrap().is_none());
        // Torn mid-header and mid-payload.
        for cut in [3, framed.len() - 1] {
            let err = read_frame(&mut &framed[..cut], "t").unwrap_err();
            assert!(
                matches!(err, ReadFrameError::Frame(PersistError::Truncated { .. })),
                "cut at {cut}: {err:?}"
            );
        }
        // Flipped payload byte.
        let mut flipped = framed.clone();
        let last = flipped.len() - 1;
        flipped[last] ^= 0x10;
        let err = read_frame(&mut &flipped[..], "t").unwrap_err();
        assert!(
            matches!(err, ReadFrameError::Frame(PersistError::CrcMismatch { .. })),
            "{err:?}"
        );
    }
}
