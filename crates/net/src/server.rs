//! The threaded TCP front-end over [`fol_serve::Server`].
//!
//! One accept thread; per connection, a **reader** thread (decodes frames,
//! runs net-layer admission and dedupe, submits to the serving layer) and a
//! **writer** thread (waits tickets in submission order and writes results
//! back). The split pipelines: a client that streams many submits before
//! reading results hands the coalescing scheduler a full batch, which is
//! what the wire protocol must preserve for remote throughput to stay near
//! in-process throughput.
//!
//! Guarantees, mirrored from the in-process layer:
//!
//! * **typed outcomes** — every decodable submit is answered with a
//!   [`ServerMsg::Result`]; a defective frame is answered (best-effort)
//!   with [`ServerMsg::WireRefused`] and the connection is closed, because
//!   a stream that tore once can no longer be trusted to be in sync;
//! * **bounded admission** — at most `max_in_flight` wire requests may be
//!   executing; past that the server answers a typed
//!   [`ServeError::Overloaded`] *without touching the queue*;
//! * **exactly-once re-submission** — outcomes are cached per
//!   `(client_id, seq)`; a retry of a completed request replays the cached
//!   outcome, a retry of a still-executing request gets
//!   [`WireOutcome::Busy`], and entries are pruned by the client's
//!   acknowledged floor;
//! * **health without admission** — [`ClientMsg::Health`] is answered by
//!   the reader thread straight from [`fol_serve::Server::stats`], so it
//!   works even when the queue and the in-flight bound are saturated;
//! * **graceful drain** — shutdown stops the accept loop, lets every
//!   already-submitted request complete and be written back, then drains
//!   the serving layer itself.

use crate::fault::{FaultedWriter, WireFaultPlan};
use crate::shard::ShardMap;
use crate::wire::{read_frame, ClientMsg, ReadFrameError, ServerMsg, WireOutcome};
use fol_persist::{HandoffDedupe, HandoffImage, HandoffSection};
use fol_serve::{
    keys_digest, Priority, Request, Response, ServeError, Server, ShutdownReport, Ticket,
    WorkloadClass,
};
use std::collections::HashMap;
use std::io::ErrorKind;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Mutex, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Tuning for the network front-end.
#[derive(Clone, Debug)]
pub struct NetServerConfig {
    /// Address to bind, e.g. `"127.0.0.1:0"` (port 0 picks a free one —
    /// read it back from [`NetServer::local_addr`]).
    pub bind: String,
    /// Per-connection read deadline. At a frame boundary it is an idle
    /// poll tick (persistent connections may sit quiet); *mid-frame* it is
    /// a hard deadline — a peer that stalls half-way through a frame is
    /// torn down with a typed refusal, never waited on indefinitely.
    pub read_timeout: Duration,
    /// Per-connection write deadline.
    pub write_timeout: Duration,
    /// Bound on wire requests admitted but not yet answered, across all
    /// connections. Past it, submits get a typed
    /// [`ServeError::Overloaded`] without entering the queue.
    pub max_in_flight: usize,
    /// Seeded fault injection on the server's response writes (chaos
    /// testing; `None` in production).
    pub fault_plan: Option<WireFaultPlan>,
}

impl Default for NetServerConfig {
    fn default() -> Self {
        NetServerConfig {
            bind: "127.0.0.1:0".into(),
            read_timeout: Duration::from_millis(100),
            write_timeout: Duration::from_secs(2),
            max_in_flight: 1024,
            fault_plan: None,
        }
    }
}

/// What the dedupe table knows about a `(client_id, seq)` pair.
enum Dedupe {
    /// Admitted, outcome not yet known.
    InFlight,
    /// Completed; replayed verbatim to retries.
    Done {
        /// The shard the request routed to: the ownership tag
        /// [`extract_shard`] uses to ship this entry inside the handoff
        /// image when the shard moves, so the client's retry replays on
        /// the new owner instead of hitting a `WrongEpoch` refusal.
        shard: u32,
        /// The cached outcome.
        outcome: WireOutcome,
    },
}

struct NetShared {
    server: Server,
    cfg: NetServerConfig,
    shutting_down: AtomicBool,
    /// Set when a peer sends [`ClientMsg::Shutdown`]; the embedding process
    /// polls [`NetServer::shutdown_requested`] and calls
    /// [`NetServer::shutdown`].
    shutdown_requested: AtomicBool,
    in_flight: AtomicUsize,
    /// Outcome cache keyed `(client_id, map_epoch, seq)`: the shard-map
    /// epoch is part of the identity, so a request re-routed under a new
    /// map after a rebalance is a *new* request, never answered with an
    /// outcome recorded under the old ownership.
    dedupe: Mutex<HashMap<(u64, u64, u64), Dedupe>>,
    /// Per-client acknowledged floor (highest seen), for dedupe pruning.
    floors: Mutex<HashMap<u64, u64>>,
    /// The installed shard map, if the coordinator has handed one over
    /// (served back on [`ClientMsg::GetMap`]).
    map: Mutex<Option<ShardMap>>,
    conns: Mutex<Vec<JoinHandle<()>>>,
}

impl NetShared {
    fn prune(&self, client_id: u64, acked_floor: u64) {
        let mut floors = self.floors.lock().unwrap_or_else(PoisonError::into_inner);
        let floor = floors.entry(client_id).or_insert(0);
        if acked_floor <= *floor {
            return;
        }
        *floor = acked_floor;
        // A client's seq space is monotonic across epochs, so the floor
        // prunes every epoch's entries below it.
        let mut dedupe = self.dedupe.lock().unwrap_or_else(PoisonError::into_inner);
        dedupe.retain(|&(cid, _epoch, seq), _| cid != client_id || seq >= acked_floor);
    }
}

/// A running TCP front-end; owns the [`fol_serve::Server`] behind it.
pub struct NetServer {
    local_addr: SocketAddr,
    shared: Arc<NetShared>,
    accept: Option<JoinHandle<()>>,
}

impl NetServer {
    /// Binds, spawns the accept loop, and starts serving `server` over the
    /// wire.
    pub fn start(server: Server, cfg: NetServerConfig) -> std::io::Result<NetServer> {
        let listener = TcpListener::bind(&cfg.bind)?;
        listener.set_nonblocking(true)?;
        let local_addr = listener.local_addr()?;
        let shared = Arc::new(NetShared {
            server,
            cfg,
            shutting_down: AtomicBool::new(false),
            shutdown_requested: AtomicBool::new(false),
            in_flight: AtomicUsize::new(0),
            dedupe: Mutex::new(HashMap::new()),
            floors: Mutex::new(HashMap::new()),
            map: Mutex::new(None),
            conns: Mutex::new(Vec::new()),
        });
        let accept_shared = Arc::clone(&shared);
        let accept = std::thread::Builder::new()
            .name("fol-net-accept".into())
            .spawn(move || accept_loop(listener, accept_shared))
            .expect("spawn accept thread");
        Ok(NetServer {
            local_addr,
            shared,
            accept: Some(accept),
        })
    }

    /// The bound address (with the real port when `bind` asked for 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// The wrapped server's counters (same snapshot Health serves).
    pub fn stats(&self) -> fol_serve::StatsSnapshot {
        self.shared.server.stats()
    }

    /// True once a peer has asked for shutdown over the wire.
    pub fn shutdown_requested(&self) -> bool {
        self.shared.shutdown_requested.load(Ordering::Acquire)
    }

    /// Graceful drain: stop accepting, let every admitted request complete
    /// and be answered, close connections, then drain the serving layer.
    pub fn shutdown(mut self) -> ShutdownReport {
        self.shared.shutting_down.store(true, Ordering::Release);
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        let conns: Vec<JoinHandle<()>> = {
            let mut g = self
                .shared
                .conns
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            g.drain(..).collect()
        };
        for h in conns {
            let _ = h.join();
        }
        let shared = Arc::try_unwrap(self.shared)
            .unwrap_or_else(|_| panic!("a connection outlived the drain"));
        shared.server.shutdown()
    }
}

fn accept_loop(listener: TcpListener, shared: Arc<NetShared>) {
    let mut accepted: u64 = 0;
    while !shared.shutting_down.load(Ordering::Acquire) {
        match listener.accept() {
            Ok((stream, _)) => {
                let conn_shared = Arc::clone(&shared);
                let stream_index = accepted;
                accepted += 1;
                let handle = std::thread::Builder::new()
                    .name("fol-net-conn".into())
                    .spawn(move || serve_connection(stream, conn_shared, stream_index))
                    .expect("spawn connection thread");
                shared
                    .conns
                    .lock()
                    .unwrap_or_else(PoisonError::into_inner)
                    .push(handle);
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(2));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(2)),
        }
    }
}

/// The write half of one connection: the socket plus the (possibly
/// faulting) framed writer, shared between the writer thread and the
/// reader's direct replies (health, cached outcomes, refusals).
struct OutHalf {
    stream: TcpStream,
    writer: FaultedWriter,
}

impl OutHalf {
    fn send(&mut self, msg: &ServerMsg) -> std::io::Result<bool> {
        let framed = crate::wire::frame_bytes(&msg.encode());
        self.writer.write_frame(&mut self.stream, &framed)
    }

    /// Sends a burst of messages as one buffered write (one syscall in the
    /// common case), applying the fault plan per frame.
    fn send_many(&mut self, msgs: &[ServerMsg]) -> std::io::Result<bool> {
        use std::io::Write as _;
        let mut buf: Vec<u8> = Vec::new();
        let mut intact = true;
        for msg in msgs {
            let framed = crate::wire::frame_bytes(&msg.encode());
            intact = self.writer.render_frame(&framed, &mut buf)?;
            if !intact {
                break;
            }
        }
        self.stream.write_all(&buf)?;
        if !intact {
            let _ = self.stream.flush();
            let _ = self.stream.shutdown(std::net::Shutdown::Write);
        }
        Ok(intact)
    }
}

/// What the reader hands the writer thread for one admitted request.
struct InFlightItem {
    client_id: u64,
    map_epoch: u64,
    seq: u64,
    shard: u32,
    ticket: Ticket,
}

/// An [`InFlightItem`] whose ticket has been waited.
struct FinishedItem {
    client_id: u64,
    map_epoch: u64,
    seq: u64,
    shard: u32,
}

fn serve_connection(stream: TcpStream, shared: Arc<NetShared>, stream_index: u64) {
    let _ = stream.set_read_timeout(Some(shared.cfg.read_timeout));
    let _ = stream.set_write_timeout(Some(shared.cfg.write_timeout));
    let _ = stream.set_nodelay(true);
    let Ok(write_stream) = stream.try_clone() else {
        return;
    };
    let out = Arc::new(Mutex::new(OutHalf {
        stream: write_stream,
        writer: FaultedWriter::for_stream(shared.cfg.fault_plan.clone(), stream_index),
    }));
    let (tx, rx) = channel::<InFlightItem>();
    let writer_shared = Arc::clone(&shared);
    let writer_out = Arc::clone(&out);
    let writer = std::thread::Builder::new()
        .name("fol-net-writer".into())
        .spawn(move || writer_loop(rx, writer_out, writer_shared))
        .expect("spawn connection writer");
    reader_loop(stream, &shared, &out, tx);
    // Dropping the sender lets the writer drain what was admitted, answer
    // it, and exit.
    let _ = writer.join();
}

fn reader_loop(
    stream: TcpStream,
    shared: &Arc<NetShared>,
    out: &Arc<Mutex<OutHalf>>,
    tx: Sender<InFlightItem>,
) {
    // Buffered reads: a pipelined burst of small frames costs one syscall,
    // not two per frame. Timeout semantics survive — the buffer only holds
    // bytes the socket already delivered.
    let mut stream = std::io::BufReader::new(stream);
    // Floor cache: clients resend their acked floor on every submit, but it
    // only moves between call batches. Caching the last value seen on this
    // connection keeps the floors/dedupe locks off the per-frame hot path.
    let mut floor_cache: HashMap<u64, u64> = HashMap::new();
    loop {
        if shared.shutting_down.load(Ordering::Acquire) {
            return;
        }
        let payload = match read_frame(&mut stream, "wire request") {
            Ok(Some(p)) => p,
            Ok(None) => return, // clean EOF at a frame boundary
            Err(ReadFrameError::Io { error, mid_frame }) => {
                let timeout = matches!(error.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut);
                if timeout && !mid_frame {
                    continue; // idle tick; re-check the shutdown flag
                }
                if timeout && mid_frame {
                    // The peer stalled mid-frame past the read deadline:
                    // typed refusal, then hang up — never wait forever.
                    let mut g = out.lock().unwrap_or_else(PoisonError::into_inner);
                    let _ = g.send(&ServerMsg::WireRefused {
                        what: format!("read deadline mid-frame: {error}"),
                    });
                }
                return;
            }
            Err(ReadFrameError::Frame(defect)) => {
                // Torn / CRC-bad / malformed: the stream can no longer be
                // trusted to be in sync. Best-effort typed refusal, close.
                let mut g = out.lock().unwrap_or_else(PoisonError::into_inner);
                let _ = g.send(&ServerMsg::WireRefused {
                    what: defect.to_string(),
                });
                return;
            }
        };
        let msg = match ClientMsg::decode(&payload) {
            Ok(m) => m,
            Err(defect) => {
                let mut g = out.lock().unwrap_or_else(PoisonError::into_inner);
                let _ = g.send(&ServerMsg::WireRefused {
                    what: defect.to_string(),
                });
                return;
            }
        };
        match msg {
            ClientMsg::Health => {
                if !send_health(shared, out) {
                    return;
                }
            }
            ClientMsg::Shutdown => {
                shared.shutdown_requested.store(true, Ordering::Release);
                let mut g = out.lock().unwrap_or_else(PoisonError::into_inner);
                let _ = g.send(&ServerMsg::ShutdownAck);
            }
            msg @ (ClientMsg::InstallMap { .. }
            | ClientMsg::FreezeShard { .. }
            | ClientMsg::ExtractShard { .. }
            | ClientMsg::InstallShard { .. }
            | ClientMsg::GetMap) => {
                if !handle_admin(msg, shared, out) {
                    return;
                }
            }
            ClientMsg::Submit {
                client_id,
                seq,
                acked_floor,
                deadline_millis,
                shard,
                map_epoch,
                request,
            } => {
                // A pipelined client writes its whole burst in one go;
                // greedily drain every frame ALREADY COMPLETE in the read
                // buffer (never blocking) so the burst is admitted under
                // one queue lock and the coalescing window stays full.
                let mut group = vec![SubmitItem {
                    client_id,
                    seq,
                    acked_floor,
                    deadline_millis,
                    shard,
                    map_epoch,
                    request,
                }];
                let mut poison: Option<String> = None;
                loop {
                    let buf = stream.buffer();
                    if buf.len() < 8 {
                        break;
                    }
                    let len = u32::from_le_bytes(buf[0..4].try_into().unwrap()) as usize;
                    if len > crate::wire::MAX_FRAME || buf.len() < 8 + len {
                        break; // incomplete (or defective: the blocking read will type it)
                    }
                    let payload = match read_frame(&mut stream, "wire request") {
                        Ok(Some(p)) => p,
                        Ok(None) => break,
                        Err(ReadFrameError::Io { error, .. }) => {
                            poison = Some(format!("read mid-burst: {error}"));
                            break;
                        }
                        Err(ReadFrameError::Frame(defect)) => {
                            poison = Some(defect.to_string());
                            break;
                        }
                    };
                    match ClientMsg::decode(&payload) {
                        Ok(ClientMsg::Submit {
                            client_id,
                            seq,
                            acked_floor,
                            deadline_millis,
                            shard,
                            map_epoch,
                            request,
                        }) => group.push(SubmitItem {
                            client_id,
                            seq,
                            acked_floor,
                            deadline_millis,
                            shard,
                            map_epoch,
                            request,
                        }),
                        Ok(ClientMsg::Health) => {
                            if !send_health(shared, out) {
                                return;
                            }
                        }
                        Ok(ClientMsg::Shutdown) => {
                            shared.shutdown_requested.store(true, Ordering::Release);
                            let mut g = out.lock().unwrap_or_else(PoisonError::into_inner);
                            let _ = g.send(&ServerMsg::ShutdownAck);
                        }
                        Ok(admin) => {
                            if !handle_admin(admin, shared, out) {
                                return;
                            }
                        }
                        Err(defect) => {
                            poison = Some(defect.to_string());
                            break;
                        }
                    }
                }
                if !flush_group(group, shared, out, &mut floor_cache, &tx) {
                    return;
                }
                if let Some(what) = poison {
                    // The group was flushed; the defective remainder poisons
                    // the stream — typed refusal, close.
                    let mut g = out.lock().unwrap_or_else(PoisonError::into_inner);
                    let _ = g.send(&ServerMsg::WireRefused { what });
                    return;
                }
            }
        }
    }
}

/// Answers [`ClientMsg::Health`] straight from the server's counters —
/// never enters the queue, so it works under full saturation. Returns
/// `false` when the connection is dead.
fn send_health(shared: &NetShared, out: &Arc<Mutex<OutHalf>>) -> bool {
    let stats = shared.server.stats();
    let counters = vec![
        ("submitted".to_string(), stats.submitted),
        ("completed".to_string(), stats.completed),
        ("overloaded".to_string(), stats.overloaded),
        ("deadline_expired".to_string(), stats.deadline_expired),
        ("batches".to_string(), stats.batches),
        ("coalesced_requests".to_string(), stats.coalesced_requests),
        ("respawns".to_string(), stats.respawns),
        ("rot_detected".to_string(), stats.rot_detected),
        ("rot_repaired".to_string(), stats.rot_repaired),
        ("wal_appends".to_string(), stats.wal_appends),
        ("checkpoints_written".to_string(), stats.checkpoints_written),
        (
            "delta_checkpoints_written".to_string(),
            stats.delta_checkpoints_written,
        ),
        ("generations_skipped".to_string(), stats.generations_skipped),
        ("generations_pruned".to_string(), stats.generations_pruned),
        ("wal_segments_pruned".to_string(), stats.wal_segments_pruned),
        ("shard_epoch".to_string(), stats.shard_epoch),
        ("shards_owned".to_string(), stats.shards_owned),
        ("handoffs_in_flight".to_string(), stats.handoffs_in_flight),
        ("handoffs_out_flight".to_string(), stats.handoffs_out_flight),
        (
            "stale_epoch_refusals".to_string(),
            stats.stale_epoch_refusals,
        ),
        (
            "net.in_flight".to_string(),
            shared.in_flight.load(Ordering::Relaxed) as u64,
        ),
    ];
    let mut g = out.lock().unwrap_or_else(PoisonError::into_inner);
    g.send(&ServerMsg::Health { counters }).is_ok()
}

/// One decoded submit awaiting group admission.
struct SubmitItem {
    client_id: u64,
    seq: u64,
    acked_floor: u64,
    deadline_millis: Option<u64>,
    shard: u32,
    map_epoch: u64,
    request: fol_serve::Request,
}

/// Admits one decoded burst: dedupe (one lock), net-layer admission,
/// group submission to the serving layer (one queue lock), handoff to the
/// writer, and one coalesced write for every immediate reply (cached
/// outcomes, Busy, refusals). Returns `false` when the connection or the
/// writer is gone and the reader should exit.
fn flush_group(
    group: Vec<SubmitItem>,
    shared: &NetShared,
    out: &Arc<Mutex<OutHalf>>,
    floor_cache: &mut HashMap<u64, u64>,
    tx: &Sender<InFlightItem>,
) -> bool {
    let floors: Vec<(u64, u64)> = group
        .iter()
        .map(|it| (it.client_id, it.acked_floor))
        .collect();
    let mut replies: Vec<ServerMsg> = Vec::new();
    // Dedupe: a retry of something already seen must not re-execute. The
    // InFlight markers for the whole burst are claimed under ONE lock
    // acquisition and rolled back for whatever admission refuses.
    let mut fresh: Vec<SubmitItem> = Vec::with_capacity(group.len());
    {
        let mut dedupe = shared.dedupe.lock().unwrap_or_else(PoisonError::into_inner);
        for it in group {
            match dedupe.get(&(it.client_id, it.map_epoch, it.seq)) {
                Some(Dedupe::Done { outcome, .. }) => replies.push(ServerMsg::Result {
                    seq: it.seq,
                    outcome: outcome.clone(),
                }),
                Some(Dedupe::InFlight) => replies.push(ServerMsg::Result {
                    seq: it.seq,
                    outcome: WireOutcome::Busy,
                }),
                None => {
                    dedupe.insert((it.client_id, it.map_epoch, it.seq), Dedupe::InFlight);
                    fresh.push(it);
                }
            }
        }
    }
    // Prune strictly AFTER the dedupe pass over the whole group: a retry
    // and the next call's submit (whose floor covers the retried seq) can
    // share one burst, and pruning first would evict the cached outcome
    // the retry is about to replay — re-executing an acknowledged request.
    // Pruning late is safe: a floor only ever covers seqs whose outcome
    // the client already resolved, so nothing still needed is removed.
    // The floor cache keeps the floors/dedupe locks off bursts where the
    // floor did not move.
    for (client_id, acked_floor) in floors {
        let floor = floor_cache.entry(client_id).or_insert(0);
        if acked_floor > *floor {
            *floor = acked_floor;
            shared.prune(client_id, acked_floor);
        }
    }
    // Shard-gate admission, then net-layer admission: a request stamped
    // with the wrong epoch or routed to a shard this node does not own is
    // refused typed BEFORE the in-flight bound or the queue see it — and
    // its dedupe marker is rolled back, so the client's re-route under the
    // new map executes fresh.
    let mut rollback: Vec<(u64, u64, u64)> = Vec::new();
    let mut meta: Vec<(u64, u64, u64, u32)> = Vec::with_capacity(fresh.len());
    let mut items: Vec<(fol_serve::Request, Priority, Option<Duration>)> =
        Vec::with_capacity(fresh.len());
    let gate = shared.server.shard_gate();
    for it in fresh {
        if let Err(e) = gate.admit(it.shard, it.map_epoch) {
            rollback.push((it.client_id, it.map_epoch, it.seq));
            replies.push(ServerMsg::Result {
                seq: it.seq,
                outcome: WireOutcome::Err(e),
            });
            continue;
        }
        let admitted = shared
            .in_flight
            .fetch_update(Ordering::AcqRel, Ordering::Acquire, |n| {
                (n < shared.cfg.max_in_flight).then_some(n + 1)
            })
            .is_ok();
        if admitted {
            meta.push((it.client_id, it.map_epoch, it.seq, it.shard));
            items.push((
                it.request,
                Priority::Normal,
                it.deadline_millis.map(Duration::from_millis),
            ));
        } else {
            rollback.push((it.client_id, it.map_epoch, it.seq));
            replies.push(ServerMsg::Result {
                seq: it.seq,
                outcome: WireOutcome::Err(ServeError::Overloaded {
                    capacity: shared.cfg.max_in_flight,
                }),
            });
        }
    }
    let outcomes = shared.server.submit_many_with(items);
    let mut writer_gone = false;
    for (&(client_id, map_epoch, seq, shard), outcome) in meta.iter().zip(outcomes) {
        match outcome {
            Ok(ticket) if !writer_gone => {
                if tx
                    .send(InFlightItem {
                        client_id,
                        map_epoch,
                        seq,
                        shard,
                        ticket,
                    })
                    .is_err()
                {
                    writer_gone = true;
                    shared.in_flight.fetch_sub(1, Ordering::AcqRel);
                    rollback.push((client_id, map_epoch, seq));
                }
            }
            // Writer already gone: the ticket is dropped (the worker still
            // executes it), the slot and marker are released.
            Ok(_ticket) => {
                shared.in_flight.fetch_sub(1, Ordering::AcqRel);
                rollback.push((client_id, map_epoch, seq));
            }
            Err(e) => {
                shared.in_flight.fetch_sub(1, Ordering::AcqRel);
                rollback.push((client_id, map_epoch, seq));
                replies.push(ServerMsg::Result {
                    seq,
                    outcome: WireOutcome::Err(e),
                });
            }
        }
    }
    if !rollback.is_empty() {
        let mut dedupe = shared.dedupe.lock().unwrap_or_else(PoisonError::into_inner);
        for key in rollback {
            dedupe.remove(&key);
        }
    }
    if !replies.is_empty() {
        let mut g = out.lock().unwrap_or_else(PoisonError::into_inner);
        if g.send_many(&replies).is_err() {
            return false;
        }
    }
    !writer_gone
}

/// Answers one administrative (rebalance-coordinator) message. Admin ops
/// bypass the submit path: they are idempotent, digest-checked, and
/// answered with [`ServerMsg::AdminOk`] / [`ServerMsg::AdminErr`] verdicts
/// rather than per-seq results. Returns `false` when the connection died.
fn handle_admin(msg: ClientMsg, shared: &NetShared, out: &Arc<Mutex<OutHalf>>) -> bool {
    let reply = match msg {
        ClientMsg::InstallMap { map, you_are } => {
            if (you_are as usize) < map.nodes.len() {
                shared
                    .server
                    .shard_gate()
                    .install(map.assignment_for(you_are as usize));
                *shared.map.lock().unwrap_or_else(PoisonError::into_inner) = Some(map);
                ServerMsg::AdminOk
            } else {
                ServerMsg::AdminErr {
                    what: format!(
                        "install map: you_are {you_are} out of range of {} node(s)",
                        map.nodes.len()
                    ),
                }
            }
        }
        ClientMsg::FreezeShard { shard, freeze } => {
            let gate = shared.server.shard_gate();
            if gate.epoch() == 0 {
                ServerMsg::AdminErr {
                    what: "freeze: no shard map installed".into(),
                }
            } else {
                if freeze {
                    gate.freeze(shard);
                } else {
                    gate.unfreeze(shard);
                }
                ServerMsg::AdminOk
            }
        }
        ClientMsg::ExtractShard { shard } => extract_shard(shared, shard),
        ClientMsg::InstallShard { image } => install_shard(shared, &image),
        ClientMsg::GetMap => ServerMsg::Map {
            map: shared
                .map
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .clone(),
        },
        _ => unreachable!("handle_admin is only called with admin messages"),
    };
    let mut g = out.lock().unwrap_or_else(PoisonError::into_inner);
    g.send(&reply).is_ok()
}

/// The workload classes a handoff image carries, with their section names.
const HANDOFF_CLASSES: [(&str, WorkloadClass); 3] = [
    ("chain", WorkloadClass::Chain),
    ("oa", WorkloadClass::OpenAddr),
    ("bst", WorkloadClass::Bst),
];

/// Submits one request to the serving layer and waits its outcome —
/// the admin path's synchronous door into the worker pool.
fn serve_call(shared: &NetShared, request: Request) -> Result<Response, ServeError> {
    shared.server.submit(request)?.wait()
}

/// Builds the handoff image of a frozen shard: wait for in-flight wire
/// work to drain, then pull each class's keys restricted to the shard and
/// record their content digests.
fn extract_shard(shared: &NetShared, shard: u32) -> ServerMsg {
    let gate = shared.server.shard_gate();
    let epoch = gate.epoch();
    if epoch == 0 {
        return ServerMsg::AdminErr {
            what: "extract: no shard map installed".into(),
        };
    }
    if gate.owns(shard) {
        // owns() is "owned and not frozen": extraction of a live shard
        // would race concurrent writes and ship a torn image.
        return ServerMsg::AdminErr {
            what: format!("extract: shard {shard} is not frozen"),
        };
    }
    let shards = match shared
        .map
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .as_ref()
    {
        Some(m) => m.shards,
        None => {
            return ServerMsg::AdminErr {
                what: "extract: no shard map installed".into(),
            }
        }
    };
    // Drain: the freeze already refuses new writes for the shard; wait for
    // whatever the wire admitted earlier to finish so the image is the
    // complete acknowledged state.
    let deadline = Instant::now() + Duration::from_secs(10);
    while shared.in_flight.load(Ordering::Acquire) != 0 {
        if Instant::now() >= deadline {
            return ServerMsg::AdminErr {
                what: format!(
                    "extract: drain timed out with {} wire request(s) in flight",
                    shared.in_flight.load(Ordering::Acquire)
                ),
            };
        }
        std::thread::sleep(Duration::from_millis(1));
    }
    let _mark = gate.begin_handoff_out();
    let mut sections = Vec::with_capacity(HANDOFF_CLASSES.len());
    for (name, class) in HANDOFF_CLASSES {
        let keys = match serve_call(
            shared,
            Request::ShardKeys {
                class,
                shards,
                shard,
            },
        ) {
            Ok(Response::Keys { keys }) => keys,
            Ok(other) => {
                return ServerMsg::AdminErr {
                    what: format!("extract: shard-keys answered with {other:?}"),
                }
            }
            Err(e) => {
                return ServerMsg::AdminErr {
                    what: format!("extract: {e}"),
                }
            }
        };
        sections.push(HandoffSection {
            class: name.to_string(),
            digest: keys_digest(&keys),
            keys,
        });
    }
    // Ship the shard's cached request outcomes with it: a client whose
    // request completed here can retry against the new owner (still
    // stamped with the epoch it was admitted under) and get the cached
    // outcome replayed instead of a WrongEpoch refusal re-executing it.
    // Only Done entries ship — the drain above guarantees nothing for this
    // shard is still InFlight. Sorted for a deterministic image.
    let mut dedupe: Vec<HandoffDedupe> = {
        let g = shared.dedupe.lock().unwrap_or_else(PoisonError::into_inner);
        g.iter()
            .filter_map(|(&(client_id, epoch, seq), entry)| match entry {
                Dedupe::Done { shard: s, outcome } if *s == shard => Some(HandoffDedupe {
                    client_id,
                    epoch,
                    seq,
                    outcome: outcome.encode(),
                }),
                _ => None,
            })
            .collect()
    };
    dedupe.sort_by_key(|r| (r.client_id, r.epoch, r.seq));
    let image = HandoffImage {
        shard,
        shards,
        source_epoch: epoch,
        wal_floor: shared.server.stats().wal_appends,
        sections,
        dedupe,
    };
    ServerMsg::ShardImage {
        image: image.encode(),
    }
}

/// Installs a handoff image: decode and digest-verify the bytes, then per
/// class either skip (already installed — the idempotent retry path),
/// insert into an empty slice, or refuse a partially-populated one typed.
/// The final per-class digest re-check is what makes the `AdminOk` a
/// *digest-verified* install ack.
fn install_shard(shared: &NetShared, bytes: &[u8]) -> ServerMsg {
    let image = match HandoffImage::decode(bytes) {
        Ok(i) => i,
        Err(e) => {
            return ServerMsg::AdminErr {
                what: format!("install: {e}"),
            }
        }
    };
    if let Err(e) = image.verify(keys_digest) {
        return ServerMsg::AdminErr {
            what: format!("install: {e}"),
        };
    }
    let gate = shared.server.shard_gate();
    let _mark = gate.begin_handoff_in();
    for section in &image.sections {
        let Some(&(_, class)) = HANDOFF_CLASSES.iter().find(|(n, _)| *n == section.class) else {
            return ServerMsg::AdminErr {
                what: format!("install: unknown section class '{}'", section.class),
            };
        };
        let shard_digest = |shared: &NetShared| match serve_call(
            shared,
            Request::ShardDigest {
                class,
                shards: image.shards,
                shard: image.shard,
            },
        ) {
            Ok(Response::ClassDigest { digest, count }) => Ok((digest, count)),
            Ok(other) => Err(format!("install: shard-digest answered with {other:?}")),
            Err(e) => Err(format!("install: {e}")),
        };
        let (digest, count) = match shard_digest(shared) {
            Ok(v) => v,
            Err(what) => return ServerMsg::AdminErr { what },
        };
        if count == section.keys.len() as u64 && digest == section.digest {
            continue; // already installed: a retried install is a no-op
        }
        if count != 0 {
            return ServerMsg::AdminErr {
                what: format!(
                    "install: shard {} class '{}' already holds {count} key(s) \
                     with digest {digest:#018x}; refusing to merge",
                    image.shard, section.class
                ),
            };
        }
        if section.keys.is_empty() {
            continue;
        }
        let insert = match class {
            WorkloadClass::Chain => Request::ChainInsert {
                keys: section.keys.clone(),
            },
            WorkloadClass::OpenAddr => Request::OaInsert {
                keys: section.keys.clone(),
            },
            WorkloadClass::Bst => Request::BstInsert {
                keys: section.keys.clone(),
            },
        };
        if let Err(e) = serve_call(shared, insert) {
            return ServerMsg::AdminErr {
                what: format!("install: {e}"),
            };
        }
        // End-to-end proof: what the structures now hold hashes to what
        // the source extracted.
        match shard_digest(shared) {
            Ok((d, c)) if d == section.digest && c == section.keys.len() as u64 => {}
            Ok((d, c)) => {
                return ServerMsg::AdminErr {
                    what: format!(
                        "install: post-install digest mismatch for shard {} class '{}': \
                         got {d:#018x}/{c}, image records {:#018x}/{}",
                        image.shard,
                        section.class,
                        section.digest,
                        section.keys.len()
                    ),
                }
            }
            Err(what) => return ServerMsg::AdminErr { what },
        }
    }
    // Install the shipped dedupe records so a client's retry of a request
    // that completed on the old owner replays its cached outcome here.
    // Decode first (a record whose bytes do not parse is a typed refusal,
    // the dedupe analogue of the section digest check), then insert under
    // one lock. Present entries are kept — a retried install is a no-op,
    // and an outcome this node recorded itself is never overwritten.
    let mut decoded = Vec::with_capacity(image.dedupe.len());
    for rec in &image.dedupe {
        match WireOutcome::decode(&rec.outcome) {
            Ok(outcome) => decoded.push(((rec.client_id, rec.epoch, rec.seq), outcome)),
            Err(e) => {
                return ServerMsg::AdminErr {
                    what: format!(
                        "install: dedupe record (client {}, epoch {}, seq {}): {e}",
                        rec.client_id, rec.epoch, rec.seq
                    ),
                }
            }
        }
    }
    {
        let mut dedupe = shared.dedupe.lock().unwrap_or_else(PoisonError::into_inner);
        for (key, outcome) in decoded {
            dedupe.entry(key).or_insert(Dedupe::Done {
                shard: image.shard,
                outcome,
            });
        }
    }
    ServerMsg::AdminOk
}

/// True when `outcome` is safe to replay verbatim to a retry: successes
/// (the effect is committed; re-executing would double-apply) and
/// admission rejections (deterministic verdicts). Transient failures —
/// overload, a lost worker, a queue-deadline shed — are *not* cached, so a
/// retry re-executes them.
fn cacheable(outcome: &Result<Response, ServeError>) -> bool {
    match outcome {
        Ok(_) => true,
        Err(ServeError::Rejected { .. }) => true,
        Err(_) => false,
    }
}

fn writer_loop(rx: Receiver<InFlightItem>, out: Arc<Mutex<OutHalf>>, shared: Arc<NetShared>) {
    // Tickets arrive in submission order; waiting them in order preserves
    // response order per connection without blocking the reader. Responses
    // are coalesced: after the head-of-line ticket resolves, every item the
    // reader has already queued is resolved too and the whole run goes out
    // as one write. A lone request (the latency-sensitive case) finds the
    // channel empty and flushes immediately.
    let mut head = rx.recv();
    while let Ok(first) = head {
        // Wait the whole run of available tickets lock-free first, then
        // commit every outcome to the dedupe table under ONE lock and
        // release the admission slots with ONE atomic sub. The dedupe
        // records still land BEFORE the response write: if the write dies
        // with the connection, a retry on a fresh connection finds the
        // committed outcome instead of re-executing it.
        let mut items = vec![head_outcome(first)];
        while let Ok(item) = rx.try_recv() {
            items.push(head_outcome(item));
        }
        {
            let mut dedupe = shared.dedupe.lock().unwrap_or_else(PoisonError::into_inner);
            for (item, outcome) in &items {
                if cacheable(outcome) {
                    dedupe.insert(
                        (item.client_id, item.map_epoch, item.seq),
                        Dedupe::Done {
                            shard: item.shard,
                            outcome: match outcome {
                                Ok(r) => WireOutcome::Ok(r.clone()),
                                Err(e) => WireOutcome::Err(e.clone()),
                            },
                        },
                    );
                } else {
                    dedupe.remove(&(item.client_id, item.map_epoch, item.seq));
                }
            }
        }
        shared.in_flight.fetch_sub(items.len(), Ordering::AcqRel);
        let msgs: Vec<ServerMsg> = items
            .into_iter()
            .map(|(item, outcome)| ServerMsg::Result {
                seq: item.seq,
                outcome: match outcome {
                    Ok(r) => WireOutcome::Ok(r),
                    Err(e) => WireOutcome::Err(e),
                },
            })
            .collect();
        {
            let mut g = out.lock().unwrap_or_else(PoisonError::into_inner);
            // A failed write means the client is gone; keep draining so
            // every admitted ticket is waited (and cached) before the
            // writer exits.
            let _ = g.send_many(&msgs);
        }
        head = rx.recv();
    }
}

/// Waits one admitted request's ticket (tickets resolve in submission
/// order, so after the head of a run resolves the rest are typically
/// already done).
fn head_outcome(item: InFlightItem) -> (FinishedItem, Result<Response, ServeError>) {
    let InFlightItem {
        client_id,
        map_epoch,
        seq,
        shard,
        ticket,
    } = item;
    (
        FinishedItem {
            client_id,
            map_epoch,
            seq,
            shard,
        },
        ticket.wait(),
    )
}
