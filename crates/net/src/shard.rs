//! The cluster shard map: a consistent-hash ring with virtual nodes, and
//! the epoch-stamped router clients use to reach the owner of every key.
//!
//! The key space is partitioned into a **fixed** number of shards by
//! [`shard_of`] (re-exported from `fol-serve`, so router, gate and
//! extraction all agree). The *ring* assigns shards to server processes:
//! every node projects [`ShardMap::vnodes`] virtual points onto a `u64`
//! ring, and each shard walks clockwise from its own point collecting the
//! first [`ShardMap::replication`] distinct nodes — its replica group,
//! primary first. Fixed shards over a ring of vnodes is the classic
//! consistent-hashing construction (Chord-style): adding or removing a node
//! only reassigns the shards whose successor walk changed, which is the
//! *minimal movement* property the rebalance protocol depends on — every
//! other shard keeps its owner and its data never crosses the network.
//!
//! A map is versioned by its [`ShardMap::epoch`], bumped on every
//! membership change. Requests carry the epoch they were routed under;
//! servers refuse mismatches typed ([`fol_serve::ServeError::WrongEpoch`])
//! so a client that raced a rebalance refreshes its map and retries against
//! the new owner instead of silently writing to the old one.
//!
//! The assignment is **not** shipped on the wire: encode/decode carry only
//! the inputs (epoch, geometry, node list) and the receiver recomputes the
//! walk, so a corrupted or adversarial peer cannot smuggle an assignment
//! that disagrees with the ring.

use crate::client::{NetClient, NetClientConfig};
use crate::NetError;
use fol_persist::frame::{Dec, Enc};
use fol_persist::PersistError;
use fol_serve::{Request, Response, ServeError, WorkloadClass};
use fol_vm::Word;

pub use fol_serve::{shard_of, NO_SHARD};

fn fnv1a(s: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in s.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

fn mix(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The versioned, epoch-stamped shard map: which server process owns (and
/// replicates) each of the fixed key-space shards.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ShardMap {
    /// Version of this map; bumped on every membership change. Requests
    /// are stamped with the epoch they were routed under.
    pub epoch: u64,
    /// Fixed number of key-space shards ([`shard_of`] partitions).
    pub shards: u32,
    /// Virtual ring points per node; more vnodes → better balance.
    pub vnodes: u32,
    /// Replica group size per shard (1 = no replication).
    pub replication: u32,
    /// Member addresses, in join order. Index into this list is the node
    /// id the assignment speaks.
    pub nodes: Vec<String>,
    assignment: Vec<Vec<u32>>,
}

impl ShardMap {
    /// Builds the epoch-1 map for an initial membership.
    ///
    /// # Panics
    ///
    /// Panics on an empty node list or zero shards/vnodes/replication —
    /// configuration errors, not recoverable state.
    pub fn build(nodes: Vec<String>, shards: u32, vnodes: u32, replication: u32) -> Self {
        assert!(!nodes.is_empty(), "a shard map needs at least one node");
        assert!(shards > 0 && vnodes > 0 && replication > 0);
        let assignment = assign(&nodes, shards, vnodes, replication);
        ShardMap {
            epoch: 1,
            shards,
            vnodes,
            replication,
            nodes,
            assignment,
        }
    }

    /// The replica group of `shard`, primary first.
    pub fn replicas(&self, shard: u32) -> &[u32] {
        &self.assignment[shard as usize]
    }

    /// The primary owner (node index) of `shard`.
    pub fn owner(&self, shard: u32) -> usize {
        self.assignment[shard as usize][0] as usize
    }

    /// The primary owner's address.
    pub fn owner_addr(&self, shard: u32) -> &str {
        &self.nodes[self.owner(shard)]
    }

    /// Routes a key: which shard it lives in under this map's geometry.
    pub fn shard_of_key(&self, key: Word) -> u32 {
        shard_of(key, self.shards)
    }

    /// The shards whose replica groups include node `node`.
    pub fn shards_of_node(&self, node: usize) -> Vec<u32> {
        (0..self.shards)
            .filter(|&s| self.replicas(s).contains(&(node as u32)))
            .collect()
    }

    /// The next epoch's map after `addr` joins. Ring points of surviving
    /// nodes are unchanged, so only the shards whose successor walk now
    /// meets the new node move.
    pub fn with_node_added(&self, addr: impl Into<String>) -> Self {
        let mut nodes = self.nodes.clone();
        nodes.push(addr.into());
        let assignment = assign(&nodes, self.shards, self.vnodes, self.replication);
        ShardMap {
            epoch: self.epoch + 1,
            nodes,
            assignment,
            ..*self
        }
    }

    /// The next epoch's map after `addr` is evicted.
    ///
    /// # Panics
    ///
    /// Panics when `addr` is not a member or is the last one.
    pub fn without_node(&self, addr: &str) -> Self {
        let nodes: Vec<String> = self.nodes.iter().filter(|n| *n != addr).cloned().collect();
        assert!(
            nodes.len() == self.nodes.len() - 1,
            "evicting a non-member: {addr}"
        );
        assert!(!nodes.is_empty(), "cannot evict the last node");
        let assignment = assign(&nodes, self.shards, self.vnodes, self.replication);
        ShardMap {
            epoch: self.epoch + 1,
            nodes,
            assignment,
            ..*self
        }
    }

    /// The shards whose **primary** owner differs between `self` and `next`
    /// (compared by address, so node reindexing does not read as movement):
    /// `(shard, from_addr, to_addr)` — exactly the handoffs a rebalance to
    /// `next` must perform.
    pub fn moved_shards(&self, next: &ShardMap) -> Vec<(u32, String, String)> {
        assert_eq!(self.shards, next.shards, "maps partition the same space");
        (0..self.shards)
            .filter_map(|s| {
                let from = self.owner_addr(s);
                let to = next.owner_addr(s);
                (from != to).then(|| (s, from.to_string(), to.to_string()))
            })
            .collect()
    }

    /// This node's slice of the map, in the form the serve-side gate
    /// installs: every shard whose replica group contains `node`.
    pub fn assignment_for(&self, node: usize) -> fol_serve::ShardAssignment {
        fol_serve::ShardAssignment {
            epoch: self.epoch,
            shards: self.shards,
            owned: self.shards_of_node(node),
        }
    }

    /// Serializes the map (inputs only; the assignment is recomputed on
    /// decode so a corrupt peer cannot ship a ring-inconsistent one).
    pub fn encode(&self) -> Vec<u8> {
        let mut e = Enc::new();
        e.u64(self.epoch);
        e.u32(self.shards);
        e.u32(self.vnodes);
        e.u32(self.replication);
        e.u32(self.nodes.len() as u32);
        for n in &self.nodes {
            e.str(n);
        }
        e.into_bytes()
    }

    /// Decodes and re-derives a map; every defect is typed.
    pub fn decode(bytes: &[u8]) -> Result<Self, PersistError> {
        let mut d = Dec::new(bytes);
        let epoch = d.u64("map.epoch")?;
        let shards = d.u32("map.shards")?;
        let vnodes = d.u32("map.vnodes")?;
        let replication = d.u32("map.replication")?;
        let n = d.u32("map.nodes.len")? as usize;
        if shards == 0 || vnodes == 0 || replication == 0 || n == 0 {
            return Err(PersistError::Malformed {
                what: "shard map: zero geometry or empty membership".into(),
            });
        }
        let mut nodes = Vec::with_capacity(n.min(1024));
        for _ in 0..n {
            nodes.push(d.str("map.node")?);
        }
        d.finish("shard map")?;
        let assignment = assign(&nodes, shards, vnodes, replication);
        Ok(ShardMap {
            epoch,
            shards,
            vnodes,
            replication,
            nodes,
            assignment,
        })
    }
}

/// The successor-walk assignment: ring points per node, shards walk to
/// their first `replication` distinct successors.
fn assign(nodes: &[String], shards: u32, vnodes: u32, replication: u32) -> Vec<Vec<u32>> {
    let mut ring: Vec<(u64, u32)> = Vec::with_capacity(nodes.len() * vnodes as usize);
    for (i, addr) in nodes.iter().enumerate() {
        let base = fnv1a(addr);
        for v in 0..vnodes as u64 {
            ring.push((mix(base ^ mix(v)), i as u32));
        }
    }
    // Ties (astronomically unlikely) break by node index: deterministic.
    ring.sort_unstable();
    let want = (replication as usize).min(nodes.len());
    (0..shards)
        .map(|s| {
            let point = mix(0x5AAD_F00D ^ s as u64);
            let start = ring.partition_point(|&(p, _)| p < point);
            let mut group = Vec::with_capacity(want);
            for k in 0..ring.len() {
                let node = ring[(start + k) % ring.len()].1;
                if !group.contains(&node) {
                    group.push(node);
                    if group.len() == want {
                        break;
                    }
                }
            }
            group
        })
        .collect()
}

/// How many attempts [`ClusterClient::call_many`] makes per request across
/// map refreshes before giving up with the last typed error.
const ROUTE_ATTEMPTS: usize = 3;

/// A map-aware cluster client: routes each request's key to the owning
/// replica group, fans writes to every live replica, returns the primary's
/// outcome, refreshes the map and retries on typed `WrongEpoch`/`NotOwner`
/// refusals, and evicts (strikes out) unresponsive or digest-minority
/// nodes — scoped: an eviction removes one node from its groups, the rest
/// of the cluster keeps serving.
pub struct ClusterClient {
    cfg: NetClientConfig,
    map: ShardMap,
    conns: Vec<Option<NetClient>>,
    strikes: Vec<u32>,
    evicted: Vec<bool>,
    max_strikes: u32,
    /// Times a typed stale-map refusal forced a refresh-and-retry.
    pub stale_epoch_retries: u64,
}

impl ClusterClient {
    /// A client over `map`, striking out a node after `max_strikes`
    /// consecutive all-dead exchanges (0 = never).
    pub fn new(map: ShardMap, cfg: NetClientConfig, max_strikes: u32) -> Self {
        let n = map.nodes.len();
        ClusterClient {
            cfg,
            map,
            conns: (0..n).map(|_| None).collect(),
            strikes: vec![0; n],
            evicted: vec![false; n],
            max_strikes,
            stale_epoch_retries: 0,
        }
    }

    /// The map currently routed under.
    pub fn map(&self) -> &ShardMap {
        &self.map
    }

    /// Addresses currently struck out.
    pub fn evicted_nodes(&self) -> Vec<String> {
        self.map
            .nodes
            .iter()
            .enumerate()
            .filter(|(i, _)| self.evicted[*i])
            .map(|(_, a)| a.clone())
            .collect()
    }

    /// Adopts `map`, reconciling per-node state by address (a surviving
    /// node keeps its connection and strike count across reindexing).
    pub fn install_map(&mut self, map: ShardMap) {
        let mut conns: Vec<Option<NetClient>> = (0..map.nodes.len()).map(|_| None).collect();
        let mut strikes = vec![0; map.nodes.len()];
        let mut evicted = vec![false; map.nodes.len()];
        for (new_i, addr) in map.nodes.iter().enumerate() {
            if let Some(old_i) = self.map.nodes.iter().position(|a| a == addr) {
                conns[new_i] = self.conns[old_i].take();
                strikes[new_i] = self.strikes[old_i];
                evicted[new_i] = self.evicted[old_i];
            }
        }
        self.map = map;
        self.conns = conns;
        self.strikes = strikes;
        self.evicted = evicted;
    }

    fn conn(&mut self, node: usize) -> &mut NetClient {
        if self.conns[node].is_none() {
            self.conns[node] = Some(NetClient::new(
                self.map.nodes[node].clone(),
                self.cfg.clone(),
            ));
        }
        self.conns[node].as_mut().unwrap()
    }

    /// Fetches the map from every reachable node and adopts the highest
    /// epoch seen. Errors only when no node answered.
    pub fn refresh_map(&mut self) -> Result<u64, NetError> {
        let mut best: Option<ShardMap> = None;
        let mut last_err = None;
        for node in 0..self.map.nodes.len() {
            if self.evicted[node] {
                continue;
            }
            match self.conn(node).fetch_map() {
                Ok(Some(m)) => {
                    if best.as_ref().is_none_or(|b| m.epoch > b.epoch) {
                        best = Some(m);
                    }
                }
                Ok(None) => {}
                Err(e) => last_err = Some(e),
            }
        }
        match best {
            Some(m) => {
                let epoch = m.epoch;
                if epoch > self.map.epoch {
                    self.install_map(m);
                }
                Ok(epoch)
            }
            None => Err(last_err.unwrap_or(NetError::NoQuorum { live: 0, need: 1 })),
        }
    }

    /// The routing shard of a request: its first key. Multi-key requests
    /// must be pre-partitioned so all keys share a shard (debug-asserted);
    /// keyless control requests route `NO_SHARD` to the primary of shard 0.
    fn route(&self, request: &Request) -> (u32, usize) {
        let keys: &[Word] = match request {
            Request::ChainInsert { keys }
            | Request::OaInsert { keys }
            | Request::OaLookup { keys }
            | Request::BstInsert { keys } => keys,
            _ => &[],
        };
        match keys.first() {
            Some(&k) => {
                let shard = self.map.shard_of_key(k);
                debug_assert!(
                    keys.iter().all(|&k| self.map.shard_of_key(k) == shard),
                    "a routed request's keys must share one shard"
                );
                (shard, self.map.owner(shard))
            }
            None => (NO_SHARD, self.map.owner(0)),
        }
    }

    /// Routes and executes a batch: requests are grouped per owning
    /// primary, fanned to every live replica of their shard's group, and
    /// answered with the primary's outcome once a majority of the group
    /// acknowledged. Typed `WrongEpoch`/`NotOwner` refusals trigger a map
    /// refresh and re-route (up to 3 attempts); an all-dead node draws a
    /// strike and, past `max_strikes`, is evicted from its groups.
    ///
    /// The per-node exchanges of one attempt run **concurrently** (one
    /// scoped worker per involved node, each owning that node's
    /// connection): sharding's whole throughput case is that independent
    /// nodes mutate in parallel, and a router that visits them one after
    /// another would serialize the cluster back into a single pipe. A
    /// node serving several groups still sees its batches pipelined on
    /// its one connection, in group order.
    pub fn call_many(&mut self, requests: &[Request]) -> Vec<Result<Response, NetError>> {
        struct Group {
            primary: usize,
            idxs: Vec<usize>,
            tagged: Vec<(Request, u32)>,
            members: Vec<usize>,
            quorum: usize,
        }
        let mut out: Vec<Option<Result<Response, NetError>>> = vec![None; requests.len()];
        for _attempt in 0..ROUTE_ATTEMPTS {
            // Group unresolved requests by primary owner under the current map.
            let mut by_primary: Vec<(usize, Vec<usize>)> = Vec::new();
            for (i, r) in requests.iter().enumerate() {
                if out[i].is_some() {
                    continue;
                }
                let (_, primary) = self.route(r);
                match by_primary.iter_mut().find(|(p, _)| *p == primary) {
                    Some((_, v)) => v.push(i),
                    None => by_primary.push((primary, vec![i])),
                }
            }
            if by_primary.is_empty() {
                break;
            }
            let epoch = self.map.epoch;
            let mut saw_stale = false;
            let mut groups: Vec<Group> = Vec::with_capacity(by_primary.len());
            for (primary, idxs) in by_primary {
                let tagged: Vec<(Request, u32)> = idxs
                    .iter()
                    .map(|&i| (requests[i].clone(), self.route(&requests[i]).0))
                    .collect();
                // Every distinct replica of every routed shard, primary first.
                let mut members: Vec<usize> = vec![primary];
                for (_, shard) in &tagged {
                    if *shard == NO_SHARD {
                        continue;
                    }
                    for &r in self.map.replicas(*shard) {
                        let r = r as usize;
                        if !members.contains(&r) && !self.evicted[r] {
                            members.push(r);
                        }
                    }
                }
                let quorum = members.len() / 2 + 1;
                groups.push(Group {
                    primary,
                    idxs,
                    tagged,
                    members,
                    quorum,
                });
            }
            // One worker per involved node; each runs its groups' batches
            // on the node's own (temporarily taken) connection.
            let mut jobs: Vec<(usize, Vec<usize>)> = Vec::new();
            for (g, grp) in groups.iter().enumerate() {
                for &m in &grp.members {
                    if self.evicted[m] {
                        continue;
                    }
                    match jobs.iter_mut().find(|(n, _)| *n == m) {
                        Some((_, v)) => v.push(g),
                        None => jobs.push((m, vec![g])),
                    }
                }
            }
            for &(n, _) in &jobs {
                self.conn(n); // ensure the connection exists before taking it
            }
            let mut workers: Vec<(usize, NetClient, Vec<usize>)> = jobs
                .into_iter()
                .map(|(n, gs)| (n, self.conns[n].take().expect("conn ensured"), gs))
                .collect();
            let groups_ref = &groups;
            // Per node: the (group index, per-request results) of every
            // batch that node exchanged this attempt.
            type NodeExchanges = Vec<(usize, Vec<Result<Response, NetError>>)>;
            let exchanged: Vec<(usize, NodeExchanges)> = std::thread::scope(|scope| {
                let handles: Vec<_> = workers
                    .iter_mut()
                    .map(|(n, client, gs)| {
                        let n = *n;
                        let gs = gs.clone();
                        scope.spawn(move || {
                            let res: Vec<_> = gs
                                .iter()
                                .map(|&g| {
                                    (g, client.call_many_tagged(&groups_ref[g].tagged, epoch))
                                })
                                .collect();
                            (n, res)
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("cluster fan-out worker"))
                    .collect()
            });
            for (n, client, _) in workers {
                self.conns[n] = Some(client);
            }
            let results_of = |node: usize, g: usize| -> Option<Vec<Result<Response, NetError>>> {
                exchanged
                    .iter()
                    .find(|(n, _)| *n == node)
                    .and_then(|(_, per_g)| per_g.iter().find(|(gi, _)| *gi == g))
                    .map(|(_, rs)| rs.clone())
            };
            for (g, grp) in groups.iter().enumerate() {
                let Group {
                    primary,
                    idxs,
                    members,
                    quorum,
                    ..
                } = grp;
                let (primary, quorum) = (*primary, *quorum);
                let mut primary_results: Option<Vec<Result<Response, NetError>>> = None;
                let mut acks = vec![0usize; idxs.len()];
                for &m in members {
                    let Some(results) = results_of(m, g) else {
                        continue; // was already evicted when the attempt launched
                    };
                    let all_dead = !results.is_empty() && results.iter().all(|r| r.is_err());
                    if all_dead {
                        self.strike(m);
                    } else {
                        self.strikes[m] = 0;
                    }
                    for (k, r) in results.iter().enumerate() {
                        if r.is_ok() {
                            acks[k] += 1;
                        }
                        if matches!(
                            r,
                            Err(NetError::Serve(
                                ServeError::WrongEpoch { .. } | ServeError::NotOwner { .. }
                            ))
                        ) {
                            saw_stale = true;
                        }
                    }
                    if m == primary {
                        primary_results = Some(results);
                    }
                }
                let primary_results = primary_results.unwrap_or_else(|| {
                    vec![
                        Err(NetError::NoQuorum {
                            live: 0,
                            need: quorum
                        });
                        idxs.len()
                    ]
                });
                for (k, &i) in idxs.iter().enumerate() {
                    match &primary_results[k] {
                        Ok(resp) => {
                            if acks[k] >= quorum {
                                out[i] = Some(Ok(resp.clone()));
                            } else {
                                out[i] = Some(Err(NetError::NoQuorum {
                                    live: acks[k],
                                    need: quorum,
                                }));
                            }
                        }
                        Err(NetError::Serve(
                            e @ (ServeError::WrongEpoch { .. } | ServeError::NotOwner { .. }),
                        )) => {
                            // Stale map: leave unresolved for the re-route,
                            // but remember the typed refusal as the answer
                            // of record if retries run out.
                            if _attempt == ROUTE_ATTEMPTS - 1 {
                                out[i] = Some(Err(NetError::Serve(e.clone())));
                            }
                        }
                        Err(e) => {
                            if _attempt == ROUTE_ATTEMPTS - 1 {
                                out[i] = Some(Err(e.clone()));
                            }
                        }
                    }
                }
            }
            let unresolved = out.iter().any(|o| o.is_none());
            if !unresolved {
                break;
            }
            if saw_stale {
                self.stale_epoch_retries += 1;
                let _ = self.refresh_map();
            }
        }
        out.into_iter()
            .map(|o| {
                o.unwrap_or(Err(NetError::Deadline {
                    attempts: ROUTE_ATTEMPTS as u32,
                }))
            })
            .collect()
    }

    fn strike(&mut self, node: usize) {
        self.strikes[node] = self.strikes[node].saturating_add(1);
        if self.max_strikes > 0 && self.strikes[node] >= self.max_strikes && !self.evicted[node] {
            self.evicted[node] = true;
        }
    }

    /// Readmits a previously struck-out node (e.g. after it restarted and
    /// was handed the current map again).
    pub fn readmit(&mut self, addr: &str) {
        if let Some(i) = self.map.nodes.iter().position(|a| a == addr) {
            self.evicted[i] = false;
            self.strikes[i] = 0;
            self.conns[i] = None;
        }
    }

    /// Shard-scoped digest voting: asks every live replica of `shard`'s
    /// group for the class digest restricted to that shard and returns the
    /// majority `(digest, count)`. Minority members are evicted from the
    /// client's view — quarantining that group's divergent replica without
    /// touching any other shard's group. Errors when no majority exists
    /// among the answers.
    pub fn vote_shard_digest(
        &mut self,
        class: WorkloadClass,
        shard: u32,
    ) -> Result<(u64, u64), NetError> {
        let members: Vec<usize> = self
            .map
            .replicas(shard)
            .iter()
            .map(|&r| r as usize)
            .filter(|&r| !self.evicted[r])
            .collect();
        let epoch = self.map.epoch;
        let shards = self.map.shards;
        let mut votes: Vec<(usize, (u64, u64))> = Vec::new();
        for m in members {
            let req = Request::ShardDigest {
                class,
                shards,
                shard,
            };
            if let Ok(Response::ClassDigest { digest, count }) = self
                .conn(m)
                .call_many_tagged(&[(req, NO_SHARD)], epoch)
                .remove(0)
            {
                votes.push((m, (digest, count)));
            }
        }
        let need = votes.len() / 2 + 1;
        let majority = votes
            .iter()
            .map(|(_, v)| *v)
            .find(|v| votes.iter().filter(|(_, w)| w == v).count() >= need);
        match majority {
            Some(v) => {
                for (m, w) in votes {
                    if w != v {
                        self.evicted[m] = true;
                    }
                }
                Ok(v)
            }
            None => Err(NetError::NoQuorum {
                live: votes.len(),
                need,
            }),
        }
    }

    /// Drains and shuts down every reachable node (test teardown).
    pub fn shutdown_all(&mut self) {
        for node in 0..self.map.nodes.len() {
            if !self.evicted[node] {
                let _ = self.conn(node).request_shutdown();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn addrs(n: usize) -> Vec<String> {
        (0..n).map(|i| format!("10.0.0.{i}:9000")).collect()
    }

    #[test]
    fn maps_round_trip_and_rederive_the_same_assignment() {
        let m = ShardMap::build(addrs(5), 64, 64, 2);
        let back = ShardMap::decode(&m.encode()).expect("decode");
        assert_eq!(back, m);
        for s in 0..m.shards {
            assert_eq!(m.replicas(s).len(), 2);
            let g = m.replicas(s);
            assert_ne!(g[0], g[1], "replica groups hold distinct nodes");
        }
    }

    #[test]
    fn membership_changes_bump_the_epoch_and_move_few_shards() {
        let m = ShardMap::build(addrs(4), 128, 64, 1);
        let grown = m.with_node_added("10.0.0.9:9000");
        assert_eq!(grown.epoch, m.epoch + 1);
        let moved = m.moved_shards(&grown);
        // Every moved shard lands on the joiner; none shuffle between
        // survivors (the minimal-movement property).
        assert!(!moved.is_empty());
        for (_, _, to) in &moved {
            assert_eq!(to, "10.0.0.9:9000");
        }
        let shrunk = grown.without_node("10.0.0.9:9000");
        assert_eq!(shrunk.epoch, grown.epoch + 1);
        // Shrinking back restores exactly the original owners.
        let back_moved: Vec<_> = m
            .moved_shards(&shrunk)
            .into_iter()
            .filter(|(_, from, to)| from != to)
            .collect();
        assert!(back_moved.is_empty(), "{back_moved:?}");
    }

    #[test]
    fn decode_refuses_garbage_typed() {
        assert!(ShardMap::decode(&[]).is_err());
        let mut e = Enc::new();
        e.u64(1);
        e.u32(0); // zero shards
        e.u32(8);
        e.u32(1);
        e.u32(1);
        e.str("a");
        assert!(matches!(
            ShardMap::decode(&e.into_bytes()),
            Err(PersistError::Malformed { .. })
        ));
    }
}
