//! # fol-net: a network front-end for the FOL serving layer
//!
//! [`fol_serve::Server`] batches small independent requests into the large
//! index vectors the paper's method (filtering-overwritten-label, Kanada
//! SC'91) needs to amortize its per-transaction overhead — but only for
//! callers in the same process. This crate puts that serving layer behind a
//! socket without surrendering any of its guarantees, and then replicates
//! it:
//!
//! * a **wire protocol** ([`wire`]) built from the same CRC-framed
//!   vocabulary as the durable artifacts — a torn, bit-flipped, or
//!   garbage frame is a *typed* refusal ([`fol_persist::PersistError`]),
//!   never a mis-parse;
//! * a threaded **TCP server** ([`NetServer`]) over
//!   [`fol_serve::Server::submit_with`]: per-connection read/write
//!   deadlines, bounded in-flight admission with typed
//!   [`fol_serve::ServeError::Overloaded`] on the wire, a
//!   `(client, seq)`-keyed dedupe table that makes re-submission
//!   exactly-once, and graceful drain on shutdown;
//! * a **retrying client** ([`NetClient`]): capped exponential backoff with
//!   seeded jitter ([`fol_core::recover::Backoff`]), deadline-aware retry
//!   of *retryable* failures (timeouts, resets, torn frames, overload)
//!   and immediate surfacing of *terminal* ones (typed refusals,
//!   exhausted deadlines), with idempotent re-submission keyed by request
//!   sequence number;
//! * seeded **wire-fault injection** ([`WireFaultPlan`]) at the transport
//!   seam — frame drops, delays, duplicates, byte flips, half-open tears —
//!   so the whole stack is testable under a deterministic adversary;
//! * a **replica set** ([`ReplicaSet`]): the same traffic driven to N
//!   independent serving processes, acknowledged on majority, checked by
//!   2-of-3 *content-digest* voting ([`fol_serve::Request::Digest`]), with
//!   failover that evicts a replica on crash, repeated timeout, or digest
//!   minority — and seeded-backoff half-open **rejoin** that ships an
//!   evicted member its missing keys digest-verified before readmission;
//! * a **sharded cluster** ([`ShardMap`], [`ClusterClient`]): a versioned,
//!   epoch-stamped consistent-hash ring partitions the key space over
//!   independent nodes; the router fans each batch to the owning nodes
//!   *in parallel* and every mismatch between a request's epoch and a
//!   node's installed map is a typed `WrongEpoch`/`NotOwner` refusal that
//!   drives a map refresh, never a silent mis-route;
//! * a crash-safe **rebalance coordinator** ([`rebalance()`]):
//!   freeze → drain → extract → digest-verify → install → advance, every
//!   step idempotent, so a coordinator or node killed mid-handoff re-runs
//!   to the same converged state.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod client;
mod fault;
pub mod rebalance;
mod replica;
mod server;
pub mod shard;
pub mod wire;

pub use client::{NetClient, NetClientConfig};
pub use fault::{FaultDecision, WireFaultPlan};
pub use rebalance::{abort_rebalance, rebalance, MovedShard, RebalanceReport};
pub use replica::{EvictReason, ReplicaSet, ReplicaSetConfig, ReplicaStatus};
pub use server::{NetServer, NetServerConfig};
pub use shard::{ClusterClient, ShardMap};

use fol_persist::PersistError;
use fol_serve::ServeError;

/// Every way a remote call can fail, split by what the caller should do
/// next: [`NetError::is_retryable`] failures are worth another attempt on a
/// fresh connection; the rest are terminal verdicts.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum NetError {
    /// The transport failed (connect refused, reset, read/write timeout).
    /// Retryable — the bytes may simply have died with the connection.
    Io {
        /// What was being done.
        what: String,
        /// The rendered `std::io::Error`.
        error: String,
    },
    /// The peer's bytes arrived but the frame was defective — torn
    /// ([`PersistError::Truncated`]), bit-flipped
    /// ([`PersistError::CrcMismatch`]), or garbage
    /// ([`PersistError::Malformed`]). The connection is poisoned; retryable
    /// on a fresh one.
    Frame(PersistError),
    /// The peer refused *our* last frame as defective and closed. Retryable
    /// on a fresh connection.
    PeerRefused {
        /// The defect as the peer rendered it.
        what: String,
    },
    /// A duplicate of a still-executing request: the outcome is not yet
    /// known, so there is nothing to replay. Retryable — the next attempt
    /// finds the cached outcome.
    Busy,
    /// The server's typed per-request verdict. Overload and a lost worker
    /// are retryable; rejections, server-side deadline expiry, transaction
    /// failure, shutdown, and persistence refusals are terminal.
    Serve(ServeError),
    /// The client-side deadline was exhausted across every retry attempt.
    /// Terminal; the request *may or may not* have been applied remotely —
    /// re-submitting under the same sequence number (what
    /// [`NetClient`] does automatically within one call) is the only safe
    /// way to resolve the ambiguity.
    Deadline {
        /// How many attempts were made before giving up.
        attempts: u32,
    },
    /// Fewer replicas than the required quorum are still live.
    NoQuorum {
        /// Live members.
        live: usize,
        /// Members needed.
        need: usize,
    },
}

impl NetError {
    /// True when another attempt (on a fresh connection, after backoff)
    /// could succeed.
    pub fn is_retryable(&self) -> bool {
        match self {
            NetError::Io { .. }
            | NetError::Frame(_)
            | NetError::PeerRefused { .. }
            | NetError::Busy => true,
            NetError::Serve(e) => {
                matches!(e, ServeError::Overloaded { .. } | ServeError::WorkerLost)
            }
            NetError::Deadline { .. } | NetError::NoQuorum { .. } => false,
        }
    }

    pub(crate) fn io(what: impl Into<String>, e: &std::io::Error) -> Self {
        NetError::Io {
            what: what.into(),
            error: e.to_string(),
        }
    }
}

impl std::fmt::Display for NetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NetError::Io { what, error } => write!(f, "i/o during {what}: {error}"),
            NetError::Frame(e) => write!(f, "defective frame: {e}"),
            NetError::PeerRefused { what } => write!(f, "peer refused our frame: {what}"),
            NetError::Busy => write!(f, "duplicate of a still-executing request"),
            NetError::Serve(e) => write!(f, "server verdict: {e}"),
            NetError::Deadline { attempts } => {
                write!(f, "client deadline exhausted after {attempts} attempt(s)")
            }
            NetError::NoQuorum { live, need } => {
                write!(f, "no quorum: {live} live replica(s), {need} needed")
            }
        }
    }
}

impl std::error::Error for NetError {}
