//! Versioned, CRC-framed checkpoints with atomic rename-commit.
//!
//! A checkpoint is the durable image of one worker's committed state at a
//! round boundary: the byte-exact contents of its regions (a serialized
//! [`fol_vm::Snapshot`]), the tracked-region digests that certify those
//! contents, the host-side counters machine memory cannot carry (arena
//! watermarks and the like), and the set of request sequence numbers whose
//! effects the image already contains — the fact the WAL replayer needs to
//! be exactly-once instead of at-least-once.
//!
//! # On-disk format (version 1)
//!
//! ```text
//! magic "FOLCKPT\0" (8 bytes)  version u32 LE
//! frame: meta      — seq, counters, applied set, region/checksum counts
//! frame: region ×N — base u64, len u64, words i64 ×len
//! frame: checksums — (name, base, len, digest) ×M
//! frame: trailer   — literal "END"
//! ```
//!
//! Every frame is CRC-32 protected ([`crate::frame`]); the trailer frame
//! means a file truncated *exactly at a frame boundary* is still detected
//! as [`PersistError::Truncated`] rather than silently losing its tail.
//!
//! # Commit discipline
//!
//! [`Checkpoint::write`] never exposes a half-written file under the final
//! name: bytes go to a `.tmp` sibling, the file is fsynced, then atomically
//! renamed over the destination, then the directory is fsynced so the name
//! itself survives a crash. A kill at any point leaves either the old
//! checkpoint or the new one — the torn `.tmp`, if present, fails the name
//! filter and is never loaded.

use crate::frame::{next_frame, push_frame, Dec, Enc, Frame};
use crate::PersistError;
use fol_core::recover::{DurabilityHook, ExecMode, RecoveryReport};
use fol_vm::integrity::{digest_words, TrackedRegion};
use fol_vm::{Machine, Region, Snapshot, Word};
use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};

/// First bytes of every checkpoint file.
pub const CKPT_MAGIC: &[u8; 8] = b"FOLCKPT\0";
/// The checkpoint format version this build writes and reads.
pub const CKPT_VERSION: u32 = 1;

const TRAILER: &[u8] = b"END";

/// One durable image of committed state. See the module docs for the
/// on-disk format.
#[derive(Clone, Debug, PartialEq)]
pub struct Checkpoint {
    /// Monotonic position of this image: the highest request sequence (or
    /// commit count) whose effects it contains.
    pub seq: u64,
    /// Host-side counters that machine memory cannot carry (arena
    /// watermarks such as a chain table's `used_nodes`), restored alongside
    /// the snapshot.
    pub counters: Vec<(String, u64)>,
    /// Request sequence numbers whose effects this image already contains.
    /// The WAL replayer subtracts this set so an acknowledged request is
    /// applied exactly once, not re-applied on every restart.
    pub applied: Vec<u64>,
    /// The byte-exact region contents.
    pub snapshot: Snapshot,
    /// Ground-truth digests of the tracked regions at capture time, for
    /// [`Checkpoint::verify`] and post-restore certification.
    pub checksums: Vec<TrackedRegion>,
}

impl Checkpoint {
    /// Captures the current contents of `regions` on `m`, together with
    /// freshly recomputed digests of the machine's tracked regions — ground
    /// truth of memory at this instant, independent of the incremental
    /// sums (which rot can silently stale).
    pub fn capture(
        m: &Machine,
        regions: &[Region],
        seq: u64,
        counters: Vec<(String, u64)>,
        applied: Vec<u64>,
    ) -> Self {
        let checksums = m
            .tracked_regions()
            .iter()
            .map(|t| TrackedRegion {
                name: t.name.clone(),
                region: t.region,
                sum: digest_words(t.region.base(), &m.mem().read_region(t.region)),
            })
            .collect();
        Checkpoint {
            seq,
            counters,
            applied,
            snapshot: Snapshot::capture(m.mem(), regions),
            checksums,
        }
    }

    /// Writes the snapshot back into `m` and resynchronizes the machine's
    /// incremental checksums. The machine must have been rebuilt with the
    /// identical allocation sequence (region geometry is bounds-checked by
    /// the memory layer, not trusted).
    pub fn restore_into(&self, m: &mut Machine) {
        self.snapshot.restore(m.mem_mut());
        m.resync_integrity();
    }

    /// Serializes to the version-1 byte format.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(CKPT_MAGIC);
        out.extend_from_slice(&CKPT_VERSION.to_le_bytes());

        let mut meta = Enc::new();
        meta.u64(self.seq);
        meta.u32(self.counters.len() as u32);
        for (name, v) in &self.counters {
            meta.str(name);
            meta.u64(*v);
        }
        meta.u32(self.applied.len() as u32);
        for &s in &self.applied {
            meta.u64(s);
        }
        meta.u32(self.snapshot.parts().len() as u32);
        meta.u32(self.checksums.len() as u32);
        push_frame(&mut out, &meta.into_bytes());

        for (region, words) in self.snapshot.parts() {
            let mut e = Enc::new();
            e.u64(region.base() as u64);
            e.u64(words.len() as u64);
            for &w in words {
                e.i64(w);
            }
            push_frame(&mut out, &e.into_bytes());
        }

        let mut sums = Enc::new();
        for t in &self.checksums {
            sums.str(&t.name);
            sums.u64(t.region.base() as u64);
            sums.u64(t.region.len() as u64);
            sums.u64(t.sum);
        }
        push_frame(&mut out, &sums.into_bytes());
        push_frame(&mut out, TRAILER);
        out
    }

    /// Deserializes the version-1 byte format. Every defect is a distinct
    /// typed error: wrong magic ([`PersistError::BadMagic`]), unknown
    /// version ([`PersistError::UnsupportedVersion`]), torn file
    /// ([`PersistError::Truncated`]), bit-flip
    /// ([`PersistError::CrcMismatch`]), framed-in garbage
    /// ([`PersistError::Malformed`]).
    pub fn decode(bytes: &[u8]) -> Result<Self, PersistError> {
        let header = CKPT_MAGIC.len() + 4;
        if bytes.len() < header {
            return Err(PersistError::Truncated {
                what: "checkpoint: header".into(),
                offset: 0,
                needed: header,
                available: bytes.len(),
            });
        }
        if &bytes[..CKPT_MAGIC.len()] != CKPT_MAGIC {
            return Err(PersistError::BadMagic {
                what: "checkpoint".into(),
                found: bytes[..CKPT_MAGIC.len()].to_vec(),
            });
        }
        let version = u32::from_le_bytes(bytes[8..12].try_into().unwrap());
        if version != CKPT_VERSION {
            return Err(PersistError::UnsupportedVersion {
                what: "checkpoint".into(),
                found: version,
                supported: CKPT_VERSION,
            });
        }
        let mut pos = header;
        let meta = require_frame(bytes, &mut pos, "checkpoint: meta frame")?;
        let mut d = Dec::new(meta);
        let seq = d.u64("meta.seq")?;
        let n_counters = d.u32("meta.counters.len")? as usize;
        let mut counters = Vec::with_capacity(n_counters.min(1024));
        for _ in 0..n_counters {
            let name = d.str("meta.counter.name")?;
            let v = d.u64("meta.counter.value")?;
            counters.push((name, v));
        }
        let n_applied = d.u32("meta.applied.len")? as usize;
        let mut applied = Vec::with_capacity(n_applied.min(1024));
        for _ in 0..n_applied {
            applied.push(d.u64("meta.applied.seq")?);
        }
        let n_regions = d.u32("meta.regions.len")? as usize;
        let n_sums = d.u32("meta.checksums.len")? as usize;
        d.finish("checkpoint: meta frame")?;

        let mut parts: Vec<(Region, Vec<Word>)> = Vec::with_capacity(n_regions.min(1024));
        for i in 0..n_regions {
            let payload = require_frame(bytes, &mut pos, "checkpoint: region frame")?;
            let mut d = Dec::new(payload);
            let what = format!("region[{i}]");
            let base = d.u64(&what)? as usize;
            let len = d.u64(&what)? as usize;
            let mut words = Vec::with_capacity(len.min(1 << 20));
            for _ in 0..len {
                words.push(d.i64(&what)?);
            }
            d.finish("checkpoint: region frame")?;
            parts.push((Region::from_raw(base, len), words));
        }

        let sums_payload = require_frame(bytes, &mut pos, "checkpoint: checksum frame")?;
        let mut d = Dec::new(sums_payload);
        let mut checksums = Vec::with_capacity(n_sums.min(1024));
        for _ in 0..n_sums {
            let name = d.str("checksum.name")?;
            let base = d.u64("checksum.base")? as usize;
            let len = d.u64("checksum.len")? as usize;
            let sum = d.u64("checksum.sum")?;
            checksums.push(TrackedRegion {
                name,
                region: Region::from_raw(base, len),
                sum,
            });
        }
        d.finish("checkpoint: checksum frame")?;

        let trailer = require_frame(bytes, &mut pos, "checkpoint: trailer frame")?;
        if trailer != TRAILER {
            return Err(PersistError::Malformed {
                what: format!("checkpoint: trailer is {trailer:02x?}, expected \"END\""),
            });
        }
        if pos != bytes.len() {
            return Err(PersistError::Malformed {
                what: format!(
                    "checkpoint: {} byte(s) after the trailer frame",
                    bytes.len() - pos
                ),
            });
        }
        Ok(Checkpoint {
            seq,
            counters,
            applied,
            snapshot: Snapshot::from_parts(parts),
            checksums,
        })
    }

    /// Cross-checks the stored digests against the stored region contents:
    /// every checksum whose region was captured must match a fresh
    /// [`digest_words`] over the captured words. The CRC layer certifies
    /// the *bytes* survived storage; this certifies the checkpoint was
    /// internally consistent when written (a writer racing its own
    /// mutations would be caught here).
    pub fn verify(&self) -> Result<(), PersistError> {
        for t in &self.checksums {
            let Some((_, words)) = self
                .snapshot
                .parts()
                .iter()
                .find(|(r, _)| r.base() == t.region.base() && r.len() == t.region.len())
            else {
                continue;
            };
            let actual = digest_words(t.region.base(), words);
            if actual != t.sum {
                return Err(PersistError::Malformed {
                    what: format!(
                        "checkpoint: region \"{}\" digest {actual:#018x} does not match \
                         stored checksum {:#018x} — the checkpoint was written inconsistent",
                        t.name, t.sum
                    ),
                });
            }
        }
        Ok(())
    }

    /// Serializes and commits atomically to `path` (temp file + fsync +
    /// rename + directory fsync). A crash at any point leaves either the
    /// previous file or the complete new one under `path`.
    pub fn write(&self, path: &Path) -> Result<(), PersistError> {
        write_atomic(path, &self.encode())
    }

    /// [`Checkpoint::write`] without the fsyncs: the same atomic
    /// temp-file + rename commit (safe against process crashes), relying
    /// on the OS to flush. Appropriate when a durable write-ahead log is
    /// the source of truth and this checkpoint merely shortens replay — a
    /// power-loss-torn file is refused typed at load time and recovery
    /// falls back to the previous checkpoint plus the log.
    pub fn write_unsynced(&self, path: &Path) -> Result<(), PersistError> {
        write_atomic_opts(path, &self.encode(), false)
    }

    /// Reads and decodes `path`. Does not [`Checkpoint::verify`]; the scan
    /// helpers do both.
    pub fn load(path: &Path) -> Result<Self, PersistError> {
        let bytes =
            fs::read(path).map_err(|e| PersistError::io(format!("read {}", path.display()), e))?;
        Self::decode(&bytes)
    }

    /// The canonical file name for a checkpoint of `prefix` at `seq` —
    /// zero-padded so lexicographic order is sequence order.
    pub fn file_name(prefix: &str, seq: u64) -> String {
        format!("{prefix}-{seq:020}.ckpt")
    }

    /// The state digest of this image: the XOR of its per-region checksums.
    /// A delta checkpoint names its parent by this value — see
    /// [`crate::delta::state_digest`].
    pub fn state_digest(&self) -> u64 {
        self.checksums.iter().fold(0, |acc, t| acc ^ t.sum)
    }
}

/// Reads the frame at `*pos`, turning a clean end-of-input into a
/// [`PersistError::Truncated`] — here, running out of frames early *is* a
/// truncation (the meta frame promised more).
fn require_frame<'a>(
    bytes: &'a [u8],
    pos: &mut usize,
    what: &str,
) -> Result<&'a [u8], PersistError> {
    match next_frame(bytes, pos, what)? {
        Frame::Ok(p) => Ok(p),
        Frame::End => Err(PersistError::Truncated {
            what: format!("{what} (file ends before it)"),
            offset: *pos,
            needed: 8,
            available: 0,
        }),
    }
}

/// Write-to-temp + fsync + atomic rename + directory fsync.
pub(crate) fn write_atomic(path: &Path, bytes: &[u8]) -> Result<(), PersistError> {
    write_atomic_opts(path, bytes, true)
}

/// [`write_atomic`] with the fsyncs optional. `sync: false` keeps the
/// temp-file + rename protocol (a *process* crash still leaves either the
/// old file or the complete new one) but skips the file and directory
/// fsyncs, conceding that a *power* loss may tear the file — acceptable
/// exactly where the caller treats the artifact as a cache over a durable
/// log: a torn checkpoint is refused typed at load time and recovery falls
/// back to the previous one plus log replay.
pub(crate) fn write_atomic_opts(path: &Path, bytes: &[u8], sync: bool) -> Result<(), PersistError> {
    let dir = path.parent().unwrap_or_else(|| Path::new("."));
    fs::create_dir_all(dir)
        .map_err(|e| PersistError::io(format!("create {}", dir.display()), e))?;
    let tmp = path.with_extension("tmp");
    {
        let mut f = fs::File::create(&tmp)
            .map_err(|e| PersistError::io(format!("create {}", tmp.display()), e))?;
        f.write_all(bytes)
            .map_err(|e| PersistError::io(format!("write {}", tmp.display()), e))?;
        if sync {
            f.sync_all()
                .map_err(|e| PersistError::io(format!("fsync {}", tmp.display()), e))?;
        }
    }
    fs::rename(&tmp, path).map_err(|e| {
        PersistError::io(format!("rename {} -> {}", tmp.display(), path.display()), e)
    })?;
    // Make the rename itself durable: fsync the containing directory.
    if sync {
        if let Ok(d) = fs::File::open(dir) {
            let _ = d.sync_all();
        }
    }
    Ok(())
}

/// The outcome of scanning a directory for checkpoints: the newest loadable
/// one (if any), plus a typed refusal per newer file that failed to load or
/// verify — surfaced, never silently skipped.
#[derive(Debug, Default)]
pub struct CheckpointScan {
    /// The newest checkpoint that loaded and verified, with its path.
    pub newest: Option<(PathBuf, Checkpoint)>,
    /// Files newer than `newest` that were refused, newest first, each with
    /// the typed reason.
    pub refused: Vec<(PathBuf, PersistError)>,
    /// Directory entries that were skipped without being read: unreadable
    /// entries, non-file entries (a junk subdirectory, a socket), and
    /// `.ckpt`-suffixed names that do not belong to the scanned prefix.
    /// Each carries a typed note — surfaced for the operator, never a
    /// reason to fail the whole scan.
    pub skipped: Vec<ScanNote>,
}

/// Why [`latest_checkpoint`] stepped over a directory entry without
/// attempting to load it.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ScanNote {
    /// The directory entry itself could not be read (racing deletion,
    /// permissions). Carries the rendered I/O error.
    Unreadable {
        /// Where the entry sat.
        dir: PathBuf,
        /// The rendered `std::io::Error`.
        error: String,
    },
    /// The name matched the checkpoint pattern but the entry is not a
    /// regular file — a subdirectory or special file squatting on a
    /// checkpoint name is never opened.
    NotAFile {
        /// The offending path.
        path: PathBuf,
    },
    /// A `.ckpt` file whose name does not start with the scanned prefix —
    /// another worker's checkpoint, or a foreign artifact. Left alone.
    ForeignName {
        /// The foreign path.
        path: PathBuf,
    },
}

impl std::fmt::Display for ScanNote {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ScanNote::Unreadable { dir, error } => {
                write!(f, "unreadable entry in {}: {error}", dir.display())
            }
            ScanNote::NotAFile { path } => {
                write!(f, "not a regular file: {}", path.display())
            }
            ScanNote::ForeignName { path } => {
                write!(f, "foreign checkpoint name: {}", path.display())
            }
        }
    }
}

/// Scans `dir` for `{prefix}-*.ckpt` files, newest first, returning the
/// first one that loads and [`Checkpoint::verify`]s plus a typed refusal
/// for every newer file that did not. A missing directory is an empty scan,
/// not an error; an unreadable one is [`PersistError::Io`]. Entries that
/// cannot even be classified — unreadable entries, non-file entries
/// squatting on checkpoint names, foreign-prefixed `.ckpt` files — are
/// stepped over with a typed [`ScanNote`] in [`CheckpointScan::skipped`]
/// rather than failing the scan: one junk inode must never hide every
/// recoverable checkpoint behind an error.
pub fn latest_checkpoint(dir: &Path, prefix: &str) -> Result<CheckpointScan, PersistError> {
    let mut scan = CheckpointScan::default();
    let entries = match fs::read_dir(dir) {
        Ok(e) => e,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(scan),
        Err(e) => return Err(PersistError::io(format!("read dir {}", dir.display()), e)),
    };
    let mut names: Vec<String> = Vec::new();
    let wanted_prefix = format!("{prefix}-");
    for entry in entries {
        // A single bad entry (racing deletion, permissions) must not sink
        // the scan — every other checkpoint is still recoverable state.
        let entry = match entry {
            Ok(e) => e,
            Err(e) => {
                scan.skipped.push(ScanNote::Unreadable {
                    dir: dir.to_path_buf(),
                    error: e.to_string(),
                });
                continue;
            }
        };
        let name = entry.file_name().to_string_lossy().into_owned();
        if !name.ends_with(".ckpt") {
            continue; // WAL segments etc. share the directory legitimately.
        }
        if !name.starts_with(&wanted_prefix) {
            scan.skipped.push(ScanNote::ForeignName {
                path: dir.join(&name),
            });
            continue;
        }
        // Only regular files are ever opened: a subdirectory named like a
        // checkpoint would otherwise turn into a confusing read error.
        let is_file = entry.file_type().map(|t| t.is_file());
        match is_file {
            Ok(true) => names.push(name),
            Ok(false) => scan.skipped.push(ScanNote::NotAFile {
                path: dir.join(&name),
            }),
            Err(e) => scan.skipped.push(ScanNote::Unreadable {
                dir: dir.to_path_buf(),
                error: e.to_string(),
            }),
        }
    }
    // Zero-padded sequence numbers: lexicographic descending = newest first.
    names.sort_unstable_by(|a, b| b.cmp(a));
    for name in names {
        let path = dir.join(&name);
        match Checkpoint::load(&path).and_then(|c| c.verify().map(|()| c)) {
            Ok(c) => {
                scan.newest = Some((path, c));
                break;
            }
            Err(e) => scan.refused.push((path, e)),
        }
    }
    Ok(scan)
}

/// Deletes all but the newest `keep` checkpoints of `prefix` in `dir`.
/// Returns how many were removed; removal errors are ignored (a stale file
/// is re-pruned next time).
pub fn prune_checkpoints(dir: &Path, prefix: &str, keep: usize) -> usize {
    let Ok(entries) = fs::read_dir(dir) else {
        return 0;
    };
    let wanted_prefix = format!("{prefix}-");
    let mut names: Vec<String> = entries
        .filter_map(|e| e.ok())
        .map(|e| e.file_name().to_string_lossy().into_owned())
        .filter(|n| n.starts_with(&wanted_prefix) && n.ends_with(".ckpt"))
        .collect();
    names.sort_unstable();
    let excess = names.len().saturating_sub(keep);
    let mut removed = 0;
    for name in &names[..excess] {
        if fs::remove_file(dir.join(name)).is_ok() {
            removed += 1;
        }
    }
    removed
}

/// A [`DurabilityHook`] that makes the retry supervisor's progress durable:
/// ladder rung before every attempt (so a killed process resumes mid-ladder
/// via [`DurabilityHook::resume_rung`]), and a full [`Checkpoint`] of the
/// machine's tracked regions every `every` commits.
///
/// Hook calls never fail the supervised transaction; I/O problems are
/// recorded and readable via [`Checkpointer::last_error`].
pub struct Checkpointer {
    dir: PathBuf,
    prefix: String,
    every: u64,
    keep: usize,
    commits: u64,
    counters: Vec<(String, u64)>,
    applied: Vec<u64>,
    checkpoints_written: u64,
    last_error: Option<PersistError>,
}

impl Checkpointer {
    /// A checkpointer writing into `dir` with file prefix `prefix`,
    /// checkpointing every commit and keeping the 2 newest files.
    pub fn new(dir: impl Into<PathBuf>, prefix: impl Into<String>) -> Self {
        Checkpointer {
            dir: dir.into(),
            prefix: prefix.into(),
            every: 1,
            keep: 2,
            commits: 0,
            counters: Vec::new(),
            applied: Vec::new(),
            checkpoints_written: 0,
            last_error: None,
        }
    }

    /// Checkpoint every `every` commits (0 is treated as 1).
    pub fn every(mut self, every: u64) -> Self {
        self.every = every.max(1);
        self
    }

    /// Keep the newest `keep` checkpoint files (older ones are pruned).
    pub fn keep(mut self, keep: usize) -> Self {
        self.keep = keep.max(1);
        self
    }

    /// Continue the commit count from `seq` — used after restoring from a
    /// checkpoint so new files sort after the restored one.
    pub fn starting_at(mut self, seq: u64) -> Self {
        self.commits = seq;
        self
    }

    /// Sets the host counters attached to the next checkpoint.
    pub fn set_counters(&mut self, counters: Vec<(String, u64)>) {
        self.counters = counters;
    }

    /// Sets the applied-sequence set attached to the next checkpoint.
    pub fn set_applied(&mut self, applied: Vec<u64>) {
        self.applied = applied;
    }

    /// Commits observed so far (the checkpoint sequence counter).
    pub fn commits(&self) -> u64 {
        self.commits
    }

    /// Checkpoints successfully written.
    pub fn checkpoints_written(&self) -> u64 {
        self.checkpoints_written
    }

    /// The most recent durability I/O failure, if any. Durability is
    /// best-effort at write time (refusal is typed at *load* time); this is
    /// where a supervisor checks whether its safety net actually exists.
    pub fn last_error(&self) -> Option<&PersistError> {
        self.last_error.as_ref()
    }

    fn rung_path(&self) -> PathBuf {
        self.dir.join(format!("{}.rung", self.prefix))
    }
}

impl DurabilityHook for Checkpointer {
    fn resume_rung(&mut self) -> usize {
        let path = self.rung_path();
        let bytes = match fs::read(&path) {
            Ok(b) => b,
            Err(_) => return 0,
        };
        let mut pos = 0;
        match next_frame(&bytes, &mut pos, "ladder rung file") {
            Ok(Frame::Ok(payload)) => {
                let mut d = Dec::new(payload);
                match d
                    .u32("rung")
                    .and_then(|r| d.finish("rung file").map(|()| r))
                {
                    Ok(r) => r as usize,
                    Err(e) => {
                        // A corrupt rung file cannot be resumed from;
                        // restarting the ladder at the bottom is always
                        // safe (merely slower). Typed, recorded, not silent.
                        self.last_error = Some(e);
                        0
                    }
                }
            }
            Ok(Frame::End) => 0,
            Err(e) => {
                self.last_error = Some(e);
                0
            }
        }
    }

    fn on_attempt(&mut self, rung: usize, _mode: ExecMode) {
        let mut e = Enc::new();
        e.u32(rung as u32);
        let mut bytes = Vec::new();
        push_frame(&mut bytes, &e.into_bytes());
        if let Err(err) = write_atomic(&self.rung_path(), &bytes) {
            self.last_error = Some(err);
        }
    }

    fn on_commit(&mut self, m: &Machine, _report: &RecoveryReport) {
        self.commits += 1;
        // The ladder completed; a restart should begin at the bottom.
        let _ = fs::remove_file(self.rung_path());
        if !self.commits.is_multiple_of(self.every) {
            return;
        }
        let regions: Vec<Region> = m.tracked_regions().iter().map(|t| t.region).collect();
        let ckpt = Checkpoint::capture(
            m,
            &regions,
            self.commits,
            self.counters.clone(),
            self.applied.clone(),
        );
        let path = self
            .dir
            .join(Checkpoint::file_name(&self.prefix, self.commits));
        match ckpt.write(&path) {
            Ok(()) => {
                self.checkpoints_written += 1;
                prune_checkpoints(&self.dir, &self.prefix, self.keep);
            }
            Err(e) => self.last_error = Some(e),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fol_vm::CostModel;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn temp_dir(tag: &str) -> PathBuf {
        static NEXT: AtomicU64 = AtomicU64::new(0);
        let n = NEXT.fetch_add(1, Ordering::Relaxed);
        let dir =
            std::env::temp_dir().join(format!("fol-persist-test-{}-{tag}-{n}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn sample_machine() -> (Machine, Region, Region) {
        let mut m = Machine::new(CostModel::unit());
        let a = m.alloc(8, "a");
        let b = m.alloc(3, "b");
        for i in 0..8 {
            m.s_write(a.at(i), (i as Word) * 7 - 3);
        }
        for i in 0..3 {
            m.s_write(b.at(i), -(i as Word));
        }
        m.track_region(a);
        m.track_region(b);
        (m, a, b)
    }

    fn sample_checkpoint() -> Checkpoint {
        let (m, a, b) = sample_machine();
        Checkpoint::capture(
            &m,
            &[a, b],
            42,
            vec![("chain.used_nodes".into(), 17), ("bst.used".into(), 5)],
            vec![3, 5, 8],
        )
    }

    #[test]
    fn checkpoint_round_trips_and_verifies() {
        let c = sample_checkpoint();
        let bytes = c.encode();
        let back = Checkpoint::decode(&bytes).unwrap();
        assert_eq!(back, c);
        back.verify().unwrap();
        assert_eq!(back.seq, 42);
        assert_eq!(back.applied, vec![3, 5, 8]);
        assert_eq!(back.counters[0].0, "chain.used_nodes");
        assert_eq!(back.snapshot.words(), 11);
    }

    #[test]
    fn restore_into_rebuilds_identical_state() {
        let c = sample_checkpoint();
        let (mut m2, a2, _) = sample_machine();
        // Diverge, then restore.
        m2.s_write(a2.at(0), 999);
        c.restore_into(&mut m2);
        assert!(c.snapshot.matches(m2.mem()));
        m2.scrub().expect("restore_into must resync the digests");
    }

    /// Satellite: the version/corruption table. Every distinct way a stored
    /// checkpoint can be damaged maps to a *distinct* typed error — version
    /// skew is not "corruption", truncation is not a bit-flip, and none of
    /// them load.
    #[test]
    fn corruption_table_yields_distinct_typed_errors() {
        let good = sample_checkpoint().encode();
        Checkpoint::decode(&good).unwrap();

        // (mutation, expected-variant name, matcher)
        type Case = (&'static str, Vec<u8>, fn(&PersistError) -> bool);
        let cases: Vec<Case> = vec![
            (
                "bumped version",
                {
                    let mut b = good.clone();
                    b[8] = (CKPT_VERSION + 1) as u8;
                    b
                },
                |e| {
                    matches!(
                        e,
                        PersistError::UnsupportedVersion {
                            found,
                            supported: CKPT_VERSION,
                            ..
                        } if *found == CKPT_VERSION + 1
                    )
                },
            ),
            (
                "unknown magic",
                {
                    let mut b = good.clone();
                    b[0] = b'X';
                    b
                },
                |e| matches!(e, PersistError::BadMagic { .. }),
            ),
            ("truncated header", good[..7].to_vec(), |e| {
                matches!(e, PersistError::Truncated { .. })
            }),
            (
                "truncated mid-frame",
                good[..good.len() - 5].to_vec(),
                |e| matches!(e, PersistError::Truncated { .. }),
            ),
            (
                "truncated at a frame boundary (trailer missing)",
                good[..good.len() - (8 + TRAILER.len())].to_vec(),
                |e| matches!(e, PersistError::Truncated { .. }),
            ),
            (
                "bit-flipped frame payload",
                {
                    let mut b = good.clone();
                    let mid = 12 + 8 + 2; // inside the meta frame payload
                    b[mid] ^= 0x20;
                    b
                },
                |e| matches!(e, PersistError::CrcMismatch { .. }),
            ),
        ];
        let mut seen = Vec::new();
        for (label, bytes, matches_expected) in cases {
            let err = Checkpoint::decode(&bytes)
                .err()
                .unwrap_or_else(|| panic!("{label}: corrupt checkpoint must not decode"));
            assert!(matches_expected(&err), "{label}: wrong variant: {err}");
            seen.push((label, std::mem::discriminant(&err)));
        }
        // The first three damage classes are pairwise distinct variants.
        assert_ne!(seen[0].1, seen[2].1, "version skew != truncation");
        assert_ne!(seen[0].1, seen[5].1, "version skew != bit-flip");
        assert_ne!(seen[2].1, seen[5].1, "truncation != bit-flip");
    }

    #[test]
    fn verify_catches_inconsistent_writer() {
        let mut c = sample_checkpoint();
        c.checksums[0].sum ^= 1;
        let err = c.verify().unwrap_err();
        assert!(matches!(err, PersistError::Malformed { .. }), "{err}");
        // The damage survives a round-trip (CRCs are consistent with the
        // stored lie) and is still caught at verify.
        let back = Checkpoint::decode(&c.encode()).unwrap();
        assert!(back.verify().is_err());
    }

    #[test]
    fn write_is_atomic_and_scan_finds_newest() {
        let dir = temp_dir("scan");
        let c = sample_checkpoint();
        let p1 = dir.join(Checkpoint::file_name("w0", 1));
        let p2 = dir.join(Checkpoint::file_name("w0", 2));
        c.write(&p1).unwrap();
        let mut c2 = c.clone();
        c2.seq = 2;
        c2.write(&p2).unwrap();
        assert!(!p1.with_extension("tmp").exists(), "no tmp residue");

        let scan = latest_checkpoint(&dir, "w0").unwrap();
        let (path, newest) = scan.newest.expect("two valid checkpoints on disk");
        assert_eq!(path, p2);
        assert_eq!(newest.seq, 2);
        assert!(scan.refused.is_empty());
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn scan_refuses_torn_newest_and_falls_back_typed() {
        let dir = temp_dir("torn");
        let c = sample_checkpoint();
        c.write(&dir.join(Checkpoint::file_name("w0", 1))).unwrap();
        // A newer checkpoint, torn mid-write (simulated: truncated bytes
        // under the final name — stronger than anything the atomic rename
        // path can produce).
        let torn = c.encode()[..40].to_vec();
        fs::write(dir.join(Checkpoint::file_name("w0", 2)), &torn).unwrap();

        let scan = latest_checkpoint(&dir, "w0").unwrap();
        let (_, newest) = scan.newest.expect("the older checkpoint is intact");
        assert_eq!(newest.seq, 42);
        assert_eq!(scan.refused.len(), 1, "the torn file is surfaced, typed");
        assert!(
            matches!(scan.refused[0].1, PersistError::Truncated { .. }),
            "{}",
            scan.refused[0].1
        );
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn scan_steps_over_junk_inodes_with_typed_notes() {
        let dir = temp_dir("junk");
        let c = sample_checkpoint();
        c.write(&dir.join(Checkpoint::file_name("w0", 1))).unwrap();
        // A junk subdirectory squatting on a *newer* checkpoint name: the
        // scan must note it and keep going, not die trying to read it.
        fs::create_dir_all(dir.join(Checkpoint::file_name("w0", 3))).unwrap();
        // A 0-byte file under a checkpoint name: opened, refused typed.
        fs::write(dir.join(Checkpoint::file_name("w0", 2)), b"").unwrap();
        // Another worker's checkpoint: noted as foreign, never opened.
        fs::write(dir.join(Checkpoint::file_name("w9", 7)), b"junk").unwrap();
        // A WAL segment sharing the directory: silently irrelevant.
        fs::write(dir.join("requests-0001.wal"), b"junk").unwrap();

        let scan = latest_checkpoint(&dir, "w0").unwrap();
        let (_, newest) = scan.newest.expect("the valid checkpoint survives");
        assert_eq!(newest.seq, 42);
        assert_eq!(scan.refused.len(), 1, "only the 0-byte file was opened");
        assert!(
            matches!(scan.refused[0].1, PersistError::Truncated { .. }),
            "{}",
            scan.refused[0].1
        );
        let mut notes = scan.skipped.clone();
        notes.sort_by_key(|n| format!("{n}"));
        assert_eq!(notes.len(), 2, "{notes:?}");
        assert!(
            notes.iter().any(|n| matches!(n, ScanNote::NotAFile { path }
                    if path.ends_with(Checkpoint::file_name("w0", 3)))),
            "{notes:?}"
        );
        assert!(
            notes
                .iter()
                .any(|n| matches!(n, ScanNote::ForeignName { path }
                    if path.ends_with(Checkpoint::file_name("w9", 7)))),
            "{notes:?}"
        );
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_dir_is_an_empty_scan() {
        let scan = latest_checkpoint(Path::new("/nonexistent/fol-persist-nowhere"), "w0").unwrap();
        assert!(scan.newest.is_none());
        assert!(scan.refused.is_empty());
    }

    #[test]
    fn prune_keeps_the_newest() {
        let dir = temp_dir("prune");
        let c = sample_checkpoint();
        for seq in 1..=5 {
            c.write(&dir.join(Checkpoint::file_name("w0", seq)))
                .unwrap();
        }
        assert_eq!(prune_checkpoints(&dir, "w0", 2), 3);
        let scan = latest_checkpoint(&dir, "w0").unwrap();
        assert!(scan
            .newest
            .unwrap()
            .0
            .ends_with(Checkpoint::file_name("w0", 5)));
        assert!(dir.join(Checkpoint::file_name("w0", 4)).exists());
        assert!(!dir.join(Checkpoint::file_name("w0", 3)).exists());
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn checkpointer_persists_ladder_progress_and_checkpoints_on_commit() {
        use fol_core::recover::{run_transaction_durable, RetryPolicy};
        let dir = temp_dir("hook");
        let (mut m, a, _) = sample_machine();

        // A crashed predecessor left a rung file at rung 1.
        let mut prior = Checkpointer::new(&dir, "w0");
        prior.on_attempt(1, ExecMode::Vector);
        drop(prior);

        let mut ck = Checkpointer::new(&dir, "w0");
        let policy = RetryPolicy::default();
        let modes_seen = std::cell::RefCell::new(Vec::new());
        let (_, report) = run_transaction_durable(&mut m, &policy, &mut ck, |m, mode| {
            modes_seen.borrow_mut().push(mode);
            m.s_write(a.at(0), 123);
            Ok(())
        })
        .unwrap();
        assert_eq!(report.attempts, 1);
        assert_eq!(
            modes_seen.borrow().len(),
            1,
            "resumed ladder runs one attempt"
        );
        // Rung 1 of the default ladder is not rung 0's plain Vector mode.
        assert_ne!(
            modes_seen.borrow()[0],
            ExecMode::Vector,
            "resumed at rung 1"
        );
        assert_eq!(ck.commits(), 1);
        assert_eq!(ck.checkpoints_written(), 1);
        assert!(ck.last_error().is_none(), "{:?}", ck.last_error());
        assert!(!dir.join("w0.rung").exists(), "commit clears the rung file");

        // The checkpoint on disk restores the committed value.
        let scan = latest_checkpoint(&dir, "w0").unwrap();
        let (_, ckpt) = scan.newest.expect("one checkpoint written");
        let (mut m2, a2, _) = sample_machine();
        ckpt.restore_into(&mut m2);
        assert_eq!(m2.s_read(a2.at(0)), 123);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn checkpointer_resume_rung_reads_back_and_tolerates_garbage() {
        let dir = temp_dir("rung");
        let mut ck = Checkpointer::new(&dir, "w0");
        assert_eq!(ck.resume_rung(), 0, "no rung file = fresh ladder");
        ck.on_attempt(3, ExecMode::ScalarTail);
        assert_eq!(ck.resume_rung(), 3);

        fs::write(dir.join("w0.rung"), b"\xFF\xFF").unwrap();
        let mut ck2 = Checkpointer::new(&dir, "w0");
        assert_eq!(ck2.resume_rung(), 0, "corrupt rung file restarts safely");
        assert!(ck2.last_error().is_some(), "…but the refusal is typed");
        fs::remove_dir_all(&dir).ok();
    }
}
