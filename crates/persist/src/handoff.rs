//! Shard-handoff images: the transfer format a rebalance ships between
//! server processes.
//!
//! When a cluster moves one key-space shard from its current owner to a new
//! one, the moving state is *logical* — the shard's stored keys per
//! workload class — not a physical memory image: the source and target may
//! run different worker counts, table geometries, or checkpoint histories,
//! so a region-level image (the [`crate::delta`] form) would splice the
//! wrong layout. What a handoff needs from the durability layer is the
//! *framing discipline* deltas established: magic + version header, CRC-32
//! frames, typed refusals for every way bytes can lie, and a recorded
//! content digest so the installer can prove byte-for-byte fidelity
//! end-to-end.
//!
//! # Format (version 2; version 1 still decodes)
//!
//! ```text
//! magic "FOLHOFF\0" (8 bytes)  version u32 LE
//! frame: meta      — shard, shards, source_epoch, wal_floor,
//!                    section count, dedupe-record count (v2)
//! frame: section ×N — class name, content digest, key count, keys i64 ×K
//! frame: dedupe ×M  — client id, epoch, seq, opaque outcome bytes (v2)
//! frame: trailer   — literal "END"
//! ```
//!
//! Version 2 adds the source's per-client **dedupe outcome cache** for the
//! moving shard: each record is a completed request's identity
//! (`client_id`, the map epoch it was admitted under, `seq`) plus its
//! outcome in the *serving layer's own encoding* — opaque bytes to this
//! crate, shipped and installed verbatim. Shipping the cache means a
//! client whose request completed on the old owner can retry against the
//! new owner (still stamped with the old epoch) and get the cached outcome
//! replayed instead of a `WrongEpoch` refusal forcing a re-execute. A
//! version-1 image decodes as an image with no dedupe records.
//!
//! Every section records the content digest its keys must hash to under
//! the *caller's* digest function (the serving layer's order-insensitive
//! `keys_digest`); [`HandoffImage::verify`] re-hashes after decode, so a
//! flipped bit that survives CRC-32 (or a bug in transit code) is still a
//! typed refusal, never a silently divergent install. The image is a byte
//! string, not a file: it travels inside one wire frame, and the target's
//! own WAL + checkpoint cadence make it durable on install.

use crate::frame::{next_frame, push_frame, Dec, Enc, Frame};
use crate::PersistError;
use fol_vm::Word;

/// First bytes of every handoff image.
pub const HANDOFF_MAGIC: &[u8; 8] = b"FOLHOFF\0";
/// The handoff format version this build writes. Version 1 (no dedupe
/// records) is still decoded.
pub const HANDOFF_VERSION: u32 = 2;

const TRAILER: &[u8] = b"END";

/// One workload class's slice of the moving shard.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HandoffSection {
    /// The workload class the keys belong to (e.g. `"chain"`).
    pub class: String,
    /// The caller's content digest of `keys` (order-insensitive), recorded
    /// at extraction and re-checked at install.
    pub digest: u64,
    /// The shard's stored keys for this class, sorted ascending.
    pub keys: Vec<Word>,
}

/// One shipped dedupe record: a completed request's cached outcome,
/// moving with its shard so a client's in-flight retry survives the move
/// without waiting for an epoch refresh.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HandoffDedupe {
    /// The client that issued the request.
    pub client_id: u64,
    /// The map epoch the request was admitted under on the *source* — part
    /// of the dedupe identity, so the installed record answers exactly the
    /// retry that carries the old stamp.
    pub epoch: u64,
    /// The client's request sequence number.
    pub seq: u64,
    /// The cached outcome in the serving layer's own wire encoding —
    /// opaque to this crate, shipped and installed verbatim.
    pub outcome: Vec<u8>,
}

/// A complete shard-handoff image: which shard is moving, under which map
/// epoch it was extracted, and its per-class contents.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HandoffImage {
    /// The cluster shard being moved.
    pub shard: u32,
    /// Total cluster shard count the key space is partitioned into.
    pub shards: u32,
    /// The map epoch the source was serving when it extracted this image
    /// (the shard was frozen and drained first, so the image is the
    /// complete acknowledged state of the shard under this epoch).
    pub source_epoch: u64,
    /// The source's request-log frontier at extraction: every acknowledged
    /// request at or below this sequence is reflected in the image.
    pub wal_floor: u64,
    /// Per-class contents.
    pub sections: Vec<HandoffSection>,
    /// The source's cached request outcomes for this shard (empty when
    /// decoding a version-1 image).
    pub dedupe: Vec<HandoffDedupe>,
}

impl HandoffImage {
    /// Serializes the image (magic, version, CRC-framed payload).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(HANDOFF_MAGIC);
        out.extend_from_slice(&HANDOFF_VERSION.to_le_bytes());

        let mut meta = Enc::new();
        meta.u32(self.shard);
        meta.u32(self.shards);
        meta.u64(self.source_epoch);
        meta.u64(self.wal_floor);
        meta.u32(self.sections.len() as u32);
        meta.u32(self.dedupe.len() as u32);
        push_frame(&mut out, &meta.into_bytes());

        for s in &self.sections {
            let mut e = Enc::new();
            e.str(&s.class);
            e.u64(s.digest);
            e.u32(s.keys.len() as u32);
            for &k in &s.keys {
                e.i64(k);
            }
            push_frame(&mut out, &e.into_bytes());
        }
        for r in &self.dedupe {
            let mut e = Enc::new();
            e.u64(r.client_id);
            e.u64(r.epoch);
            e.u64(r.seq);
            e.u32(r.outcome.len() as u32);
            for &b in &r.outcome {
                e.u8(b);
            }
            push_frame(&mut out, &e.into_bytes());
        }
        push_frame(&mut out, TRAILER);
        out
    }

    /// Decodes an image, refusing truncation, CRC mismatches, version skew
    /// and structural garbage with distinct typed errors. Content digests
    /// are *recorded*, not yet checked — call [`HandoffImage::verify`] with
    /// the serving layer's digest function.
    pub fn decode(bytes: &[u8]) -> Result<Self, PersistError> {
        let what = "handoff image";
        if bytes.len() < HANDOFF_MAGIC.len() + 4 {
            return Err(PersistError::Truncated {
                what: what.into(),
                offset: 0,
                needed: HANDOFF_MAGIC.len() + 4,
                available: bytes.len(),
            });
        }
        if &bytes[..8] != HANDOFF_MAGIC {
            return Err(PersistError::BadMagic {
                what: what.into(),
                found: bytes[..8].to_vec(),
            });
        }
        let version = u32::from_le_bytes(bytes[8..12].try_into().unwrap());
        if version == 0 || version > HANDOFF_VERSION {
            return Err(PersistError::UnsupportedVersion {
                what: what.into(),
                found: version,
                supported: HANDOFF_VERSION,
            });
        }
        let mut pos = 12;

        let meta = match next_frame(bytes, &mut pos, "handoff meta")? {
            Frame::Ok(p) => p,
            Frame::End => {
                return Err(PersistError::Truncated {
                    what: "handoff meta frame".into(),
                    offset: pos,
                    needed: 8,
                    available: 0,
                })
            }
        };
        let mut d = Dec::new(meta);
        let shard = d.u32("handoff.shard")?;
        let shards = d.u32("handoff.shards")?;
        let source_epoch = d.u64("handoff.source_epoch")?;
        let wal_floor = d.u64("handoff.wal_floor")?;
        let n_sections = d.u32("handoff.sections.len")? as usize;
        let n_dedupe = if version >= 2 {
            d.u32("handoff.dedupe.len")? as usize
        } else {
            0
        };
        d.finish("handoff meta")?;
        if shards == 0 || shard >= shards {
            return Err(PersistError::Malformed {
                what: format!("handoff image: shard {shard} out of range of {shards}"),
            });
        }

        let mut sections = Vec::with_capacity(n_sections.min(64));
        for i in 0..n_sections {
            let payload = match next_frame(bytes, &mut pos, "handoff section")? {
                Frame::Ok(p) => p,
                Frame::End => {
                    return Err(PersistError::Truncated {
                        what: format!("handoff section {i} of {n_sections}"),
                        offset: pos,
                        needed: 8,
                        available: 0,
                    })
                }
            };
            let mut d = Dec::new(payload);
            let class = d.str("section.class")?.to_string();
            let digest = d.u64("section.digest")?;
            let count = d.u32("section.keys.len")? as usize;
            let mut keys = Vec::with_capacity(count.min(1 << 20));
            for _ in 0..count {
                keys.push(d.i64("section.key")?);
            }
            d.finish("handoff section")?;
            sections.push(HandoffSection {
                class,
                digest,
                keys,
            });
        }

        let mut dedupe = Vec::with_capacity(n_dedupe.min(1 << 16));
        for i in 0..n_dedupe {
            let payload = match next_frame(bytes, &mut pos, "handoff dedupe")? {
                Frame::Ok(p) => p,
                Frame::End => {
                    return Err(PersistError::Truncated {
                        what: format!("handoff dedupe record {i} of {n_dedupe}"),
                        offset: pos,
                        needed: 8,
                        available: 0,
                    })
                }
            };
            let mut d = Dec::new(payload);
            let client_id = d.u64("dedupe.client_id")?;
            let epoch = d.u64("dedupe.epoch")?;
            let seq = d.u64("dedupe.seq")?;
            let len = d.u32("dedupe.outcome.len")? as usize;
            let mut outcome = Vec::with_capacity(len.min(1 << 16));
            for _ in 0..len {
                outcome.push(d.u8("dedupe.outcome")?);
            }
            d.finish("handoff dedupe record")?;
            dedupe.push(HandoffDedupe {
                client_id,
                epoch,
                seq,
                outcome,
            });
        }

        match next_frame(bytes, &mut pos, "handoff trailer")? {
            Frame::Ok(p) if p == TRAILER => {}
            Frame::Ok(_) => {
                return Err(PersistError::Malformed {
                    what: "handoff image: trailer frame is not END".into(),
                })
            }
            Frame::End => {
                return Err(PersistError::Truncated {
                    what: "handoff trailer".into(),
                    offset: pos,
                    needed: 8,
                    available: 0,
                })
            }
        }

        Ok(HandoffImage {
            shard,
            shards,
            source_epoch,
            wal_floor,
            sections,
            dedupe,
        })
    }

    /// Re-hashes every section's keys with the caller's digest function and
    /// refuses (typed) any section whose contents do not match its recorded
    /// digest — the end-to-end check that makes a handoff install provable.
    pub fn verify(&self, digest_of: impl Fn(&[Word]) -> u64) -> Result<(), PersistError> {
        for s in &self.sections {
            let got = digest_of(&s.keys);
            if got != s.digest {
                return Err(PersistError::Malformed {
                    what: format!(
                        "handoff image: section '{}' hashes to {got:#018x}, recorded {:#018x}",
                        s.class, s.digest
                    ),
                });
            }
        }
        Ok(())
    }

    /// Total keys across all sections.
    pub fn key_count(&self) -> usize {
        self.sections.iter().map(|s| s.keys.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sum_digest(keys: &[Word]) -> u64 {
        keys.iter().fold(0u64, |a, &k| a.wrapping_add(k as u64))
    }

    fn image() -> HandoffImage {
        let keys: Vec<Word> = vec![3, 9, 12, 40];
        HandoffImage {
            shard: 2,
            shards: 8,
            source_epoch: 5,
            wal_floor: 77,
            sections: vec![
                HandoffSection {
                    class: "chain".into(),
                    digest: sum_digest(&keys),
                    keys,
                },
                HandoffSection {
                    class: "bst".into(),
                    digest: 0,
                    keys: vec![],
                },
            ],
            dedupe: vec![
                HandoffDedupe {
                    client_id: 7,
                    epoch: 5,
                    seq: 31,
                    outcome: vec![0xAA, 0, 0xFF],
                },
                HandoffDedupe {
                    client_id: 9,
                    epoch: 4,
                    seq: 2,
                    outcome: vec![],
                },
            ],
        }
    }

    #[test]
    fn round_trips_and_verifies() {
        let img = image();
        let bytes = img.encode();
        let back = HandoffImage::decode(&bytes).expect("decode");
        assert_eq!(back, img);
        assert_eq!(back.key_count(), 4);
        assert_eq!(back.dedupe.len(), 2);
        back.verify(sum_digest).expect("digests match");
    }

    /// A version-1 image (written before dedupe shipping existed) still
    /// decodes: same frames, five-field meta, no dedupe records.
    #[test]
    fn version_one_images_still_decode() {
        let img = image();
        let mut bytes = Vec::new();
        bytes.extend_from_slice(HANDOFF_MAGIC);
        bytes.extend_from_slice(&1u32.to_le_bytes());
        let mut meta = Enc::new();
        meta.u32(img.shard);
        meta.u32(img.shards);
        meta.u64(img.source_epoch);
        meta.u64(img.wal_floor);
        meta.u32(img.sections.len() as u32);
        push_frame(&mut bytes, &meta.into_bytes());
        for s in &img.sections {
            let mut e = Enc::new();
            e.str(&s.class);
            e.u64(s.digest);
            e.u32(s.keys.len() as u32);
            for &k in &s.keys {
                e.i64(k);
            }
            push_frame(&mut bytes, &e.into_bytes());
        }
        push_frame(&mut bytes, TRAILER);

        let back = HandoffImage::decode(&bytes).expect("v1 decodes");
        assert_eq!(back.sections, img.sections);
        assert_eq!(back.source_epoch, img.source_epoch);
        assert!(back.dedupe.is_empty());
        back.verify(sum_digest).expect("digests match");
    }

    #[test]
    fn refusals_are_typed() {
        let img = image();
        let bytes = img.encode();

        // Truncation anywhere is Truncated, never a partial image.
        for cut in [0, 7, 11, 13, bytes.len() - 1] {
            assert!(matches!(
                HandoffImage::decode(&bytes[..cut]),
                Err(PersistError::Truncated { .. })
            ));
        }
        // A flipped payload byte is a CRC mismatch.
        let mut flipped = bytes.clone();
        let at = flipped.len() - 12; // inside the trailer frame payload
        flipped[at] ^= 0x40;
        assert!(matches!(
            HandoffImage::decode(&flipped),
            Err(PersistError::CrcMismatch { .. }) | Err(PersistError::Malformed { .. })
        ));
        // Wrong magic and wrong version are their own refusals.
        let mut bad_magic = bytes.clone();
        bad_magic[0] ^= 0xFF;
        assert!(matches!(
            HandoffImage::decode(&bad_magic),
            Err(PersistError::BadMagic { .. })
        ));
        let mut bad_version = bytes.clone();
        bad_version[8] = 99;
        assert!(matches!(
            HandoffImage::decode(&bad_version),
            Err(PersistError::UnsupportedVersion { .. })
        ));
        // A section that lies about its digest is refused by verify.
        let mut lied = img.clone();
        lied.sections[0].digest ^= 1;
        let back = HandoffImage::decode(&lied.encode()).expect("structurally fine");
        assert!(matches!(
            back.verify(sum_digest),
            Err(PersistError::Malformed { .. })
        ));
    }

    #[test]
    fn out_of_range_shard_is_malformed() {
        let mut img = image();
        img.shard = 8;
        assert!(matches!(
            HandoffImage::decode(&img.encode()),
            Err(PersistError::Malformed { .. })
        ));
    }
}
