//! The shared on-disk vocabulary: little-endian scalars, CRC-32 and
//! length-prefixed frames.
//!
//! Both durable artifacts — checkpoints ([`crate::checkpoint`]) and WAL
//! segments ([`crate::wal`]) — are sequences of **frames** over a small
//! fixed header. A frame is
//!
//! ```text
//! [len: u32 LE] [crc: u32 LE] [payload: len bytes]
//! ```
//!
//! where `crc` is the CRC-32 (IEEE 802.3 polynomial, the same content-
//! hashing discipline SIMD dedup-chunking systems use to detect torn stored
//! data) of exactly the payload bytes. The reader refuses to hand back a
//! payload whose length field runs past the file (truncation) or whose CRC
//! disagrees (bit-flip / tear), each as a *distinct* typed
//! [`crate::PersistError`] — never a silently short or silently wrong
//! record.

use crate::PersistError;

/// CRC-32 (IEEE, reflected, `0xEDB88320`) over `bytes`, starting from the
/// conventional all-ones preset. Table-driven; the table is built once.
pub fn crc32(bytes: &[u8]) -> u32 {
    // Slicing-by-8: eight derived tables let the loop fold one u64 per
    // step instead of one byte, which matters because every checkpoint
    // region and log record pays this on both the write and read side.
    fn tables() -> &'static [[u32; 256]; 8] {
        use std::sync::OnceLock;
        static TABLES: OnceLock<[[u32; 256]; 8]> = OnceLock::new();
        TABLES.get_or_init(|| {
            let mut t = [[0u32; 256]; 8];
            for (i, e) in t[0].iter_mut().enumerate() {
                let mut c = i as u32;
                for _ in 0..8 {
                    c = if c & 1 != 0 {
                        0xEDB8_8320 ^ (c >> 1)
                    } else {
                        c >> 1
                    };
                }
                *e = c;
            }
            for k in 1..8 {
                for i in 0..256usize {
                    let prev = t[k - 1][i];
                    t[k][i] = t[0][(prev & 0xFF) as usize] ^ (prev >> 8);
                }
            }
            t
        })
    }
    let t = tables();
    let mut c = !0u32;
    let mut chunks = bytes.chunks_exact(8);
    for ch in &mut chunks {
        let lo = u32::from_le_bytes([ch[0], ch[1], ch[2], ch[3]]) ^ c;
        let hi = u32::from_le_bytes([ch[4], ch[5], ch[6], ch[7]]);
        c = t[7][(lo & 0xFF) as usize]
            ^ t[6][((lo >> 8) & 0xFF) as usize]
            ^ t[5][((lo >> 16) & 0xFF) as usize]
            ^ t[4][(lo >> 24) as usize]
            ^ t[3][(hi & 0xFF) as usize]
            ^ t[2][((hi >> 8) & 0xFF) as usize]
            ^ t[1][((hi >> 16) & 0xFF) as usize]
            ^ t[0][(hi >> 24) as usize];
    }
    for &b in chunks.remainder() {
        c = t[0][((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    !c
}

/// A growable byte buffer with little-endian primitive encoders — the
/// payload side of a frame.
#[derive(Default)]
pub struct Enc {
    buf: Vec<u8>,
}

impl Enc {
    /// An empty encoder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a `u8`.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a `u32`, little-endian.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `u64`, little-endian.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends an `i64`, little-endian.
    pub fn i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a length-prefixed UTF-8 string.
    pub fn str(&mut self, s: &str) {
        self.u32(s.len() as u32);
        self.buf.extend_from_slice(s.as_bytes());
    }

    /// The encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }
}

/// A cursor over a payload with little-endian primitive decoders. Every
/// read is bounds-checked and a short payload is a typed
/// [`PersistError::Malformed`] naming what was being read.
pub struct Dec<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Dec<'a> {
    /// A decoder over `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    fn take(&mut self, n: usize, what: &str) -> Result<&'a [u8], PersistError> {
        let end = self.pos.checked_add(n).filter(|&e| e <= self.buf.len());
        match end {
            Some(end) => {
                let s = &self.buf[self.pos..end];
                self.pos = end;
                Ok(s)
            }
            None => Err(PersistError::Malformed {
                what: format!(
                    "{what}: need {n} byte(s) at offset {} of a {}-byte payload",
                    self.pos,
                    self.buf.len()
                ),
            }),
        }
    }

    /// Reads a `u8`.
    pub fn u8(&mut self, what: &str) -> Result<u8, PersistError> {
        Ok(self.take(1, what)?[0])
    }

    /// Reads a little-endian `u32`.
    pub fn u32(&mut self, what: &str) -> Result<u32, PersistError> {
        Ok(u32::from_le_bytes(self.take(4, what)?.try_into().unwrap()))
    }

    /// Reads a little-endian `u64`.
    pub fn u64(&mut self, what: &str) -> Result<u64, PersistError> {
        Ok(u64::from_le_bytes(self.take(8, what)?.try_into().unwrap()))
    }

    /// Reads a little-endian `i64`.
    pub fn i64(&mut self, what: &str) -> Result<i64, PersistError> {
        Ok(i64::from_le_bytes(self.take(8, what)?.try_into().unwrap()))
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn str(&mut self, what: &str) -> Result<String, PersistError> {
        let len = self.u32(what)? as usize;
        let bytes = self.take(len, what)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| PersistError::Malformed {
            what: format!("{what}: invalid UTF-8"),
        })
    }

    /// True when every byte has been consumed.
    pub fn at_end(&self) -> bool {
        self.pos == self.buf.len()
    }

    /// Requires the payload to be fully consumed — trailing garbage in a
    /// frame is corruption the CRC cannot catch (it was framed in), so the
    /// decoders catch it structurally.
    pub fn finish(self, what: &str) -> Result<(), PersistError> {
        if self.at_end() {
            Ok(())
        } else {
            Err(PersistError::Malformed {
                what: format!(
                    "{what}: {} trailing byte(s) after the last field",
                    self.buf.len() - self.pos
                ),
            })
        }
    }
}

/// Appends one CRC frame around `payload` to `out`.
pub fn push_frame(out: &mut Vec<u8>, payload: &[u8]) {
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc32(payload).to_le_bytes());
    out.extend_from_slice(payload);
}

/// What [`next_frame`] found at the cursor.
#[derive(Debug)]
pub enum Frame<'a> {
    /// A whole, CRC-verified payload; the cursor has advanced past it.
    Ok(&'a [u8]),
    /// Clean end of input: the cursor sat exactly at the end.
    End,
}

/// Reads the frame at `*pos` in `buf`, advancing `*pos` past it.
///
/// Distinct failures are distinct errors: a header or payload that runs past
/// the end of the buffer is [`PersistError::Truncated`] (a torn write); a
/// complete frame whose CRC disagrees is [`PersistError::CrcMismatch`] (a
/// bit-flip). `context` names the artifact for the error message.
pub fn next_frame<'a>(
    buf: &'a [u8],
    pos: &mut usize,
    context: &str,
) -> Result<Frame<'a>, PersistError> {
    if *pos == buf.len() {
        return Ok(Frame::End);
    }
    let header_end = pos.checked_add(8).filter(|&e| e <= buf.len());
    let Some(header_end) = header_end else {
        return Err(PersistError::Truncated {
            what: format!("{context}: frame header"),
            offset: *pos,
            needed: 8,
            available: buf.len() - *pos,
        });
    };
    let len = u32::from_le_bytes(buf[*pos..*pos + 4].try_into().unwrap()) as usize;
    let crc = u32::from_le_bytes(buf[*pos + 4..header_end].try_into().unwrap());
    let payload_end = header_end.checked_add(len).filter(|&e| e <= buf.len());
    let Some(payload_end) = payload_end else {
        return Err(PersistError::Truncated {
            what: format!("{context}: frame payload"),
            offset: header_end,
            needed: len,
            available: buf.len() - header_end,
        });
    };
    let payload = &buf[header_end..payload_end];
    let actual = crc32(payload);
    if actual != crc {
        return Err(PersistError::CrcMismatch {
            what: context.to_string(),
            offset: *pos,
            expected: crc,
            actual,
        });
    }
    *pos = payload_end;
    Ok(Frame::Ok(payload))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_matches_known_vectors() {
        // The canonical IEEE check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn frames_round_trip() {
        let mut buf = Vec::new();
        push_frame(&mut buf, b"hello");
        push_frame(&mut buf, b"");
        push_frame(&mut buf, b"world!");
        let mut pos = 0;
        let mut seen: Vec<Vec<u8>> = Vec::new();
        while let Frame::Ok(p) = next_frame(&buf, &mut pos, "test").unwrap() {
            seen.push(p.to_vec());
        }
        assert_eq!(
            seen,
            vec![b"hello".to_vec(), b"".to_vec(), b"world!".to_vec()]
        );
    }

    #[test]
    fn truncated_header_and_payload_are_distinct_from_crc_mismatch() {
        let mut buf = Vec::new();
        push_frame(&mut buf, b"payload");
        // Torn mid-header.
        let mut pos = 0;
        let torn_header = next_frame(&buf[..4], &mut pos, "t").unwrap_err();
        assert!(
            matches!(torn_header, PersistError::Truncated { .. }),
            "{torn_header}"
        );
        // Torn mid-payload.
        let mut pos = 0;
        let torn_payload = next_frame(&buf[..buf.len() - 2], &mut pos, "t").unwrap_err();
        assert!(
            matches!(torn_payload, PersistError::Truncated { .. }),
            "{torn_payload}"
        );
        // Bit-flipped payload: whole frame present, wrong CRC.
        let mut flipped = buf.clone();
        let last = flipped.len() - 1;
        flipped[last] ^= 0x40;
        let mut pos = 0;
        let crc = next_frame(&flipped, &mut pos, "t").unwrap_err();
        assert!(matches!(crc, PersistError::CrcMismatch { .. }), "{crc}");
    }

    #[test]
    fn decoder_rejects_short_reads_and_trailing_bytes() {
        let mut e = Enc::new();
        e.u64(7);
        e.str("name");
        let bytes = e.into_bytes();
        let mut d = Dec::new(&bytes);
        assert_eq!(d.u64("n").unwrap(), 7);
        assert_eq!(d.str("s").unwrap(), "name");
        assert!(d.at_end());

        let mut short = Dec::new(&bytes[..4]);
        let err = short.u64("n").unwrap_err();
        assert!(matches!(err, PersistError::Malformed { .. }), "{err}");

        let mut trailing = Dec::new(&bytes);
        let _ = trailing.u64("n").unwrap();
        let err = trailing.finish("payload").unwrap_err();
        assert!(err.to_string().contains("trailing"), "{err}");
    }
}
