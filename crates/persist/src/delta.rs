//! Delta checkpoints: the incremental form of [`Checkpoint`].
//!
//! A full checkpoint rewrites every tracked region whole; at production
//! table sizes that rewrite is the dominant durability cost even when a
//! cadence touched 1% of the store. The integrity layer already maintains a
//! per-region digest on every store (O(1) incremental), so the machine can
//! name exactly which regions changed since the previous generation — a
//! delta checkpoint serializes *only those regions*, chained to its parent
//! generation by id and by the parent's **state digest** (the XOR of its
//! per-region checksums), making a chain self-describing: a link whose
//! parent is missing, torn, or has the wrong digest is a typed refusal at
//! plan time, never a silent mis-splice.
//!
//! # On-disk format (version 1)
//!
//! ```text
//! magic "FOLDCKP\0" (8 bytes)  version u32 LE
//! frame: meta      — seq, parent_seq, parent_digest, counters,
//!                    applied set, dirty-region/checksum counts
//! frame: region ×N — base u64, len u64, words i64 ×len   (dirty only)
//! frame: checksums — (name, base, len, digest) ×M        (ALL tracked)
//! frame: trailer   — literal "END"
//! ```
//!
//! The checksum frame covers **every** tracked region, not just the dirty
//! ones: clean regions inherit the parent's recorded digest. That makes the
//! delta's own state digest computable without touching the parent, and it
//! makes materialization verifiable end-to-end — after overlaying the chain
//! onto its base image, every region must hash to the head's checksum.
//!
//! Files are named `{prefix}-{seq:020}.delta`. The extension is
//! deliberately **not** a suffix of `.ckpt`, so the full-image scan
//! ([`crate::latest_checkpoint`]) never opens (and refuses) delta files.
//!
//! # Rot interaction
//!
//! Dirtiness is judged by the *incremental* sums, which bit-rot silently
//! stales. A rotted-but-unstored region therefore looks clean and is
//! **not** re-captured: the delta inherits the parent's digest, and
//! materialization restores the parent's (pre-rot) bytes. Rot does not
//! poison the chain — the scrubber repairs the live machine, the chain
//! keeps certifying committed state.

use crate::checkpoint::{write_atomic_opts, Checkpoint};
use crate::frame::{next_frame, push_frame, Dec, Enc, Frame};
use crate::PersistError;
use fol_vm::integrity::{digest_words, TrackedRegion};
use fol_vm::{Machine, Region, Snapshot, Word};
use std::fs;
use std::path::Path;

/// First bytes of every delta checkpoint file.
pub const DELTA_MAGIC: &[u8; 8] = b"FOLDCKP\0";
/// The delta format version this build writes and reads.
pub const DELTA_VERSION: u32 = 1;

const TRAILER: &[u8] = b"END";

/// The state digest of a checksum set: XOR of the per-region digests. Two
/// generations with the same tracked regions and the same bytes have the
/// same state digest; a delta names its parent by this value so a chain
/// cannot silently splice onto the wrong image.
pub fn state_digest(checksums: &[TrackedRegion]) -> u64 {
    checksums.iter().fold(0, |acc, t| acc ^ t.sum)
}

/// One incremental image: the dirty regions since a parent generation,
/// plus enough metadata to verify the link and the materialized result.
/// See the module docs for the on-disk format.
#[derive(Clone, Debug, PartialEq)]
pub struct DeltaCheckpoint {
    /// Monotonic position of this image (same counter as full checkpoints;
    /// generations of either kind share one sequence).
    pub seq: u64,
    /// Generation id of the parent this delta applies on top of. Always
    /// strictly less than `seq` (enforced at decode), so chains terminate.
    pub parent_seq: u64,
    /// The parent's [`state_digest`] at capture time: the link check.
    pub parent_digest: u64,
    /// Host-side counters, as in [`Checkpoint::counters`] — the full set,
    /// not a diff (they are tiny).
    pub counters: Vec<(String, u64)>,
    /// Request sequence numbers whose effects the *materialized* image
    /// contains — the full set, as in [`Checkpoint::applied`].
    pub applied: Vec<u64>,
    /// The byte-exact contents of the regions dirty since the parent.
    pub snapshot: Snapshot,
    /// Digests of **all** tracked regions at capture time: fresh
    /// [`digest_words`] for dirty regions, the parent's recorded digest for
    /// clean ones.
    pub checksums: Vec<TrackedRegion>,
}

impl DeltaCheckpoint {
    /// Captures the regions of `m` that are dirty relative to `parent_sums`
    /// (the parent generation's checksum set), using the incremental
    /// digests — O(tracked regions) to *decide*, and only the dirty
    /// regions are rescanned and serialized.
    pub fn capture(
        m: &Machine,
        seq: u64,
        parent_seq: u64,
        parent_sums: &[TrackedRegion],
        counters: Vec<(String, u64)>,
        applied: Vec<u64>,
    ) -> Self {
        let dirty = m.dirty_regions_since(parent_sums);
        let checksums = m
            .tracked_regions()
            .iter()
            .map(|t| {
                let sum = if dirty.contains(&t.region) {
                    digest_words(t.region.base(), &m.mem().read_region(t.region))
                } else {
                    // Clean ⇒ the parent recorded this exact digest (that is
                    // the cleanliness predicate); inherit it verbatim.
                    parent_sums
                        .iter()
                        .find(|p| p.region == t.region)
                        .map(|p| p.sum)
                        .unwrap_or(t.sum)
                };
                TrackedRegion {
                    name: t.name.clone(),
                    region: t.region,
                    sum,
                }
            })
            .collect();
        DeltaCheckpoint {
            seq,
            parent_seq,
            parent_digest: state_digest(parent_sums),
            counters,
            applied,
            snapshot: Snapshot::capture(m.mem(), &dirty),
            checksums,
        }
    }

    /// This delta's own [`state_digest`] — what a child delta must name as
    /// its `parent_digest`.
    pub fn state_digest(&self) -> u64 {
        state_digest(&self.checksums)
    }

    /// Serializes to the version-1 byte format.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(DELTA_MAGIC);
        out.extend_from_slice(&DELTA_VERSION.to_le_bytes());

        let mut meta = Enc::new();
        meta.u64(self.seq);
        meta.u64(self.parent_seq);
        meta.u64(self.parent_digest);
        meta.u32(self.counters.len() as u32);
        for (name, v) in &self.counters {
            meta.str(name);
            meta.u64(*v);
        }
        meta.u32(self.applied.len() as u32);
        for &s in &self.applied {
            meta.u64(s);
        }
        meta.u32(self.snapshot.parts().len() as u32);
        meta.u32(self.checksums.len() as u32);
        push_frame(&mut out, &meta.into_bytes());

        for (region, words) in self.snapshot.parts() {
            let mut e = Enc::new();
            e.u64(region.base() as u64);
            e.u64(words.len() as u64);
            for &w in words {
                e.i64(w);
            }
            push_frame(&mut out, &e.into_bytes());
        }

        let mut sums = Enc::new();
        for t in &self.checksums {
            sums.str(&t.name);
            sums.u64(t.region.base() as u64);
            sums.u64(t.region.len() as u64);
            sums.u64(t.sum);
        }
        push_frame(&mut out, &sums.into_bytes());
        push_frame(&mut out, TRAILER);
        out
    }

    /// Deserializes the version-1 byte format with the same typed-refusal
    /// table as [`Checkpoint::decode`], plus one structural rule: a delta
    /// whose `parent_seq` is not strictly below its own `seq` is
    /// [`PersistError::Malformed`] (a self-parent or forward edge would
    /// make chain walks non-terminating).
    pub fn decode(bytes: &[u8]) -> Result<Self, PersistError> {
        let header = DELTA_MAGIC.len() + 4;
        if bytes.len() < header {
            return Err(PersistError::Truncated {
                what: "delta checkpoint: header".into(),
                offset: 0,
                needed: header,
                available: bytes.len(),
            });
        }
        if &bytes[..DELTA_MAGIC.len()] != DELTA_MAGIC {
            return Err(PersistError::BadMagic {
                what: "delta checkpoint".into(),
                found: bytes[..DELTA_MAGIC.len()].to_vec(),
            });
        }
        let version = u32::from_le_bytes(bytes[8..12].try_into().unwrap());
        if version != DELTA_VERSION {
            return Err(PersistError::UnsupportedVersion {
                what: "delta checkpoint".into(),
                found: version,
                supported: DELTA_VERSION,
            });
        }
        let mut pos = header;
        let meta = require_frame(bytes, &mut pos, "delta checkpoint: meta frame")?;
        let mut d = Dec::new(meta);
        let seq = d.u64("delta.seq")?;
        let parent_seq = d.u64("delta.parent_seq")?;
        let parent_digest = d.u64("delta.parent_digest")?;
        if parent_seq >= seq {
            return Err(PersistError::Malformed {
                what: format!(
                    "delta checkpoint: parent_seq {parent_seq} is not below seq {seq} \
                     (chains must walk strictly backwards)"
                ),
            });
        }
        let n_counters = d.u32("delta.counters.len")? as usize;
        let mut counters = Vec::with_capacity(n_counters.min(1024));
        for _ in 0..n_counters {
            let name = d.str("delta.counter.name")?;
            let v = d.u64("delta.counter.value")?;
            counters.push((name, v));
        }
        let n_applied = d.u32("delta.applied.len")? as usize;
        let mut applied = Vec::with_capacity(n_applied.min(1024));
        for _ in 0..n_applied {
            applied.push(d.u64("delta.applied.seq")?);
        }
        let n_regions = d.u32("delta.regions.len")? as usize;
        let n_sums = d.u32("delta.checksums.len")? as usize;
        d.finish("delta checkpoint: meta frame")?;

        let mut parts: Vec<(Region, Vec<Word>)> = Vec::with_capacity(n_regions.min(1024));
        for i in 0..n_regions {
            let payload = require_frame(bytes, &mut pos, "delta checkpoint: region frame")?;
            let mut d = Dec::new(payload);
            let what = format!("delta region[{i}]");
            let base = d.u64(&what)? as usize;
            let len = d.u64(&what)? as usize;
            let mut words = Vec::with_capacity(len.min(1 << 20));
            for _ in 0..len {
                words.push(d.i64(&what)?);
            }
            d.finish("delta checkpoint: region frame")?;
            parts.push((Region::from_raw(base, len), words));
        }

        let sums_payload = require_frame(bytes, &mut pos, "delta checkpoint: checksum frame")?;
        let mut d = Dec::new(sums_payload);
        let mut checksums = Vec::with_capacity(n_sums.min(1024));
        for _ in 0..n_sums {
            let name = d.str("delta.checksum.name")?;
            let base = d.u64("delta.checksum.base")? as usize;
            let len = d.u64("delta.checksum.len")? as usize;
            let sum = d.u64("delta.checksum.sum")?;
            checksums.push(TrackedRegion {
                name,
                region: Region::from_raw(base, len),
                sum,
            });
        }
        d.finish("delta checkpoint: checksum frame")?;

        let trailer = require_frame(bytes, &mut pos, "delta checkpoint: trailer frame")?;
        if trailer != TRAILER {
            return Err(PersistError::Malformed {
                what: format!("delta checkpoint: trailer is {trailer:02x?}, expected \"END\""),
            });
        }
        if pos != bytes.len() {
            return Err(PersistError::Malformed {
                what: format!(
                    "delta checkpoint: {} byte(s) after the trailer frame",
                    bytes.len() - pos
                ),
            });
        }
        Ok(DeltaCheckpoint {
            seq,
            parent_seq,
            parent_digest,
            counters,
            applied,
            snapshot: Snapshot::from_parts(parts),
            checksums,
        })
    }

    /// Cross-checks the stored digests against the stored dirty-region
    /// contents, as [`Checkpoint::verify`] does for full images. Clean
    /// regions (checksummed but not captured) are necessarily skipped here;
    /// they are certified by [`materialize`]'s end-to-end check instead.
    pub fn verify(&self) -> Result<(), PersistError> {
        for t in &self.checksums {
            let Some((_, words)) = self
                .snapshot
                .parts()
                .iter()
                .find(|(r, _)| r.base() == t.region.base() && r.len() == t.region.len())
            else {
                continue;
            };
            let actual = digest_words(t.region.base(), words);
            if actual != t.sum {
                return Err(PersistError::Malformed {
                    what: format!(
                        "delta checkpoint: region \"{}\" digest {actual:#018x} does not match \
                         stored checksum {:#018x} — the delta was written inconsistent",
                        t.name, t.sum
                    ),
                });
            }
        }
        Ok(())
    }

    /// Serializes and commits atomically to `path` (temp file + fsync +
    /// rename + directory fsync), as [`Checkpoint::write`].
    pub fn write(&self, path: &Path) -> Result<(), PersistError> {
        write_atomic_opts(path, &self.encode(), true)
    }

    /// [`DeltaCheckpoint::write`] without the fsyncs — same trade as
    /// [`Checkpoint::write_unsynced`]: a power-loss-torn delta is refused
    /// typed at plan time and recovery falls back one link.
    pub fn write_unsynced(&self, path: &Path) -> Result<(), PersistError> {
        write_atomic_opts(path, &self.encode(), false)
    }

    /// Reads and decodes `path`. Does not [`DeltaCheckpoint::verify`]; the
    /// planner does both.
    pub fn load(path: &Path) -> Result<Self, PersistError> {
        let bytes =
            fs::read(path).map_err(|e| PersistError::io(format!("read {}", path.display()), e))?;
        Self::decode(&bytes)
    }

    /// The canonical file name for a delta of `prefix` at `seq` —
    /// zero-padded so lexicographic order is sequence order, and an
    /// extension that is not a suffix of `.ckpt` (see the module docs).
    pub fn file_name(prefix: &str, seq: u64) -> String {
        format!("{prefix}-{seq:020}.delta")
    }
}

/// Overlays `deltas` (oldest first) onto the full image `base`, producing
/// the equivalent full [`Checkpoint`] at the head generation. Performs the
/// end-to-end consistency check the per-file `verify`s cannot: every region
/// the head's checksum frame names must be present in the materialized
/// image and hash to the recorded digest. The caller is responsible for
/// having verified the chain *links* (parent ids and digests) — the
/// planner does.
pub fn materialize(
    base: &Checkpoint,
    deltas: &[&DeltaCheckpoint],
) -> Result<Checkpoint, PersistError> {
    use std::collections::BTreeMap;
    let mut parts: BTreeMap<(usize, usize), Vec<Word>> = base
        .snapshot
        .parts()
        .iter()
        .map(|(r, w)| ((r.base(), r.len()), w.clone()))
        .collect();
    for d in deltas {
        for (r, w) in d.snapshot.parts() {
            parts.insert((r.base(), r.len()), w.clone());
        }
    }
    let (seq, counters, applied, checksums) = match deltas.last() {
        Some(d) => (
            d.seq,
            d.counters.as_slice(),
            d.applied.as_slice(),
            d.checksums.as_slice(),
        ),
        None => (
            base.seq,
            base.counters.as_slice(),
            base.applied.as_slice(),
            base.checksums.as_slice(),
        ),
    };
    for t in checksums {
        let Some(words) = parts.get(&(t.region.base(), t.region.len())) else {
            return Err(PersistError::Malformed {
                what: format!(
                    "materialized generation {seq}: region \"{}\" is checksummed by the head \
                     but present in no link of the chain",
                    t.name
                ),
            });
        };
        let actual = digest_words(t.region.base(), words);
        if actual != t.sum {
            return Err(PersistError::Malformed {
                what: format!(
                    "materialized generation {seq}: region \"{}\" hashes to {actual:#018x}, \
                     head checksum says {:#018x} — the chain does not reproduce the state it \
                     certifies",
                    t.name, t.sum
                ),
            });
        }
    }
    Ok(Checkpoint {
        seq,
        counters: counters.to_vec(),
        applied: applied.to_vec(),
        snapshot: Snapshot::from_parts(
            parts
                .into_iter()
                .map(|((base, len), words)| (Region::from_raw(base, len), words))
                .collect(),
        ),
        checksums: checksums.to_vec(),
    })
}

/// Reads the frame at `*pos`, turning a clean end-of-input into a typed
/// truncation (the meta frame promised more).
fn require_frame<'a>(
    bytes: &'a [u8],
    pos: &mut usize,
    what: &str,
) -> Result<&'a [u8], PersistError> {
    match next_frame(bytes, pos, what)? {
        Frame::Ok(p) => Ok(p),
        Frame::End => Err(PersistError::Truncated {
            what: format!("{what} (file ends before it)"),
            offset: *pos,
            needed: 8,
            available: 0,
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fol_vm::CostModel;

    fn sample_machine() -> (Machine, Region, Region) {
        let mut m = Machine::new(CostModel::unit());
        let a = m.alloc(8, "a");
        let b = m.alloc(6, "b");
        for i in 0..8 {
            m.s_write(a.at(i), (i as Word) * 3 + 1);
        }
        for i in 0..6 {
            m.s_write(b.at(i), -(i as Word) - 2);
        }
        m.track_region(a);
        m.track_region(b);
        (m, a, b)
    }

    fn full(m: &Machine, regions: &[Region], seq: u64) -> Checkpoint {
        Checkpoint::capture(m, regions, seq, vec![("c".into(), 1)], vec![seq])
    }

    #[test]
    fn delta_captures_only_dirty_regions_and_round_trips() {
        let (mut m, a, b) = sample_machine();
        let base = full(&m, &[a, b], 1);
        // Dirty only `b`.
        let idx = m.vimm(&[0, 5]);
        let val = m.vimm(&[100, 200]);
        m.scatter(b, &idx, &val);

        let d =
            DeltaCheckpoint::capture(&m, 2, 1, &base.checksums, vec![("c".into(), 2)], vec![1, 2]);
        assert_eq!(d.snapshot.parts().len(), 1, "only b is captured");
        assert_eq!(d.snapshot.parts()[0].0, b);
        assert_eq!(d.checksums.len(), 2, "…but both regions are checksummed");
        assert_eq!(d.parent_digest, state_digest(&base.checksums));

        let back = DeltaCheckpoint::decode(&d.encode()).unwrap();
        assert_eq!(back, d);
        back.verify().unwrap();
    }

    #[test]
    fn materialize_reproduces_the_live_state_across_a_chain() {
        let (mut m, a, b) = sample_machine();
        let base = full(&m, &[a, b], 1);
        let idx = m.vimm(&[2]);
        let val = m.vimm(&[77]);
        m.scatter(a, &idx, &val);
        let d1 = DeltaCheckpoint::capture(&m, 2, 1, &base.checksums, vec![], vec![1, 2]);
        let idx = m.vimm(&[3]);
        let val = m.vimm(&[88]);
        m.scatter(b, &idx, &val);
        let d2 = DeltaCheckpoint::capture(&m, 3, 2, &d1.checksums, vec![], vec![1, 2, 3]);
        assert_eq!(d2.parent_digest, d1.state_digest());

        let ckpt = materialize(&base, &[&d1, &d2]).unwrap();
        assert_eq!(ckpt.seq, 3);
        assert_eq!(ckpt.applied, vec![1, 2, 3]);
        assert!(ckpt.snapshot.matches(m.mem()), "byte-exact reproduction");
        ckpt.verify().unwrap();

        // Restoring into a fresh machine lands on scrubbable state.
        let (mut m2, _, _) = sample_machine();
        ckpt.restore_into(&mut m2);
        assert!(m2.scrub().is_ok());
        assert_eq!(m2.content_digest(), m.content_digest());
    }

    #[test]
    fn materialize_refuses_a_chain_that_does_not_reproduce_its_digests() {
        let (mut m, a, b) = sample_machine();
        let base = full(&m, &[a, b], 1);
        let idx = m.vimm(&[1]);
        let val = m.vimm(&[9]);
        m.scatter(a, &idx, &val);
        let mut d = DeltaCheckpoint::capture(&m, 2, 1, &base.checksums, vec![], vec![]);
        // Lie about the head digest of the *clean* region: per-file verify
        // cannot catch this (the region is not captured), materialize must.
        let clean = d
            .checksums
            .iter_mut()
            .find(|t| t.region == b)
            .expect("b is tracked");
        clean.sum ^= 0xBAD;
        d.verify()
            .expect("per-file verify only covers captured regions");
        let err = materialize(&base, &[&d]).unwrap_err();
        assert!(matches!(err, PersistError::Malformed { .. }), "{err}");
    }

    #[test]
    fn corruption_table_yields_distinct_typed_errors() {
        let (mut m, a, b) = sample_machine();
        let base = full(&m, &[a, b], 1);
        let idx = m.vimm(&[0]);
        let val = m.vimm(&[5]);
        m.scatter(a, &idx, &val);
        let good = DeltaCheckpoint::capture(&m, 2, 1, &base.checksums, vec![], vec![]).encode();
        DeltaCheckpoint::decode(&good).unwrap();

        let mut bumped = good.clone();
        bumped[8] = (DELTA_VERSION + 1) as u8;
        assert!(matches!(
            DeltaCheckpoint::decode(&bumped),
            Err(PersistError::UnsupportedVersion { .. })
        ));

        let mut magic = good.clone();
        magic[0] = b'X';
        assert!(matches!(
            DeltaCheckpoint::decode(&magic),
            Err(PersistError::BadMagic { .. })
        ));

        assert!(matches!(
            DeltaCheckpoint::decode(&good[..good.len() - 5]),
            Err(PersistError::Truncated { .. })
        ));

        let mut flipped = good.clone();
        flipped[12 + 8 + 2] ^= 0x40; // inside the meta frame payload
        assert!(matches!(
            DeltaCheckpoint::decode(&flipped),
            Err(PersistError::CrcMismatch { .. })
        ));
    }

    #[test]
    fn forward_or_self_parent_edges_are_malformed() {
        let (m, a, b) = sample_machine();
        let base = full(&m, &[a, b], 5);
        let mut d = DeltaCheckpoint::capture(&m, 6, 5, &base.checksums, vec![], vec![]);
        d.parent_seq = 6; // self-parent
        assert!(matches!(
            DeltaCheckpoint::decode(&d.encode()),
            Err(PersistError::Malformed { .. })
        ));
        d.parent_seq = 9; // forward edge
        assert!(matches!(
            DeltaCheckpoint::decode(&d.encode()),
            Err(PersistError::Malformed { .. })
        ));
    }

    #[test]
    fn file_name_is_not_mistaken_for_a_full_checkpoint() {
        let name = DeltaCheckpoint::file_name("w0", 7);
        assert_eq!(name, format!("w0-{:020}.delta", 7));
        assert!(
            !name.ends_with(".ckpt"),
            "the full-image scan must never open delta files"
        );
    }
}
