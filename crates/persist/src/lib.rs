//! # fol-persist — durable checkpoint/restart and a write-ahead log
//!
//! Every guarantee the recovery ladder earns (PRs 1–5: typed fallibility,
//! transactional rounds, degradation, integrity, serving) lives in process
//! memory and dies with a SIGKILL. This crate is the durability rung: it
//! turns the round boundary — exactly where FOL machine state is consistent
//! and replayable — into an on-disk quantum.
//!
//! * **[`checkpoint`]** — a versioned, CRC-framed serialization of a
//!   [`fol_vm::Snapshot`] plus tracked-region checksums, recovery counters
//!   and the applied-request set, committed with the write-to-temp +
//!   `fsync` + atomic-rename discipline so a reader never observes a
//!   half-written checkpoint under its final name.
//! * **[`wal`]** — a segmented append-only log of opaque records, each
//!   CRC-framed, with a configurable [`wal::FsyncPolicy`]. Replay
//!   distinguishes a *torn tail* (the expected signature of a crash mid-
//!   append, surfaced typed so the caller can treat it as the crash
//!   frontier) from corruption anywhere else (refused outright).
//! * **[`Checkpointer`]** — a [`fol_core::recover::DurabilityHook`] that
//!   writes a checkpoint every N committed transactions and remembers
//!   ladder progress, so a killed process resumes mid-ladder from the last
//!   durable round instead of replaying from scratch.
//! * **[`delta`]** — incremental checkpoints: only the regions whose
//!   integrity digest changed since the parent generation, chained by
//!   parent id + parent state digest; every K deltas a full image is cut.
//! * **[`planner`]** — the [`RecoveryPlanner`]: walks generations newest
//!   first, verifies every chain link (CRC, parent digest, end-to-end
//!   materialization), and falls back link-by-link with a typed
//!   [`SkipReason`] per passed-over generation — never a silent divergence.
//! * **[`compact`]** — the [`Compactor`]: prunes generations below a
//!   `keep_full_images` retention boundary and deletes WAL segments wholly
//!   covered by the boundary image's applied set, with mark-then-delete +
//!   directory-fsync crash safety and typed refusal when pruning would
//!   orphan the only loadable full image.
//! * **[`handoff`]** — shard-handoff images: the CRC-framed, digest-carrying
//!   transfer format a cluster rebalance ships between processes, following
//!   the same magic/version/frame discipline as delta checkpoints but over
//!   *logical* per-class key sets, which are layout-independent.
//!
//! Everything that can be wrong with stored bytes is a typed
//! [`PersistError`] — truncation, bit-flips, version skew and structural
//! garbage are *distinct* variants, and nothing corrupt is ever silently
//! replayed.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod checkpoint;
pub mod compact;
pub mod delta;
pub mod frame;
pub mod handoff;
pub mod planner;
pub mod wal;

pub use checkpoint::{latest_checkpoint, Checkpoint, Checkpointer, ScanNote};
pub use compact::{CompactRefusal, CompactionReport, Compactor, LogRecord};
pub use delta::{materialize, state_digest, DeltaCheckpoint};
pub use frame::crc32;
pub use handoff::{HandoffDedupe, HandoffImage, HandoffSection};
pub use planner::{RecoveryPlan, RecoveryPlanner, SkipReason, SkippedGeneration};
pub use wal::{FsyncPolicy, Replay, TornTail, Wal, WalRecord};

use std::fmt;

/// Every way stored durability data can be refused — typed, never a silent
/// replay of corrupt bytes and never a bare panic.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PersistError {
    /// The operating system refused the I/O. The message carries the
    /// underlying error rendered, so the variant stays `Clone + Eq` for the
    /// serving layer's typed error surface.
    Io {
        /// What was being done.
        what: String,
        /// The rendered `std::io::Error`.
        error: String,
    },
    /// The file does not start with the artifact's magic bytes — it is not
    /// a checkpoint / WAL segment at all (or its header was destroyed).
    BadMagic {
        /// What was being read.
        what: String,
        /// The bytes actually found (up to the magic's length).
        found: Vec<u8>,
    },
    /// The header parsed but names a format version this build does not
    /// speak. Refused rather than guessed at: a version bump is allowed to
    /// change every byte after the header.
    UnsupportedVersion {
        /// What was being read.
        what: String,
        /// The version the file claims.
        found: u32,
        /// The version this build writes and reads.
        supported: u32,
    },
    /// The file ends before a complete header or frame — the signature of a
    /// torn write (crash mid-write) or an external truncation.
    Truncated {
        /// What was being read.
        what: String,
        /// Byte offset at which the read was attempted.
        offset: usize,
        /// Bytes the read needed.
        needed: usize,
        /// Bytes actually available.
        available: usize,
    },
    /// A complete frame whose CRC-32 disagrees with its payload: a
    /// bit-flip, a misdirected write, or a tear that happened to preserve
    /// the length field.
    CrcMismatch {
        /// What was being read.
        what: String,
        /// Byte offset of the offending frame.
        offset: usize,
        /// CRC the frame claims.
        expected: u32,
        /// CRC the payload hashes to.
        actual: u32,
    },
    /// The frame's CRC held but its payload does not decode as the declared
    /// structure — framed-in garbage, which only the decoders can catch.
    Malformed {
        /// What failed to decode, with position context.
        what: String,
    },
}

impl PersistError {
    /// Wraps an `io::Error` with context.
    pub fn io(what: impl Into<String>, e: std::io::Error) -> Self {
        PersistError::Io {
            what: what.into(),
            error: e.to_string(),
        }
    }
}

impl fmt::Display for PersistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PersistError::Io { what, error } => write!(f, "io error: {what}: {error}"),
            PersistError::BadMagic { what, found } => {
                write!(f, "bad magic in {what}: found {found:02x?}")
            }
            PersistError::UnsupportedVersion {
                what,
                found,
                supported,
            } => write!(
                f,
                "unsupported version in {what}: file claims v{found}, this build speaks v{supported}"
            ),
            PersistError::Truncated {
                what,
                offset,
                needed,
                available,
            } => write!(
                f,
                "truncated {what}: needed {needed} byte(s) at offset {offset}, only {available} available (torn write?)"
            ),
            PersistError::CrcMismatch {
                what,
                offset,
                expected,
                actual,
            } => write!(
                f,
                "crc mismatch in {what} at offset {offset}: frame claims {expected:#010x}, payload hashes to {actual:#010x}"
            ),
            PersistError::Malformed { what } => write!(f, "malformed payload: {what}"),
        }
    }
}

impl std::error::Error for PersistError {}
