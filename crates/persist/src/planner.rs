//! The recovery planner: generation-walk restore with typed fallback.
//!
//! With delta checkpoints on disk, "load the newest checkpoint" becomes
//! "choose the newest generation whose **entire chain** down to a full
//! image loads, link-verifies, and materializes to the state it certifies".
//! The planner walks generations newest-first; for each candidate head it
//! follows `parent_seq` edges, checking every link three ways:
//!
//! 1. **Load** — the file decodes (CRC, magic, version, structure) and
//!    passes its per-file `verify`. A torn delta or bit-flipped image is a
//!    typed [`SkipReason::Refused`].
//! 2. **Edge** — the parent generation exists on disk
//!    ([`SkipReason::MissingParent`] otherwise) and its state digest equals
//!    the child's recorded `parent_digest`
//!    ([`SkipReason::ParentDigestMismatch`] otherwise — the chain would
//!    splice onto the wrong image).
//! 3. **Materialization** — overlaying the chain onto its base reproduces
//!    exactly the per-region digests the head certifies
//!    ([`SkipReason::Inconsistent`] otherwise).
//!
//! Any refusal skips that head — recorded, typed, never silent — and the
//! walk falls back to the next-newest generation. Falling back to an older
//! generation is always *safe* here because the write-ahead log is pruned
//! no further than the oldest retained full image's frontier (see
//! [`crate::compact`]): an older image simply means a wider WAL replay.

use crate::checkpoint::{Checkpoint, ScanNote};
use crate::delta::{materialize, DeltaCheckpoint};
use crate::PersistError;
use std::collections::HashMap;
use std::fs;
use std::path::{Path, PathBuf};
use std::rc::Rc;

/// What kind of artifact a generation file holds.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum GenerationKind {
    /// A delta checkpoint (`.delta`), chained to a parent.
    Delta,
    /// A full image (`.ckpt`), self-sufficient. Ordered after `Delta` so
    /// that at equal seq a full image is preferred.
    Full,
}

/// One generation file found by [`scan_generations`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Generation {
    /// The generation id parsed from the file name.
    pub seq: u64,
    /// Full image or delta.
    pub kind: GenerationKind,
    /// Where it sits.
    pub path: PathBuf,
}

/// Lists every `{prefix}-{seq}.ckpt` / `{prefix}-{seq}.delta` generation in
/// `dir`, **newest first** (full images before deltas at equal seq), plus
/// typed notes for entries stepped over without being read — the same
/// never-fail-the-scan discipline as [`crate::latest_checkpoint`]. A
/// missing directory is an empty scan.
pub fn scan_generations(
    dir: &Path,
    prefix: &str,
) -> Result<(Vec<Generation>, Vec<ScanNote>), PersistError> {
    let mut gens = Vec::new();
    let mut notes = Vec::new();
    let entries = match fs::read_dir(dir) {
        Ok(e) => e,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok((gens, notes)),
        Err(e) => return Err(PersistError::io(format!("read dir {}", dir.display()), e)),
    };
    let wanted = format!("{prefix}-");
    for entry in entries {
        let entry = match entry {
            Ok(e) => e,
            Err(e) => {
                notes.push(ScanNote::Unreadable {
                    dir: dir.to_path_buf(),
                    error: e.to_string(),
                });
                continue;
            }
        };
        let name = entry.file_name().to_string_lossy().into_owned();
        let kind = if name.ends_with(".ckpt") {
            GenerationKind::Full
        } else if name.ends_with(".delta") {
            GenerationKind::Delta
        } else {
            continue; // WAL segments, rung files, markers: legitimately here.
        };
        let Some(stem) = name
            .strip_prefix(&wanted)
            .and_then(|r| r.rsplit_once('.'))
            .map(|(s, _)| s)
        else {
            notes.push(ScanNote::ForeignName {
                path: dir.join(&name),
            });
            continue;
        };
        let Ok(seq) = stem.parse::<u64>() else {
            notes.push(ScanNote::ForeignName {
                path: dir.join(&name),
            });
            continue;
        };
        match entry.file_type().map(|t| t.is_file()) {
            Ok(true) => gens.push(Generation {
                seq,
                kind,
                path: dir.join(&name),
            }),
            Ok(false) => notes.push(ScanNote::NotAFile {
                path: dir.join(&name),
            }),
            Err(e) => notes.push(ScanNote::Unreadable {
                dir: dir.to_path_buf(),
                error: e.to_string(),
            }),
        }
    }
    gens.sort_unstable_by_key(|g| std::cmp::Reverse((g.seq, g.kind)));
    Ok((gens, notes))
}

/// Why a generation was passed over as a restore head — the typed record of
/// a fallback that would otherwise be silent.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SkipReason {
    /// The head, or a link in its chain, failed to load or per-file verify
    /// (torn write, bit-flip, version skew, framed-in garbage). Carries the
    /// typed error and the path it arose at.
    Refused {
        /// The generation file that was refused (the head itself or an
        /// ancestor link).
        at: PathBuf,
        /// The typed load/verify error.
        error: PersistError,
    },
    /// A link names a parent generation that is not on disk at all —
    /// deleted mid-chain, or pruned by a buggy retention pass.
    MissingParent {
        /// The parent generation id the chain needs.
        parent_seq: u64,
    },
    /// The parent exists and loads, but its state digest is not the one
    /// the child recorded: applying the delta would splice onto the wrong
    /// image.
    ParentDigestMismatch {
        /// The parent generation id.
        parent_seq: u64,
        /// Digest the child expects of its parent.
        expected: u64,
        /// Digest the on-disk parent actually has.
        actual: u64,
    },
    /// Every link loaded and edge-verified, but materializing the chain did
    /// not reproduce the per-region digests the head certifies.
    Inconsistent {
        /// The typed materialization failure.
        error: PersistError,
    },
}

impl std::fmt::Display for SkipReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SkipReason::Refused { at, error } => {
                write!(f, "refused at {}: {error}", at.display())
            }
            SkipReason::MissingParent { parent_seq } => {
                write!(f, "parent generation {parent_seq} is missing from disk")
            }
            SkipReason::ParentDigestMismatch {
                parent_seq,
                expected,
                actual,
            } => write!(
                f,
                "parent generation {parent_seq} has state digest {actual:#018x}, \
                 child expects {expected:#018x}"
            ),
            SkipReason::Inconsistent { error } => {
                write!(f, "chain materialization inconsistent: {error}")
            }
        }
    }
}

/// One generation the planner stepped over, with its typed reason.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SkippedGeneration {
    /// The head generation id that was skipped.
    pub seq: u64,
    /// Its file.
    pub path: PathBuf,
    /// Why.
    pub reason: SkipReason,
}

/// The planner's verdict: the newest fully-verifiable generation,
/// materialized, plus the typed record of everything newer that was
/// skipped.
#[derive(Clone, Debug, Default)]
pub struct RecoveryPlan {
    /// The materialized restore image, if any generation was recoverable.
    /// Its `seq` is the head generation id; `applied` is the head's full
    /// applied set (the WAL replay floor).
    pub checkpoint: Option<Checkpoint>,
    /// File of the chosen head generation.
    pub head_path: Option<PathBuf>,
    /// Generation id of the full image the chosen chain is rooted at
    /// (equals the head's seq when the head is itself a full image).
    pub base_seq: Option<u64>,
    /// How many delta links were applied on top of the base.
    pub deltas_applied: usize,
    /// Every newer generation that was passed over, newest first, each with
    /// its typed reason. Empty means the newest generation restored clean.
    pub skipped: Vec<SkippedGeneration>,
    /// Directory entries stepped over without being read.
    pub notes: Vec<ScanNote>,
}

/// One loaded generation, cached so a chain shared by several candidate
/// heads is read once.
enum Loaded {
    Full(Rc<Checkpoint>),
    Delta(Rc<DeltaCheckpoint>),
}

/// Walks the generations of `prefix` in `dir` and produces the newest
/// fully-verifiable [`RecoveryPlan`]. See the module docs for the link
/// checks. `Err` is reserved for an unreadable *directory*; everything
/// wrong with individual files is a typed skip inside the `Ok`.
pub struct RecoveryPlanner {
    dir: PathBuf,
    prefix: String,
}

impl RecoveryPlanner {
    /// A planner over `{prefix}-*` generations in `dir`.
    pub fn new(dir: impl Into<PathBuf>, prefix: impl Into<String>) -> Self {
        RecoveryPlanner {
            dir: dir.into(),
            prefix: prefix.into(),
        }
    }

    /// Scans, walks, verifies, and materializes. Idempotent and read-only.
    pub fn plan(&self) -> Result<RecoveryPlan, PersistError> {
        let (gens, notes) = scan_generations(&self.dir, &self.prefix)?;
        let mut plan = RecoveryPlan {
            notes,
            ..RecoveryPlan::default()
        };
        // Load cache: chains overlap heavily between candidate heads.
        let mut cache: HashMap<PathBuf, Result<Loaded, PersistError>> = HashMap::new();
        let mut load = |path: &PathBuf, kind: GenerationKind| -> Result<Loaded, PersistError> {
            let entry = cache.entry(path.clone()).or_insert_with(|| match kind {
                GenerationKind::Full => Checkpoint::load(path)
                    .and_then(|c| c.verify().map(|()| c))
                    .map(|c| Loaded::Full(Rc::new(c))),
                GenerationKind::Delta => DeltaCheckpoint::load(path)
                    .and_then(|d| d.verify().map(|()| d))
                    .map(|d| Loaded::Delta(Rc::new(d))),
            });
            match entry {
                Ok(Loaded::Full(c)) => Ok(Loaded::Full(Rc::clone(c))),
                Ok(Loaded::Delta(d)) => Ok(Loaded::Delta(Rc::clone(d))),
                Err(e) => Err(e.clone()),
            }
        };

        'heads: for head in &gens {
            // Walk head → base, collecting delta links head-first.
            let mut deltas_rev: Vec<Rc<DeltaCheckpoint>> = Vec::new();
            let mut cursor = head.clone();
            let (base, base_gen) = loop {
                match load(&cursor.path, cursor.kind) {
                    Err(error) => {
                        plan.skipped.push(SkippedGeneration {
                            seq: head.seq,
                            path: head.path.clone(),
                            reason: SkipReason::Refused {
                                at: cursor.path.clone(),
                                error,
                            },
                        });
                        continue 'heads;
                    }
                    Ok(Loaded::Full(c)) => break (c, cursor.clone()),
                    Ok(Loaded::Delta(d)) => {
                        // Resolve the parent edge. Candidates at the parent
                        // seq, full images first (scan order provides this);
                        // the first that loads is the parent.
                        let candidates: Vec<&Generation> =
                            gens.iter().filter(|g| g.seq == d.parent_seq).collect();
                        if candidates.is_empty() {
                            plan.skipped.push(SkippedGeneration {
                                seq: head.seq,
                                path: head.path.clone(),
                                reason: SkipReason::MissingParent {
                                    parent_seq: d.parent_seq,
                                },
                            });
                            continue 'heads;
                        }
                        let mut parent: Option<(Generation, u64)> = None;
                        let mut first_err: Option<(PathBuf, PersistError)> = None;
                        for cand in candidates {
                            match load(&cand.path, cand.kind) {
                                Ok(Loaded::Full(c)) => {
                                    parent = Some((cand.clone(), c.state_digest()));
                                    break;
                                }
                                Ok(Loaded::Delta(p)) => {
                                    parent = Some((cand.clone(), p.state_digest()));
                                    break;
                                }
                                Err(e) => {
                                    if first_err.is_none() {
                                        first_err = Some((cand.path.clone(), e));
                                    }
                                }
                            }
                        }
                        let Some((parent_gen, parent_digest)) = parent else {
                            let (at, error) = first_err.expect("candidates was non-empty");
                            plan.skipped.push(SkippedGeneration {
                                seq: head.seq,
                                path: head.path.clone(),
                                reason: SkipReason::Refused { at, error },
                            });
                            continue 'heads;
                        };
                        if parent_digest != d.parent_digest {
                            plan.skipped.push(SkippedGeneration {
                                seq: head.seq,
                                path: head.path.clone(),
                                reason: SkipReason::ParentDigestMismatch {
                                    parent_seq: d.parent_seq,
                                    expected: d.parent_digest,
                                    actual: parent_digest,
                                },
                            });
                            continue 'heads;
                        }
                        deltas_rev.push(d);
                        cursor = parent_gen;
                    }
                }
            };

            let chain: Vec<&DeltaCheckpoint> =
                deltas_rev.iter().rev().map(|d| d.as_ref()).collect();
            match materialize(&base, &chain) {
                Ok(ckpt) => {
                    plan.checkpoint = Some(ckpt);
                    plan.head_path = Some(head.path.clone());
                    plan.base_seq = Some(base_gen.seq);
                    plan.deltas_applied = chain.len();
                    return Ok(plan);
                }
                Err(error) => {
                    plan.skipped.push(SkippedGeneration {
                        seq: head.seq,
                        path: head.path.clone(),
                        reason: SkipReason::Inconsistent { error },
                    });
                    continue 'heads;
                }
            }
        }
        Ok(plan)
    }
}

// `state_digest` is re-exported for planner consumers that need to compute
// a parent digest without constructing a delta (e.g. serving-layer cadence
// bookkeeping).
pub use crate::delta::state_digest as generation_state_digest;

#[cfg(test)]
mod tests {
    use super::*;
    use fol_vm::{CostModel, Machine, Region, Word};
    use std::sync::atomic::{AtomicU64, Ordering};

    fn temp_dir(tag: &str) -> PathBuf {
        static NEXT: AtomicU64 = AtomicU64::new(0);
        let n = NEXT.fetch_add(1, Ordering::Relaxed);
        let dir =
            std::env::temp_dir().join(format!("fol-planner-test-{}-{tag}-{n}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn sample_machine() -> (Machine, Region, Region) {
        let mut m = Machine::new(CostModel::unit());
        let a = m.alloc(8, "a");
        let b = m.alloc(6, "b");
        for i in 0..8 {
            m.s_write(a.at(i), (i as Word) * 5 - 2);
        }
        m.track_region(a);
        m.track_region(b);
        (m, a, b)
    }

    /// Writes full@1, delta@2 (dirties a), delta@3 (dirties b) and returns
    /// (dir, machine-at-head, head checkpoint digest chain bits).
    fn build_chain(tag: &str) -> (PathBuf, Machine, Region, Region) {
        let dir = temp_dir(tag);
        let (mut m, a, b) = sample_machine();
        let full = Checkpoint::capture(&m, &[a, b], 1, vec![("k".into(), 1)], vec![1]);
        full.write(&dir.join(Checkpoint::file_name("w0", 1)))
            .unwrap();

        let idx = m.vimm(&[0]);
        let val = m.vimm(&[111]);
        m.scatter(a, &idx, &val);
        let d2 =
            DeltaCheckpoint::capture(&m, 2, 1, &full.checksums, vec![("k".into(), 2)], vec![1, 2]);
        d2.write(&dir.join(DeltaCheckpoint::file_name("w0", 2)))
            .unwrap();

        let idx = m.vimm(&[4]);
        let val = m.vimm(&[222]);
        m.scatter(b, &idx, &val);
        let d3 = DeltaCheckpoint::capture(
            &m,
            3,
            2,
            &d2.checksums,
            vec![("k".into(), 3)],
            vec![1, 2, 3],
        );
        d3.write(&dir.join(DeltaCheckpoint::file_name("w0", 3)))
            .unwrap();
        (dir, m, a, b)
    }

    #[test]
    fn plan_restores_the_newest_chain_when_intact() {
        let (dir, m, _, _) = build_chain("intact");
        let plan = RecoveryPlanner::new(&dir, "w0").plan().unwrap();
        assert!(plan.skipped.is_empty(), "{:?}", plan.skipped);
        let ckpt = plan.checkpoint.expect("chain is intact");
        assert_eq!(ckpt.seq, 3);
        assert_eq!(plan.base_seq, Some(1));
        assert_eq!(plan.deltas_applied, 2);
        assert_eq!(ckpt.applied, vec![1, 2, 3]);
        assert!(ckpt.snapshot.matches(m.mem()));
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn torn_delta_head_falls_back_one_link_typed() {
        let (dir, _, _, _) = build_chain("torn");
        // Tear the newest delta mid-file.
        let p3 = dir.join(DeltaCheckpoint::file_name("w0", 3));
        let bytes = fs::read(&p3).unwrap();
        fs::write(&p3, &bytes[..bytes.len() - 7]).unwrap();

        let plan = RecoveryPlanner::new(&dir, "w0").plan().unwrap();
        let ckpt = plan.checkpoint.expect("generation 2 is intact");
        assert_eq!(ckpt.seq, 2, "fell back exactly one link");
        assert_eq!(plan.deltas_applied, 1);
        assert_eq!(plan.skipped.len(), 1);
        assert_eq!(plan.skipped[0].seq, 3);
        assert!(
            matches!(
                &plan.skipped[0].reason,
                SkipReason::Refused {
                    error: PersistError::Truncated { .. },
                    ..
                }
            ),
            "{:?}",
            plan.skipped[0].reason
        );
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_mid_chain_parent_skips_every_dependent_head() {
        let (dir, _, _, _) = build_chain("missing");
        fs::remove_file(dir.join(DeltaCheckpoint::file_name("w0", 2))).unwrap();

        let plan = RecoveryPlanner::new(&dir, "w0").plan().unwrap();
        let ckpt = plan.checkpoint.expect("the full image at 1 survives");
        assert_eq!(ckpt.seq, 1);
        assert_eq!(plan.deltas_applied, 0);
        assert_eq!(plan.base_seq, Some(1));
        assert_eq!(plan.skipped.len(), 1, "{:?}", plan.skipped);
        assert!(
            matches!(
                plan.skipped[0].reason,
                SkipReason::MissingParent { parent_seq: 2 }
            ),
            "{:?}",
            plan.skipped[0].reason
        );
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn bit_flipped_full_image_mid_chain_is_refused_and_the_chain_falls_past_it() {
        let (dir, _, _, _) = build_chain("flip");
        // Corrupt the base full image: every delta head depending on it is
        // skipped, and with no older generation the plan is empty — typed,
        // not silent.
        let p1 = dir.join(Checkpoint::file_name("w0", 1));
        let mut bytes = fs::read(&p1).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x10;
        fs::write(&p1, &bytes).unwrap();

        let plan = RecoveryPlanner::new(&dir, "w0").plan().unwrap();
        assert!(plan.checkpoint.is_none(), "nothing is recoverable");
        assert_eq!(plan.skipped.len(), 3, "{:?}", plan.skipped);
        // Heads 3 and 2 die on the corrupt ancestor; head 1 on itself.
        for s in &plan.skipped {
            assert!(
                matches!(
                    &s.reason,
                    SkipReason::Refused {
                        at,
                        error: PersistError::CrcMismatch { .. }
                    } if at == &p1
                ),
                "{:?}",
                s.reason
            );
        }
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn parent_digest_mismatch_is_its_own_typed_reason() {
        let (dir, _, _, _) = build_chain("splice");
        // Replace the parent delta at seq 2 with a *valid* delta whose
        // state differs: the child at 3 must refuse to splice onto it.
        let mut m2 = Machine::new(CostModel::unit());
        let a2 = m2.alloc(8, "a");
        let b2 = m2.alloc(6, "b");
        m2.track_region(a2);
        m2.track_region(b2);
        let full2 = Checkpoint::capture(
            &m2,
            &m2.tracked_regions()
                .iter()
                .map(|t| t.region)
                .collect::<Vec<_>>(),
            1,
            vec![],
            vec![],
        );
        let idx = m2.vimm(&[7]);
        let val = m2.vimm(&[-55]);
        m2.scatter(a2, &idx, &val);
        let _ = b2;
        let imposter = DeltaCheckpoint::capture(&m2, 2, 1, &full2.checksums, vec![], vec![]);
        imposter
            .write(&dir.join(DeltaCheckpoint::file_name("w0", 2)))
            .unwrap();

        let plan = RecoveryPlanner::new(&dir, "w0").plan().unwrap();
        assert!(
            plan.skipped.iter().any(|s| matches!(
                s.reason,
                SkipReason::ParentDigestMismatch { parent_seq: 2, .. }
            )),
            "{:?}",
            plan.skipped
        );
        // The walk lands somewhere verifiable (the full at 1, or the
        // imposter chain if it happens to verify against the real full).
        if let Some(c) = &plan.checkpoint {
            assert!(c.seq < 3, "head 3 must not restore");
        }
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn empty_and_missing_directories_plan_to_nothing() {
        let plan = RecoveryPlanner::new("/nonexistent/fol-planner-nowhere", "w0")
            .plan()
            .unwrap();
        assert!(plan.checkpoint.is_none());
        assert!(plan.skipped.is_empty());
    }

    #[test]
    fn scan_orders_newest_first_and_prefers_full_at_equal_seq() {
        let dir = temp_dir("order");
        let (m, a, b) = sample_machine();
        let full = Checkpoint::capture(&m, &[a, b], 2, vec![], vec![]);
        full.write(&dir.join(Checkpoint::file_name("w0", 2)))
            .unwrap();
        let d = DeltaCheckpoint::capture(&m, 2, 1, &full.checksums, vec![], vec![]);
        d.write(&dir.join(DeltaCheckpoint::file_name("w0", 2)))
            .unwrap();
        fs::write(dir.join("w0-garbage.delta"), b"junk").unwrap();

        let (gens, notes) = scan_generations(&dir, "w0").unwrap();
        assert_eq!(gens.len(), 2);
        assert_eq!(
            gens[0].kind,
            GenerationKind::Full,
            "full first at equal seq"
        );
        assert_eq!(gens[1].kind, GenerationKind::Delta);
        assert_eq!(notes.len(), 1, "unparseable seq is a typed note: {notes:?}");
        fs::remove_dir_all(&dir).ok();
    }
}
