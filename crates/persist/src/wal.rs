//! The segmented write-ahead log.
//!
//! An append-only sequence of opaque, CRC-framed records split across
//! numbered segment files. The serving layer appends an admission record
//! *before* acknowledging a request and a completion record after the batch
//! commits; on restart, [`replay`] returns every readable record so the
//! server can re-drive acknowledged-but-uncommitted work. The record
//! payloads are opaque bytes at this layer — the caller owns the codec.
//!
//! # Segment format (version 1)
//!
//! ```text
//! magic "FOLWAL\0\0" (8 bytes)  version u32 LE
//! frame: record ×N   — opaque payload, CRC-framed ([`crate::frame`])
//! ```
//!
//! Segments are named `{prefix}-{index:012}.wal`; a writer never appends to
//! a pre-existing segment (each [`Wal::open`] starts a fresh one), so the
//! only file a crash can tear is the one being written.
//!
//! # Torn tail vs corruption
//!
//! A crash mid-append tears the **end of the newest segment** — that is the
//! *expected* signature of a kill, and replay must not refuse the whole log
//! for it. [`replay`] therefore distinguishes, by position and error class:
//!
//! * **Torn tail** — a [`PersistError::Truncated`] at the end of the *last*
//!   segment (including a segment whose header itself was torn). The
//!   records before the tear are returned and the tear is surfaced as a
//!   typed [`TornTail`] in the [`Replay`] — acknowledged loudly, never
//!   silently dropped. The torn record itself was never acknowledged (the
//!   WAL is flushed before the ticket is returned), so losing it is
//!   correct.
//! * **Corruption** — a CRC mismatch anywhere (a tear cannot produce a
//!   full-length frame with wrong bytes on an append-only file; a bit-flip
//!   can), or *any* defect in a non-last segment (older segments were
//!   sealed by a later segment's existence — nothing may be torn there).
//!   These are hard, typed refusals: a log that lies is not replayed.
//!
//! # Fsync policy
//!
//! [`FsyncPolicy`] prices the durability/throughput trade-off: `Always`
//! fsyncs per append (every acknowledged record survives power loss),
//! `Batch` fsyncs at [`Wal::commit`] (the serving layer commits at batch
//! boundaries, so an admitted-but-unexecuted record rides the page cache —
//! safe against process kill, exposed to power loss until the next batch
//! commits), `Off` never fsyncs (crash-consistent against process kill
//! only, not power loss; the chaos suite runs this tier because SIGKILL
//! does not lose page-cache writes).

use crate::frame::{next_frame, push_frame, Frame};
use crate::PersistError;
use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};

/// First bytes of every WAL segment.
pub const WAL_MAGIC: &[u8; 8] = b"FOLWAL\0\0";
/// The WAL segment format version this build writes and reads.
pub const WAL_VERSION: u32 = 1;

/// When the log forces its bytes to stable storage.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FsyncPolicy {
    /// fsync after every append: an acknowledged record survives power
    /// loss. The safest and slowest tier.
    Always,
    /// fsync at [`Wal::commit`] (batch boundaries). The serving layer
    /// commits after appending a batch's completion records and before
    /// demultiplexing outcomes, so a completed request's records survive
    /// power loss; an admitted-but-unexecuted record rides the page cache
    /// until the next batch commits (safe against process kill). The fsync
    /// cost amortizes over the batch.
    Batch,
    /// Never fsync. Survives process kill (the page cache is not lost with
    /// the process) but not power loss. The cheapest tier; useful as the
    /// bench baseline and under test harnesses that kill with signals.
    Off,
}

impl std::str::FromStr for FsyncPolicy {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "always" => Ok(FsyncPolicy::Always),
            "batch" => Ok(FsyncPolicy::Batch),
            "off" => Ok(FsyncPolicy::Off),
            other => Err(format!(
                "unknown fsync policy {other:?} (expected always|batch|off)"
            )),
        }
    }
}

impl std::fmt::Display for FsyncPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            FsyncPolicy::Always => "always",
            FsyncPolicy::Batch => "batch",
            FsyncPolicy::Off => "off",
        })
    }
}

/// The canonical segment file name: zero-padded so lexicographic order is
/// creation order.
pub fn segment_file_name(prefix: &str, index: u64) -> String {
    format!("{prefix}-{index:012}.wal")
}

fn parse_segment_index(prefix: &str, name: &str) -> Option<u64> {
    let rest = name.strip_prefix(prefix)?.strip_prefix('-')?;
    let digits = rest.strip_suffix(".wal")?;
    digits.parse().ok()
}

/// Sorted `(index, path)` list of `prefix` segments in `dir`. A missing
/// directory is an empty log.
pub fn segments(dir: &Path, prefix: &str) -> Result<Vec<(u64, PathBuf)>, PersistError> {
    let entries = match fs::read_dir(dir) {
        Ok(e) => e,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Vec::new()),
        Err(e) => return Err(PersistError::io(format!("read dir {}", dir.display()), e)),
    };
    let mut out = Vec::new();
    for entry in entries {
        let entry =
            entry.map_err(|e| PersistError::io(format!("read dir {}", dir.display()), e))?;
        let name = entry.file_name().to_string_lossy().into_owned();
        if let Some(idx) = parse_segment_index(prefix, &name) {
            out.push((idx, dir.join(&name)));
        }
    }
    out.sort_unstable();
    Ok(out)
}

/// The append half of the log. See the module docs for the format and the
/// fsync tiers.
pub struct Wal {
    dir: PathBuf,
    prefix: String,
    policy: FsyncPolicy,
    segment_bytes: u64,
    file: fs::File,
    seg_index: u64,
    seg_len: u64,
    appends: u64,
    dirty: bool,
}

impl Wal {
    /// Opens the log for appending: a **fresh** segment numbered after the
    /// highest existing one. Never appends to a pre-existing file, so a
    /// previous incarnation's torn tail stays where [`replay`] can classify
    /// it instead of being buried mid-file by new records.
    ///
    /// `segment_bytes` is the rotation threshold (a segment is closed once
    /// its payload bytes exceed it; 0 means one record per segment).
    pub fn open(
        dir: impl Into<PathBuf>,
        prefix: impl Into<String>,
        policy: FsyncPolicy,
        segment_bytes: u64,
    ) -> Result<Self, PersistError> {
        let dir = dir.into();
        let prefix = prefix.into();
        fs::create_dir_all(&dir)
            .map_err(|e| PersistError::io(format!("create {}", dir.display()), e))?;
        let next_index = segments(&dir, &prefix)?.last().map_or(0, |(i, _)| i + 1);
        let (file, seg_len) = create_segment(&dir, &prefix, next_index, policy)?;
        Ok(Wal {
            dir,
            prefix,
            policy,
            segment_bytes,
            file,
            seg_index: next_index,
            seg_len,
            appends: 0,
            dirty: false,
        })
    }

    /// Appends one record. Under [`FsyncPolicy::Always`] the record is on
    /// stable storage when this returns; under `Batch` it is durable after
    /// the next [`Wal::commit`]; under `Off`, after the OS flushes it.
    pub fn append(&mut self, payload: &[u8]) -> Result<(), PersistError> {
        if self.seg_len > WAL_MAGIC.len() as u64 + 4 && self.seg_len >= self.segment_bytes {
            self.rotate()?;
        }
        let mut framed = Vec::with_capacity(payload.len() + 8);
        push_frame(&mut framed, payload);
        self.file.write_all(&framed).map_err(|e| {
            PersistError::io(
                format!(
                    "append to {}",
                    segment_file_name(&self.prefix, self.seg_index)
                ),
                e,
            )
        })?;
        self.seg_len += framed.len() as u64;
        self.appends += 1;
        self.dirty = true;
        if self.policy == FsyncPolicy::Always {
            self.sync()?;
        }
        Ok(())
    }

    /// Appends a group of records with one write: every payload is framed
    /// into a single buffer that hits the file (and the page cache) in one
    /// syscall. Equivalent to calling [`Wal::append`] per payload — same
    /// framing, same rotation and fsync rules — but prices a batch of
    /// records (e.g. one completion per request of a committed batch) at
    /// one syscall instead of one per record.
    pub fn append_all<P: AsRef<[u8]>>(&mut self, payloads: &[P]) -> Result<(), PersistError> {
        if payloads.is_empty() {
            return Ok(());
        }
        if self.seg_len > WAL_MAGIC.len() as u64 + 4 && self.seg_len >= self.segment_bytes {
            self.rotate()?;
        }
        let mut framed = Vec::with_capacity(payloads.iter().map(|p| p.as_ref().len() + 8).sum());
        for p in payloads {
            push_frame(&mut framed, p.as_ref());
        }
        self.file.write_all(&framed).map_err(|e| {
            PersistError::io(
                format!(
                    "append to {}",
                    segment_file_name(&self.prefix, self.seg_index)
                ),
                e,
            )
        })?;
        self.seg_len += framed.len() as u64;
        self.appends += payloads.len() as u64;
        self.dirty = true;
        if self.policy == FsyncPolicy::Always {
            self.sync()?;
        }
        Ok(())
    }

    /// Batch-boundary durability point: fsyncs pending appends unless the
    /// policy is [`FsyncPolicy::Off`]. The serving layer calls this before
    /// acknowledging a batch.
    pub fn commit(&mut self) -> Result<(), PersistError> {
        match self.policy {
            FsyncPolicy::Off => Ok(()),
            FsyncPolicy::Always | FsyncPolicy::Batch => self.sync(),
        }
    }

    fn sync(&mut self) -> Result<(), PersistError> {
        if !self.dirty {
            return Ok(());
        }
        // `sync_data` (fdatasync): flushes the appended bytes and the file
        // size — everything replay needs — without the full inode metadata
        // flush of `sync_all`. Measurably cheaper per batch commit.
        self.file.sync_data().map_err(|e| {
            PersistError::io(
                format!("fsync {}", segment_file_name(&self.prefix, self.seg_index)),
                e,
            )
        })?;
        self.dirty = false;
        Ok(())
    }

    /// Seals the current segment (fsync per policy) and starts the next
    /// one. Called automatically at the rotation threshold; callers rotate
    /// explicitly at checkpoint boundaries so fully-covered segments become
    /// prunable.
    pub fn rotate(&mut self) -> Result<u64, PersistError> {
        if self.policy != FsyncPolicy::Off {
            self.sync()?;
        }
        let next = self.seg_index + 1;
        let (file, seg_len) = create_segment(&self.dir, &self.prefix, next, self.policy)?;
        self.file = file;
        self.seg_index = next;
        self.seg_len = seg_len;
        self.dirty = false;
        Ok(next)
    }

    /// Records appended through this handle.
    pub fn appends(&self) -> u64 {
        self.appends
    }

    /// The segment currently being appended to.
    pub fn segment_index(&self) -> u64 {
        self.seg_index
    }

    /// The configured fsync policy.
    pub fn policy(&self) -> FsyncPolicy {
        self.policy
    }
}

fn create_segment(
    dir: &Path,
    prefix: &str,
    index: u64,
    policy: FsyncPolicy,
) -> Result<(fs::File, u64), PersistError> {
    let path = dir.join(segment_file_name(prefix, index));
    let mut file = fs::File::create(&path)
        .map_err(|e| PersistError::io(format!("create {}", path.display()), e))?;
    let mut header = Vec::with_capacity(12);
    header.extend_from_slice(WAL_MAGIC);
    header.extend_from_slice(&WAL_VERSION.to_le_bytes());
    file.write_all(&header)
        .map_err(|e| PersistError::io(format!("write header {}", path.display()), e))?;
    if policy != FsyncPolicy::Off {
        file.sync_all()
            .map_err(|e| PersistError::io(format!("fsync {}", path.display()), e))?;
        // The new segment's *name* must survive too.
        if let Ok(d) = fs::File::open(dir) {
            let _ = d.sync_all();
        }
    }
    Ok((file, header.len() as u64))
}

/// One replayed record.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WalRecord {
    /// Segment index the record was read from.
    pub segment: u64,
    /// Zero-based position within its segment.
    pub index_in_segment: u64,
    /// The opaque record bytes, exactly as appended.
    pub payload: Vec<u8>,
}

/// The crash frontier: where and how the last segment was torn. Returned
/// *inside* a successful [`Replay`] — the tear is the expected signature of
/// a kill mid-append and is surfaced typed, not refused and not hidden.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TornTail {
    /// Index of the torn (last) segment.
    pub segment: u64,
    /// Byte offset at which the tear begins.
    pub offset: usize,
    /// The typed truncation that marks the tear.
    pub error: PersistError,
}

/// Everything [`replay`] recovered from the log.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Replay {
    /// All whole, CRC-verified records in append order.
    pub records: Vec<WalRecord>,
    /// The torn tail of the last segment, if the log ends mid-record.
    pub torn_tail: Option<TornTail>,
    /// Number of segment files scanned.
    pub segments: usize,
}

/// Reads every record of the `prefix` log in `dir`, in append order.
///
/// Returns `Ok` with a possibly-torn tail (see [`TornTail`]) when the only
/// defect is a truncation at the very end of the **last** segment. Every
/// other defect — a CRC mismatch anywhere, or any defect in a non-last
/// segment — is a hard typed error: corrupt history is refused, never
/// silently replayed around.
pub fn replay(dir: &Path, prefix: &str) -> Result<Replay, PersistError> {
    let segs = segments(dir, prefix)?;
    let mut out = Replay {
        segments: segs.len(),
        ..Replay::default()
    };
    let last = segs.len().saturating_sub(1);
    for (pos_in_list, (index, path)) in segs.iter().enumerate() {
        let is_last = pos_in_list == last;
        let bytes =
            fs::read(path).map_err(|e| PersistError::io(format!("read {}", path.display()), e))?;
        let what = format!("wal segment {}", path.display());

        // Header. A short header is a tear only where a tear is possible:
        // the last segment (killed during creation).
        let header = WAL_MAGIC.len() + 4;
        if bytes.len() < header {
            let err = PersistError::Truncated {
                what: format!("{what}: header"),
                offset: 0,
                needed: header,
                available: bytes.len(),
            };
            if is_last {
                out.torn_tail = Some(TornTail {
                    segment: *index,
                    offset: bytes.len(),
                    error: err,
                });
                return Ok(out);
            }
            return Err(err);
        }
        if &bytes[..WAL_MAGIC.len()] != WAL_MAGIC {
            return Err(PersistError::BadMagic {
                what,
                found: bytes[..WAL_MAGIC.len()].to_vec(),
            });
        }
        let version = u32::from_le_bytes(bytes[8..12].try_into().unwrap());
        if version != WAL_VERSION {
            return Err(PersistError::UnsupportedVersion {
                what,
                found: version,
                supported: WAL_VERSION,
            });
        }

        let mut pos = header;
        let mut index_in_segment = 0u64;
        loop {
            match next_frame(&bytes, &mut pos, &what) {
                Ok(Frame::Ok(payload)) => {
                    out.records.push(WalRecord {
                        segment: *index,
                        index_in_segment,
                        payload: payload.to_vec(),
                    });
                    index_in_segment += 1;
                }
                Ok(Frame::End) => break,
                Err(err @ PersistError::Truncated { .. }) if is_last => {
                    out.torn_tail = Some(TornTail {
                        segment: *index,
                        offset: pos,
                        error: err,
                    });
                    return Ok(out);
                }
                // A truncation mid-history, or a CRC mismatch anywhere
                // (tears cannot produce full-length wrong-byte frames on an
                // append-only file — bit-flips can): hard refusal.
                Err(err) => return Err(err),
            }
        }
    }
    Ok(out)
}

/// Deletes every segment of `prefix` in `dir` with index strictly below
/// `below`. Called after a checkpoint has made the covered history
/// redundant. Returns how many files were removed.
pub fn remove_segments_below(dir: &Path, prefix: &str, below: u64) -> usize {
    let Ok(segs) = segments(dir, prefix) else {
        return 0;
    };
    let mut removed = 0;
    for (index, path) in segs {
        if index < below && fs::remove_file(&path).is_ok() {
            removed += 1;
        }
    }
    removed
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn temp_dir(tag: &str) -> PathBuf {
        static NEXT: AtomicU64 = AtomicU64::new(0);
        let n = NEXT.fetch_add(1, Ordering::Relaxed);
        let dir =
            std::env::temp_dir().join(format!("fol-wal-test-{}-{tag}-{n}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn payloads(r: &Replay) -> Vec<&[u8]> {
        r.records.iter().map(|x| x.payload.as_slice()).collect()
    }

    #[test]
    fn append_replay_round_trip_across_rotation() {
        let dir = temp_dir("rt");
        let mut wal = Wal::open(&dir, "w0", FsyncPolicy::Batch, 32).unwrap();
        for i in 0..6u8 {
            wal.append(&[i; 10]).unwrap();
        }
        wal.commit().unwrap();
        assert_eq!(wal.appends(), 6);
        assert!(wal.segment_index() > 0, "32-byte threshold forces rotation");

        let r = replay(&dir, "w0").unwrap();
        assert!(r.torn_tail.is_none());
        assert!(r.segments >= 2);
        assert_eq!(
            payloads(&r),
            (0..6u8).map(|i| vec![i; 10]).collect::<Vec<_>>()
        );
        // Append order is preserved across segment boundaries.
        for w in r.records.windows(2) {
            assert!((w[0].segment, w[0].index_in_segment) < (w[1].segment, w[1].index_in_segment));
        }
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn reopen_starts_a_fresh_segment_and_merges_on_replay() {
        let dir = temp_dir("reopen");
        let mut wal = Wal::open(&dir, "w0", FsyncPolicy::Off, 1 << 20).unwrap();
        wal.append(b"first").unwrap();
        drop(wal);
        let mut wal2 = Wal::open(&dir, "w0", FsyncPolicy::Off, 1 << 20).unwrap();
        assert_eq!(wal2.segment_index(), 1, "never appends to an old segment");
        wal2.append(b"second").unwrap();
        drop(wal2);
        let r = replay(&dir, "w0").unwrap();
        assert_eq!(
            payloads(&r),
            vec![b"first".as_slice(), b"second".as_slice()]
        );
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn torn_tail_on_last_segment_is_typed_not_refused() {
        let dir = temp_dir("tear");
        let mut wal = Wal::open(&dir, "w0", FsyncPolicy::Off, 1 << 20).unwrap();
        wal.append(b"kept-0").unwrap();
        wal.append(b"kept-1").unwrap();
        wal.append(b"torn-away").unwrap();
        drop(wal);
        let path = dir.join(segment_file_name("w0", 0));
        let len = fs::metadata(&path).unwrap().len();
        // Tear mid-way through the last record's payload.
        let f = fs::OpenOptions::new().write(true).open(&path).unwrap();
        f.set_len(len - 4).unwrap();

        let r = replay(&dir, "w0").unwrap();
        assert_eq!(
            payloads(&r),
            vec![b"kept-0".as_slice(), b"kept-1".as_slice()]
        );
        let tail = r.torn_tail.expect("the tear is surfaced");
        assert_eq!(tail.segment, 0);
        assert!(
            matches!(tail.error, PersistError::Truncated { .. }),
            "{}",
            tail.error
        );
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn torn_non_last_segment_is_a_hard_error() {
        let dir = temp_dir("sealed");
        let mut wal = Wal::open(&dir, "w0", FsyncPolicy::Off, 1 << 20).unwrap();
        wal.append(b"old").unwrap();
        wal.rotate().unwrap();
        wal.append(b"new").unwrap();
        drop(wal);
        let path = dir.join(segment_file_name("w0", 0));
        let len = fs::metadata(&path).unwrap().len();
        let f = fs::OpenOptions::new().write(true).open(&path).unwrap();
        f.set_len(len - 2).unwrap();

        let err = replay(&dir, "w0").unwrap_err();
        assert!(
            matches!(err, PersistError::Truncated { .. }),
            "sealed segments cannot legitimately be torn: {err}"
        );
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn mid_log_bit_flip_is_a_hard_crc_refusal_even_on_the_last_segment() {
        let dir = temp_dir("flip");
        let mut wal = Wal::open(&dir, "w0", FsyncPolicy::Off, 1 << 20).unwrap();
        wal.append(b"aaaaaaaa").unwrap();
        wal.append(b"bbbbbbbb").unwrap();
        drop(wal);
        let path = dir.join(segment_file_name("w0", 0));
        let mut bytes = fs::read(&path).unwrap();
        let mid = 12 + 8 + 3; // inside the first record's payload
        bytes[mid] ^= 0x01;
        fs::write(&path, &bytes).unwrap();

        let err = replay(&dir, "w0").unwrap_err();
        assert!(
            matches!(err, PersistError::CrcMismatch { .. }),
            "a bit-flip is corruption, not a crash frontier: {err}"
        );
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn torn_segment_header_at_the_tail_is_the_frontier() {
        let dir = temp_dir("torn-header");
        let mut wal = Wal::open(&dir, "w0", FsyncPolicy::Off, 1 << 20).unwrap();
        wal.append(b"survives").unwrap();
        drop(wal);
        // A segment whose creation itself was killed: 3 header bytes.
        fs::write(dir.join(segment_file_name("w0", 1)), b"FOL").unwrap();

        let r = replay(&dir, "w0").unwrap();
        assert_eq!(payloads(&r), vec![b"survives".as_slice()]);
        assert_eq!(r.torn_tail.expect("typed frontier").segment, 1);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn version_skew_and_bad_magic_are_hard_errors() {
        let dir = temp_dir("skew");
        let mut wal = Wal::open(&dir, "w0", FsyncPolicy::Off, 1 << 20).unwrap();
        wal.append(b"x").unwrap();
        drop(wal);
        let path = dir.join(segment_file_name("w0", 0));
        let good = fs::read(&path).unwrap();

        let mut bumped = good.clone();
        bumped[8] = (WAL_VERSION + 7) as u8;
        fs::write(&path, &bumped).unwrap();
        let err = replay(&dir, "w0").unwrap_err();
        assert!(
            matches!(err, PersistError::UnsupportedVersion { .. }),
            "{err}"
        );

        let mut magic = good.clone();
        magic[0] = b'Z';
        fs::write(&path, &magic).unwrap();
        let err = replay(&dir, "w0").unwrap_err();
        assert!(matches!(err, PersistError::BadMagic { .. }), "{err}");
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn empty_log_replays_empty_and_pruning_respects_below() {
        let dir = temp_dir("prune");
        assert_eq!(replay(&dir.join("nope"), "w0").unwrap(), Replay::default());

        let mut wal = Wal::open(&dir, "w0", FsyncPolicy::Off, 1 << 20).unwrap();
        wal.append(b"a").unwrap();
        wal.rotate().unwrap();
        wal.append(b"b").unwrap();
        wal.rotate().unwrap();
        wal.append(b"c").unwrap();
        drop(wal);
        assert_eq!(remove_segments_below(&dir, "w0", 2), 2);
        let r = replay(&dir, "w0").unwrap();
        assert_eq!(payloads(&r), vec![b"c".as_slice()]);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn fsync_policy_parses_and_displays() {
        for (s, p) in [
            ("always", FsyncPolicy::Always),
            ("batch", FsyncPolicy::Batch),
            ("off", FsyncPolicy::Off),
        ] {
            assert_eq!(s.parse::<FsyncPolicy>().unwrap(), p);
            assert_eq!(p.to_string(), s);
        }
        assert!("sometimes".parse::<FsyncPolicy>().is_err());
    }
}
