//! Log-structured compaction: bounding disk without un-earning recovery.
//!
//! Delta cadences keep durability cheap but let artifacts accumulate: WAL
//! segments pile up behind every checkpoint, and superseded generations
//! (old full images and the deltas between them) are dead weight once a
//! newer durable generation covers them. The [`Compactor`] deletes both —
//! under rules chosen so that **every fallback the
//! [`crate::planner::RecoveryPlanner`] might take still has the WAL
//! coverage it needs**:
//!
//! * **Retention boundary** — per checkpoint prefix, the *oldest* of the
//!   newest `keep_full_images` **loadable** full images. Everything
//!   strictly below it (full or delta) is prunable; everything at or above
//!   it is a potential restore head and is kept. If *no* full image loads,
//!   compaction refuses, typed ([`CompactRefusal::NoLoadableFullImage`]) —
//!   deleting anything could orphan the only evidence left.
//! * **WAL floor** — a segment is deletable only if every admission record
//!   in it is covered by the *boundary* image's applied set (not the newest
//!   generation's: the planner may legitimately fall back as far as the
//!   boundary, and replay must still cover the gap) or was terminally
//!   refused. Only a *prefix* of segments is deleted — an admission's
//!   later completion record can then never be orphaned — and the active
//!   (last) segment is never touched.
//! * **Crash-safe ordering** — boundary images are fsynced *first* (a
//!   cadence may have written them unsynced, trusting the WAL that is
//!   about to be deleted), then a marker file is committed, then files are
//!   deleted, then the directory is fsynced, then the marker is removed.
//!   A kill anywhere leaves either extra files (re-prunable, harmless) or
//!   a marker naming an interrupted pass; re-running is idempotent.

use crate::checkpoint::{write_atomic, Checkpoint};
use crate::planner::{scan_generations, Generation, GenerationKind};
use crate::wal::{replay, segments};
use crate::PersistError;
use std::collections::BTreeSet;
use std::fs;
use std::path::PathBuf;

/// How the compactor reads the serving layer's (otherwise opaque) WAL
/// records: the caller supplies a classifier from payload bytes to this.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LogRecord {
    /// A request was admitted (and acknowledged) under `seq`.
    Admit {
        /// The request sequence number.
        seq: u64,
    },
    /// A request completed; `applied` is false for a typed refusal that
    /// was reported to the client (and must never be silently re-driven).
    Complete {
        /// The request sequence number.
        seq: u64,
        /// Whether the request mutated state.
        applied: bool,
    },
    /// Anything else — ignored by compaction, never load-bearing.
    Other,
}

/// A typed reason the compactor declined to delete something. Refusals are
/// recorded in the [`CompactionReport`], and the corresponding deletions
/// simply do not happen — compaction is never load-bearing for
/// correctness, only for disk bounds.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CompactRefusal {
    /// No full image of `prefix` loads and verifies: pruning anything
    /// could orphan the only recoverable evidence, and the WAL floor is
    /// unknowable, so the WAL is not compacted either.
    NoLoadableFullImage {
        /// The checkpoint prefix whose images all failed.
        prefix: String,
        /// How many full-image files were examined.
        examined: usize,
        /// The newest image's typed load error, when any file existed.
        newest_error: Option<PersistError>,
    },
    /// The WAL did not replay cleanly (hard corruption in sealed history):
    /// its segments are left for the operator, nothing is deleted.
    WalUnreadable {
        /// The typed replay error.
        error: PersistError,
    },
}

impl std::fmt::Display for CompactRefusal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CompactRefusal::NoLoadableFullImage {
                prefix, examined, ..
            } => write!(
                f,
                "no loadable full image for {prefix:?} ({examined} examined): refusing to prune"
            ),
            CompactRefusal::WalUnreadable { error } => {
                write!(f, "wal does not replay cleanly: {error}")
            }
        }
    }
}

/// What one compaction pass did (and declined to do).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct CompactionReport {
    /// Generation files (full images and deltas) removed.
    pub generations_removed: usize,
    /// Sealed WAL segments removed.
    pub wal_segments_removed: usize,
    /// Per checkpoint prefix: the retention boundary chosen (the oldest
    /// retained loadable full image's generation id).
    pub boundaries: Vec<(String, u64)>,
    /// Typed refusals: deletions that did not happen, and why.
    pub refusals: Vec<CompactRefusal>,
    /// A marker from an interrupted previous pass was found at entry; this
    /// pass recomputed and completed the work.
    pub resumed_marker: bool,
}

/// The compaction policy and entry point. See the module docs.
pub struct Compactor {
    dir: PathBuf,
    wal_prefix: String,
    keep_full_images: usize,
}

impl Compactor {
    /// A compactor over `dir`, whose WAL segments use `wal_prefix`.
    /// Defaults to retaining 2 full images per checkpoint prefix.
    pub fn new(dir: impl Into<PathBuf>, wal_prefix: impl Into<String>) -> Self {
        Compactor {
            dir: dir.into(),
            wal_prefix: wal_prefix.into(),
            keep_full_images: 2,
        }
    }

    /// Retain the newest `keep` loadable full images per prefix (0 is
    /// treated as 1 — retaining nothing would orphan every delta chain).
    pub fn keep_full_images(mut self, keep: usize) -> Self {
        self.keep_full_images = keep.max(1);
        self
    }

    /// The marker file that makes the delete phase crash-evident.
    pub fn marker_path(&self) -> PathBuf {
        self.dir.join(format!("{}.compacting", self.wal_prefix))
    }

    /// One compaction pass over every checkpoint prefix in
    /// `ckpt_prefixes` plus the shared WAL. `classify` decodes WAL record
    /// payloads (the serving layer owns that codec). Read-only until the
    /// plan is complete; idempotent; safe to re-run after a kill. `Err` is
    /// reserved for unreadable directories — per-file problems become
    /// typed refusals inside the `Ok`.
    pub fn compact(
        &self,
        ckpt_prefixes: &[&str],
        classify: impl Fn(&[u8]) -> LogRecord,
    ) -> Result<CompactionReport, PersistError> {
        let mut report = CompactionReport {
            resumed_marker: self.marker_path().exists(),
            ..CompactionReport::default()
        };

        // Phase 1: plan. Choose boundaries, collect the covered-seq floor,
        // and list every file to delete — touching nothing yet.
        let mut covered: BTreeSet<u64> = BTreeSet::new();
        let mut floor_known = true;
        let mut gen_deletions: Vec<PathBuf> = Vec::new();
        let mut boundary_paths: Vec<PathBuf> = Vec::new();
        for &prefix in ckpt_prefixes {
            let (gens, _notes) = scan_generations(&self.dir, prefix)?;
            if gens.is_empty() {
                continue; // A fresh prefix constrains nothing.
            }
            let fulls: Vec<&Generation> = gens
                .iter()
                .filter(|g| g.kind == GenerationKind::Full)
                .collect();
            let mut retained = 0usize;
            let mut boundary: Option<(&Generation, Checkpoint)> = None;
            let mut newest_error: Option<PersistError> = None;
            for g in &fulls {
                match Checkpoint::load(&g.path).and_then(|c| c.verify().map(|()| c)) {
                    Ok(c) => {
                        retained += 1;
                        boundary = Some((g, c));
                        if retained >= self.keep_full_images {
                            break;
                        }
                    }
                    Err(e) => {
                        if newest_error.is_none() {
                            newest_error = Some(e);
                        }
                    }
                }
            }
            let Some((bgen, bckpt)) = boundary else {
                report.refusals.push(CompactRefusal::NoLoadableFullImage {
                    prefix: prefix.to_string(),
                    examined: fulls.len(),
                    newest_error,
                });
                floor_known = false;
                continue;
            };
            report.boundaries.push((prefix.to_string(), bgen.seq));
            covered.extend(bckpt.applied.iter().copied());
            boundary_paths.push(bgen.path.clone());
            gen_deletions.extend(
                gens.iter()
                    .filter(|g| g.seq < bgen.seq)
                    .map(|g| g.path.clone()),
            );
        }

        // Phase 1b: the WAL plan. Only when every prefix's floor is known —
        // an unknown floor could make a needed admission look deletable.
        let mut wal_deletions: Vec<PathBuf> = Vec::new();
        if floor_known {
            match replay(&self.dir, &self.wal_prefix) {
                Err(error) => report
                    .refusals
                    .push(CompactRefusal::WalUnreadable { error }),
                Ok(rep) => {
                    let refused: BTreeSet<u64> = rep
                        .records
                        .iter()
                        .filter_map(|r| match classify(&r.payload) {
                            LogRecord::Complete {
                                seq,
                                applied: false,
                            } => Some(seq),
                            _ => None,
                        })
                        .collect();
                    let segs = segments(&self.dir, &self.wal_prefix)?;
                    // Longest deletable prefix, never the active segment.
                    for (index, path) in segs.iter().take(segs.len().saturating_sub(1)) {
                        let deletable =
                            rep.records.iter().filter(|r| r.segment == *index).all(|r| {
                                match classify(&r.payload) {
                                    LogRecord::Admit { seq } => {
                                        covered.contains(&seq) || refused.contains(&seq)
                                    }
                                    _ => true,
                                }
                            });
                        if deletable {
                            wal_deletions.push(path.clone());
                        } else {
                            break;
                        }
                    }
                }
            }
        }

        if gen_deletions.is_empty() && wal_deletions.is_empty() {
            // Nothing to do; clear a stale marker from an interrupted pass
            // whose work is evidently already complete.
            if report.resumed_marker {
                let _ = fs::remove_file(self.marker_path());
                self.fsync_dir();
            }
            return Ok(report);
        }

        // Phase 2: make the floor durable. Cadence writes below `Always`
        // leave images unsynced, trusting the WAL — which is exactly what
        // is about to be deleted. Power loss after the deletes must not be
        // able to tear a boundary image.
        for path in &boundary_paths {
            if let Ok(f) = fs::File::open(path) {
                let _ = f.sync_all();
            }
        }
        self.fsync_dir();

        // Phase 3: mark, delete, fsync, unmark.
        let marker_body = format!(
            "compacting: {} generation file(s), {} wal segment(s)\n",
            gen_deletions.len(),
            wal_deletions.len()
        );
        write_atomic(&self.marker_path(), marker_body.as_bytes())?;
        for path in &gen_deletions {
            if fs::remove_file(path).is_ok() {
                report.generations_removed += 1;
            }
        }
        for path in &wal_deletions {
            if fs::remove_file(path).is_ok() {
                report.wal_segments_removed += 1;
            }
        }
        self.fsync_dir();
        let _ = fs::remove_file(self.marker_path());
        self.fsync_dir();
        Ok(report)
    }

    fn fsync_dir(&self) {
        if let Ok(d) = fs::File::open(&self.dir) {
            let _ = d.sync_all();
        }
    }
}

/// Convenience for callers that do not discriminate record types (tests,
/// tools): treat every record as [`LogRecord::Other`], so WAL segments are
/// deletable purely by position. Generally you want a real classifier.
pub fn classify_none(_payload: &[u8]) -> LogRecord {
    LogRecord::Other
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::delta::DeltaCheckpoint;
    use crate::planner::RecoveryPlanner;
    use crate::wal::{FsyncPolicy, Wal};
    use fol_vm::{CostModel, Machine, Region, Word};
    use std::path::Path;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn temp_dir(tag: &str) -> PathBuf {
        static NEXT: AtomicU64 = AtomicU64::new(0);
        let n = NEXT.fetch_add(1, Ordering::Relaxed);
        let dir =
            std::env::temp_dir().join(format!("fol-compact-test-{}-{tag}-{n}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn sample_machine() -> (Machine, Region) {
        let mut m = Machine::new(CostModel::unit());
        let a = m.alloc(8, "a");
        for i in 0..8 {
            m.s_write(a.at(i), i as Word);
        }
        m.track_region(a);
        (m, a)
    }

    /// Test codec: [1, seq] = admit, [2, seq, applied] = complete.
    fn classify(p: &[u8]) -> LogRecord {
        match p.first() {
            Some(1) => LogRecord::Admit { seq: p[1] as u64 },
            Some(2) => LogRecord::Complete {
                seq: p[1] as u64,
                applied: p[2] == 1,
            },
            _ => LogRecord::Other,
        }
    }

    fn admit(seq: u8) -> Vec<u8> {
        vec![1, seq]
    }
    fn complete(seq: u8, applied: bool) -> Vec<u8> {
        vec![2, seq, applied as u8]
    }

    /// Full images at 1..=n_fulls with deltas between, applied sets
    /// growing: full at seq s has applied {1..=s}.
    fn write_generations(dir: &Path, prefix: &str, fulls: &[u64], deltas: &[(u64, u64)]) {
        let (mut m, a) = sample_machine();
        let mut sums_by_seq = std::collections::HashMap::new();
        let mut all: Vec<(u64, bool, u64)> = fulls.iter().map(|&s| (s, true, 0)).collect();
        all.extend(deltas.iter().map(|&(s, p)| (s, false, p)));
        all.sort_unstable();
        for (seq, is_full, parent) in all {
            let idx = m.vimm(&[(seq % 8) as Word]);
            let val = m.vimm(&[seq as Word * 10]);
            m.scatter(a, &idx, &val);
            let applied: Vec<u64> = (1..=seq).collect();
            if is_full {
                let c = Checkpoint::capture(&m, &[a], seq, vec![], applied);
                c.write(&dir.join(Checkpoint::file_name(prefix, seq)))
                    .unwrap();
                sums_by_seq.insert(seq, c.checksums.clone());
            } else {
                let parent_sums = sums_by_seq.get(&parent).expect("parent written first");
                let d = DeltaCheckpoint::capture(&m, seq, parent, parent_sums, vec![], applied);
                d.write(&dir.join(DeltaCheckpoint::file_name(prefix, seq)))
                    .unwrap();
                sums_by_seq.insert(seq, d.checksums.clone());
            }
        }
    }

    #[test]
    fn retention_keeps_newest_fulls_and_the_deltas_above_the_boundary() {
        let dir = temp_dir("retain");
        write_generations(&dir, "w0", &[2, 4, 6], &[(3, 2), (5, 4), (7, 6)]);

        let report = Compactor::new(&dir, "requests")
            .keep_full_images(2)
            .compact(&["w0"], classify)
            .unwrap();
        assert_eq!(report.boundaries, vec![("w0".to_string(), 4)]);
        // Below 4: full@2, delta@3 — both gone. At or above: kept.
        assert_eq!(report.generations_removed, 2);
        assert!(!dir.join(Checkpoint::file_name("w0", 2)).exists());
        assert!(!dir.join(DeltaCheckpoint::file_name("w0", 3)).exists());
        assert!(dir.join(Checkpoint::file_name("w0", 4)).exists());
        assert!(dir.join(DeltaCheckpoint::file_name("w0", 7)).exists());
        assert!(report.refusals.is_empty(), "{:?}", report.refusals);
        assert!(!Compactor::new(&dir, "requests").marker_path().exists());

        // The planner still restores the newest head after compaction.
        let plan = RecoveryPlanner::new(&dir, "w0").plan().unwrap();
        assert_eq!(plan.checkpoint.unwrap().seq, 7);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn refuses_to_prune_when_no_full_image_loads() {
        let dir = temp_dir("orphan");
        write_generations(&dir, "w0", &[2, 4], &[(3, 2), (5, 4)]);
        // Corrupt both full images.
        for seq in [2u64, 4] {
            let p = dir.join(Checkpoint::file_name("w0", seq));
            let mut b = fs::read(&p).unwrap();
            let mid = b.len() / 2;
            b[mid] ^= 0x01;
            fs::write(&p, &b).unwrap();
        }
        let mut wal = Wal::open(&dir, "requests", FsyncPolicy::Off, 1 << 20).unwrap();
        wal.append(&admit(1)).unwrap();
        wal.rotate().unwrap();
        wal.append(&admit(2)).unwrap();
        drop(wal);

        let report = Compactor::new(&dir, "requests")
            .keep_full_images(1)
            .compact(&["w0"], classify)
            .unwrap();
        assert_eq!(report.generations_removed, 0, "nothing deleted");
        assert_eq!(report.wal_segments_removed, 0, "wal floor unknown");
        assert!(
            matches!(
                &report.refusals[..],
                [CompactRefusal::NoLoadableFullImage { prefix, examined: 2, .. }] if prefix == "w0"
            ),
            "{:?}",
            report.refusals
        );
        assert!(dir.join(DeltaCheckpoint::file_name("w0", 3)).exists());
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn wal_prefix_deletion_respects_the_boundary_floor_not_the_newest() {
        let dir = temp_dir("floor");
        // Boundary with keep=2 is full@4 (applied {1..4}); the newest
        // generation covers more, but the floor must protect fallback.
        write_generations(&dir, "w0", &[4, 8], &[]);
        let mut wal = Wal::open(&dir, "requests", FsyncPolicy::Off, 1 << 20).unwrap();
        // Segment layout (segment_bytes=0 rotates per append … after the
        // first): force explicit segments.
        wal.append(&admit(1)).unwrap();
        wal.append(&complete(1, true)).unwrap();
        wal.rotate().unwrap();
        wal.append(&admit(4)).unwrap();
        wal.rotate().unwrap();
        wal.append(&admit(6)).unwrap(); // covered only by the *newest* image
        wal.rotate().unwrap();
        wal.append(&admit(9)).unwrap(); // covered by nothing
        drop(wal);

        let report = Compactor::new(&dir, "requests")
            .keep_full_images(2)
            .compact(&["w0"], classify)
            .unwrap();
        assert_eq!(report.boundaries, vec![("w0".to_string(), 4)]);
        // Segments 0 (admit 1) and 1 (admit 4) are below the floor; the
        // segment holding admit 6 is NOT deletable (floor is 4, not 8), so
        // the prefix stops there.
        assert_eq!(report.wal_segments_removed, 2);
        let remaining = segments(&dir, "requests").unwrap();
        assert_eq!(remaining.first().unwrap().0, 2);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn terminally_refused_admissions_do_not_block_deletion() {
        let dir = temp_dir("refused");
        write_generations(&dir, "w0", &[3], &[]);
        let mut wal = Wal::open(&dir, "requests", FsyncPolicy::Off, 1 << 20).unwrap();
        wal.append(&admit(7)).unwrap(); // never applied…
        wal.append(&complete(7, false)).unwrap(); // …refused, terminally
        wal.rotate().unwrap();
        wal.append(&admit(8)).unwrap();
        drop(wal);

        let report = Compactor::new(&dir, "requests")
            .keep_full_images(1)
            .compact(&["w0"], classify)
            .unwrap();
        assert_eq!(report.wal_segments_removed, 1);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn a_stale_marker_is_resumed_and_cleared() {
        let dir = temp_dir("marker");
        write_generations(&dir, "w0", &[2, 4], &[]);
        let compactor = Compactor::new(&dir, "requests").keep_full_images(1);
        fs::write(compactor.marker_path(), b"interrupted").unwrap();

        let report = compactor.compact(&["w0"], classify).unwrap();
        assert!(report.resumed_marker);
        assert_eq!(report.generations_removed, 1);
        assert!(!compactor.marker_path().exists(), "marker cleared");

        // Idempotent: a second pass finds nothing and no marker.
        let again = compactor.compact(&["w0"], classify).unwrap();
        assert_eq!(again.generations_removed, 0);
        assert!(!again.resumed_marker);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn fresh_prefixes_and_missing_wal_are_no_ops() {
        let dir = temp_dir("fresh");
        let report = Compactor::new(&dir, "requests")
            .compact(&["w0", "w1"], classify_none)
            .unwrap();
        assert_eq!(report, CompactionReport::default());
        fs::remove_dir_all(&dir).ok();
    }
}
