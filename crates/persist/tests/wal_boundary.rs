//! Satellite: the torn-tail boundary property.
//!
//! A crash mid-append tears the last WAL segment at an arbitrary byte. The
//! replayer's contract has two halves that meet exactly at frame
//! boundaries:
//!
//! * torn **exactly at a frame boundary** — indistinguishable from a clean
//!   shutdown after that frame: the accepted frontier is every whole frame,
//!   and there is **no** torn-tail refusal (nothing was torn);
//! * torn **anywhere inside a frame** — same accepted frontier (every
//!   whole frame before the tear), plus a typed [`TornTail`] naming the
//!   tear, so the caller knows the log ended violently.
//!
//! This sweeps every truncation point across the last two frames and
//! asserts the contract byte-for-byte, including the off-by-one edges at
//! both frame boundaries.

use fol_persist::wal::{replay, segment_file_name, FsyncPolicy, Wal};
use std::fs;
use std::path::PathBuf;

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "fol-wal-boundary-{}-{tag}-{}",
        std::process::id(),
        std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .unwrap()
            .as_nanos()
    ));
    fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn truncation_sweep_across_the_last_two_frames() {
    let dir = temp_dir("sweep");
    let payloads: Vec<Vec<u8>> = (0..5u8).map(|i| vec![i; 6 + i as usize]).collect();

    // Byte offset where each frame ends: header(12) + Σ(8 + len).
    let mut frame_ends = Vec::new();
    let mut off = 12usize;
    for p in &payloads {
        off += 8 + p.len();
        frame_ends.push(off);
    }

    let mut wal = Wal::open(&dir, "w0", FsyncPolicy::Off, 1 << 20).unwrap();
    for p in &payloads {
        wal.append(p).unwrap();
    }
    drop(wal);
    let path = dir.join(segment_file_name("w0", 0));
    let intact = fs::read(&path).unwrap();
    assert_eq!(intact.len(), *frame_ends.last().unwrap(), "offset math");

    // Sweep every cut point from the start of the second-to-last frame to
    // the intact end of file.
    let sweep_from = frame_ends[frame_ends.len() - 3]; // end of frame 2 = start of frame 3
    for cut in sweep_from..=intact.len() {
        fs::write(&path, &intact[..cut]).unwrap();
        let r = replay(&dir, "w0").expect("a tail tear is never a hard refusal");

        // The accepted frontier: every frame wholly before the cut. The
        // frontier is a *function of the cut alone* — identical whether the
        // cut is clean or mid-frame.
        let whole = frame_ends.iter().filter(|&&e| e <= cut).count();
        let got: Vec<&[u8]> = r.records.iter().map(|x| x.payload.as_slice()).collect();
        let want: Vec<&[u8]> = payloads[..whole].iter().map(|p| p.as_slice()).collect();
        assert_eq!(got, want, "frontier at cut {cut}");

        let at_boundary = frame_ends.contains(&cut);
        if at_boundary {
            assert!(
                r.torn_tail.is_none(),
                "cut {cut} is exactly a frame boundary: clean accepted frontier, \
                 no torn-tail refusal"
            );
        } else {
            let tail = r.torn_tail.unwrap_or_else(|| {
                panic!("cut {cut} is mid-frame: the tear must be surfaced typed")
            });
            assert_eq!(tail.segment, 0);
            assert!(
                matches!(tail.error, fol_persist::PersistError::Truncated { .. }),
                "cut {cut}: {}",
                tail.error
            );
            // The tear is reported at the frontier, not somewhere vague.
            assert_eq!(
                tail.offset,
                frame_ends[..whole].last().copied().unwrap_or(12),
                "cut {cut}: tear offset is the accepted frontier"
            );
        }
    }
    fs::remove_dir_all(&dir).ok();
}

#[test]
fn boundary_contract_holds_with_a_sealed_segment_behind() {
    // Same property with an earlier sealed segment: tears in the last
    // segment stay typed-accepted, and the sealed history is untouched.
    let dir = temp_dir("sealed");
    let mut wal = Wal::open(&dir, "w0", FsyncPolicy::Off, 1 << 20).unwrap();
    wal.append(b"sealed-0").unwrap();
    wal.rotate().unwrap();
    wal.append(b"live-0").unwrap();
    wal.append(b"live-1").unwrap();
    drop(wal);

    let path = dir.join(segment_file_name("w0", 1));
    let intact = fs::read(&path).unwrap();
    let f0_end = 12 + 8 + b"live-0".len();
    for cut in f0_end..intact.len() {
        fs::write(&path, &intact[..cut]).unwrap();
        let r = replay(&dir, "w0").unwrap();
        let mut want: Vec<&[u8]> = vec![b"sealed-0"];
        if cut >= f0_end {
            want.push(b"live-0");
        }
        let got: Vec<&[u8]> = r.records.iter().map(|x| x.payload.as_slice()).collect();
        assert_eq!(got, want, "cut {cut}");
        assert_eq!(r.torn_tail.is_none(), cut == f0_end, "cut {cut}");
    }
    fs::remove_dir_all(&dir).ok();
}
