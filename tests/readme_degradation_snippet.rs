//! Compile-and-run check for the README "Graceful degradation" snippet —
//! if the public API drifts, this test fails before the docs lie.

use fol_core::recover::{txn_apply_rounds, ExecMode, RetryPolicy};
use fol_vm::{CostModel, FaultPlan, Machine};

#[test]
fn readme_graceful_degradation_snippet() {
    let mut m = Machine::new(CostModel::unit());
    // Physical lane 5 drops *every* write routed through it.
    m.set_fault_plan(Some(FaultPlan::sticky_lanes(7, 1 << 5)));
    let work = m.alloc(97, "work");

    let targets: Vec<usize> = (0..256).map(|i| i % 97).collect();
    let mut expect = vec![0u32; 97];
    for &t in &targets {
        expect[t] += 1;
    }

    let mut counts = vec![0u32; 97];
    let (_, report) = txn_apply_rounds(
        &mut m,
        work,
        &mut counts,
        &targets,
        &RetryPolicy::default(),
        |cell, _i| *cell += 1,
    )
    .expect("the degraded rung routes around the sick lane");

    assert_eq!(counts, expect); // same answer the healthy machine gives
    assert!(m.health().is_quarantined(5)); // the sick lane is benched...
    assert!(matches!(
        report.final_mode, // ...and the other 63 keep streaming
        ExecMode::DegradedVector { .. }
    ));
}
