//! Compile-and-run check for the README "Horizontal scale-out" snippet —
//! if the cluster API drifts, this test fails before the docs lie.

use fol_net::{
    rebalance, ClusterClient, NetClient, NetClientConfig, NetServer, NetServerConfig, ShardMap,
};
use fol_serve::{Request, Response, Server, ServerConfig};

#[test]
fn readme_shard_snippet() {
    // Three single-process nodes; the map hashes 64 shards onto them via
    // a consistent-hash ring with 64 virtual points per node.
    let nets: Vec<NetServer> = (0..3)
        .map(|_| {
            NetServer::start(
                Server::start(ServerConfig::default()),
                NetServerConfig::default(),
            )
            .unwrap()
        })
        .collect();
    let addrs: Vec<String> = nets.iter().map(|n| n.local_addr().to_string()).collect();
    let map = ShardMap::build(addrs, 64, 64, 1);
    for (i, addr) in map.nodes.iter().enumerate() {
        NetClient::new(addr.clone(), NetClientConfig::default())
            .install_map(&map, i as u32)
            .unwrap();
    }

    // The router hashes each key to its shard's owner and runs the
    // per-node fan-out of every batch concurrently; each ack carries the
    // epoch it was served under.
    let mut cc = ClusterClient::new(
        map.clone(),
        NetClientConfig {
            client_id: 7,
            ..NetClientConfig::default()
        },
        2,
    );
    let batch: Vec<Request> = (0..128)
        .map(|k| Request::ChainInsert { keys: vec![k] })
        .collect();
    for outcome in cc.call_many(&batch) {
        assert!(matches!(outcome, Ok(Response::ChainInserted { .. })));
    }

    // Scale out: add a fourth node and drive the crash-safe handoff. Only
    // shards whose ring successor changed move, and the epoch advances
    // only after every gainer acked a digest-verified install.
    let joiner = NetServer::start(
        Server::start(ServerConfig::default()),
        NetServerConfig::default(),
    )
    .unwrap();
    let next = map.with_node_added(joiner.local_addr().to_string());
    let report = rebalance(&map, &next, &NetClientConfig::default()).unwrap();
    assert_eq!(report.to_epoch, map.epoch + 1);
    assert!(report
        .moved
        .iter()
        .all(|m| m.to == joiner.local_addr().to_string()));

    // The stale router is refused *typed* (WrongEpoch), fetches the new
    // map from the cluster, and re-routes — the caller just sees Ok.
    for outcome in cc.call_many(&[Request::ChainInsert { keys: vec![1000] }]) {
        assert!(matches!(outcome, Ok(Response::ChainInserted { .. })));
    }
    assert_eq!(cc.map().epoch, next.epoch);

    for n in nets {
        n.shutdown();
    }
    joiner.shutdown();
}
