//! Differential integrity suite: the two independent corruption detectors —
//! journal-layer [`Snapshot`]s (full byte copies) and integrity-layer
//! incremental checksums ([`Machine::checksum_of`] / [`Machine::scrub`]) —
//! must agree on every chaos cell and on hand-planted divergence.
//!
//! The detectors share no code: snapshots compare words, checksums compare
//! XOR-of-`mix` digests maintained incrementally on the store path. If they
//! ever disagree about whether a tracked region diverged, one of them is
//! lying, and the recovery ladder's repair decisions (restore + resync) are
//! built on sand. These tests sweep both the scatter-fault and the
//! corruption matrices and then probe the disagreement cases directly.

use fol_core::recover::RetryPolicy;
use fol_hash::chaining::{txn_insert_all as txn_chain_insert, ChainTable};
use fol_sort::dist_count::txn_sort;
use fol_vm::{digest_words, AmalgamMode, CostModel, FaultPlan, Machine, Region, Snapshot, Word};

const SEEDS: [u64; 3] = [7, 99, 20260807];

/// Scatter-side and read-side/memory fault plans, swept together: the
/// detectors' agreement must hold regardless of which unit the faults hit.
fn all_plans(seed: u64) -> Vec<(&'static str, FaultPlan)> {
    vec![
        ("benign", FaultPlan::benign(seed)),
        ("drops-12%", FaultPlan::dropped_lanes(seed, 8000)),
        (
            "tears-12%",
            FaultPlan::torn_writes(seed, 8000, AmalgamMode::Or),
        ),
        ("gather-flips-12%", FaultPlan::gather_flips(seed, 8000)),
        (
            "stale-reads-12%",
            FaultPlan::benign(seed).with_stale_reads(8000),
        ),
        ("bit-rot-12%", FaultPlan::bit_rot(seed, 8000)),
        (
            "rot+drops-12%",
            FaultPlan::bit_rot(seed, 8000).with_drop_rate(8000),
        ),
    ]
}

fn keys_for(seed: u64, n: usize, modulus: Word) -> Vec<Word> {
    let mut s = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1);
    (0..n)
        .map(|_| {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            ((s >> 16) as Word).rem_euclid(modulus)
        })
        .collect()
}

/// Asserts the post-transaction agreement invariant on `m`:
///
/// 1. `scrub()` is clean — whatever the transaction outcome, the machine is
///    never left holding undetected divergence (commit requires a clean
///    scrub; abort restores the snapshot and resyncs).
/// 2. Recomputing each tracked region's digest from memory via the public
///    [`digest_words`] reproduces `checksum_of` exactly — the incremental
///    sum maintained across every scatter/store equals the from-scratch sum.
/// 3. A [`Snapshot`] captured *now* matches memory and stays matching: the
///    byte-level view and the digest-level view describe the same state.
fn assert_detectors_agree(m: &Machine, cell: &str) {
    if let Err(e) = m.scrub() {
        panic!("{cell}: machine left with undetected divergence: {e}");
    }
    let tracked: Vec<Region> = m.tracked_regions().iter().map(|t| t.region).collect();
    assert!(!tracked.is_empty(), "{cell}: no tracked regions to compare");
    for r in &tracked {
        let recomputed = digest_words(r.base(), &m.mem().read_region(*r));
        assert_eq!(
            m.checksum_of(*r),
            Some(recomputed),
            "{cell}: incremental checksum diverged from from-scratch digest"
        );
    }
    let snap = Snapshot::capture(m.mem(), &tracked);
    assert!(snap.matches(m.mem()), "{cell}: snapshot self-check failed");
    assert!(snap.diff(m.mem()).is_empty(), "{cell}: snapshot diff dirty");
}

#[test]
fn detectors_agree_after_every_chaining_cell() {
    for seed in SEEDS {
        for (name, plan) in all_plans(seed) {
            let keys = keys_for(seed ^ 0xD1FF, 24, 500);
            let mut m = Machine::new(CostModel::unit());
            m.set_fault_plan(Some(plan));
            let mut t = ChainTable::alloc(&mut m, 11, 28);
            // Outcome (Ok or typed Err) is the chaos suite's concern; here
            // only the detector agreement afterwards matters.
            let _ = txn_chain_insert(&mut m, &mut t, &keys, &RetryPolicy::default());
            assert!(!m.in_txn());
            assert_detectors_agree(&m, &format!("chaining/{name}/{seed}"));
        }
    }
}

#[test]
fn detectors_agree_after_every_dist_count_cell() {
    for seed in SEEDS {
        for (name, plan) in all_plans(seed) {
            let data = keys_for(seed ^ 0x50FA, 40, 32);
            let mut m = Machine::new(CostModel::unit());
            m.set_fault_plan(Some(plan));
            let a = m.alloc(data.len(), "A");
            m.mem_mut().write_region(a, &data);
            let _ = txn_sort(&mut m, a, 32, &RetryPolicy::default());
            assert!(!m.in_txn());
            assert_detectors_agree(&m, &format!("dist_count/{name}/{seed}"));
        }
    }
}

/// Plants one out-of-band word behind the store path's back and checks both
/// detectors fire, agree on the location, and are both repaired by a
/// snapshot restore — without touching `resync_integrity`.
#[test]
fn planted_divergence_is_seen_by_both_detectors_at_the_same_address() {
    let mut m = Machine::new(CostModel::unit());
    let a = m.alloc(16, "planted");
    let data: Vec<Word> = (0..16).collect();
    m.mem_mut().write_region(a, &data);
    m.track_region(a);
    let snap = Snapshot::capture(m.mem(), &[a]);
    assert!(m.scrub().is_ok());

    let victim = a.base() + 9;
    let clean = m.mem().read(victim);
    m.mem_mut().write(victim, clean ^ 0b100); // the out-of-band bit flip

    // Detector 1: checksum scrub, with the right region named.
    let err = m.scrub().expect_err("scrub must flag the planted flip");
    let shown = err.to_string();
    assert!(
        shown.contains("planted"),
        "scrub error must name the region: {shown}"
    );
    // Detector 2: snapshot diff, with exactly the victim address.
    assert!(!snap.matches(m.mem()));
    assert_eq!(snap.diff(m.mem()), vec![victim]);

    // Restoring the snapshot repairs BOTH views: memory is byte-identical
    // to capture time, so the pre-corruption incremental sums hold again.
    snap.restore(m.mem_mut());
    assert!(m.scrub().is_ok(), "restore must satisfy the checksum view");
    assert!(snap.matches(m.mem()));
}

/// `resync_integrity` deliberately *breaks* the symmetry: it re-baselines
/// the checksums onto current memory (accepting the divergence as the new
/// truth) while an old snapshot still remembers the original bytes. That
/// asymmetry is what the recovery ladder relies on — resync after restore,
/// never instead of it — so pin it down.
#[test]
fn resync_accepts_divergence_that_snapshots_still_see() {
    let mut m = Machine::new(CostModel::unit());
    let a = m.alloc(8, "resync");
    m.mem_mut().write_region(a, &[5; 8]);
    m.track_region(a);
    let snap = Snapshot::capture(m.mem(), &[a]);

    m.mem_mut().write(a.base() + 3, 77);
    assert!(m.scrub().is_err());

    m.resync_integrity();
    assert!(m.scrub().is_ok(), "resync must adopt the current bytes");
    assert_eq!(
        snap.diff(m.mem()),
        vec![a.base() + 3],
        "the snapshot must still remember the original bytes"
    );
}
