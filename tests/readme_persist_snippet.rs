//! Compile-and-run check for the README "Crash safety" snippet — if the
//! public API drifts, this test fails before the docs lie.

use fol_persist::FsyncPolicy;
use fol_serve::{DurabilityConfig, Request, Server, ServerConfig};

#[test]
fn readme_persist_snippet() {
    // The README uses a fixed temp path for brevity; keep this run unique
    // and clean up after ourselves.
    let dir = std::env::temp_dir().join(format!("fol-crash-safety-demo-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();

    let config = || ServerConfig {
        durability: Some(
            DurabilityConfig::new(&dir)
                .fsync(FsyncPolicy::Batch) // fsync-free submit path
                .checkpoint_every(8) // commits between checkpoints
                .full_image_every(4) // deltas between full images
                .keep_full_images(2), // compaction retention
        ),
        ..ServerConfig::default()
    };

    let (server, cold) = Server::try_start(config()).unwrap();
    assert_eq!(cold.replayed, 0); // cold start: nothing to recover
    for k in 0..100 {
        // By the time this returns, the admission is on the log: a crash
        // after an ack can no longer lose the request.
        server.call(Request::ChainInsert { keys: vec![k] }).unwrap();
    }
    drop(server); // crash stand-in — tests use real SIGKILL children

    // A new incarnation walks the generation chain (full image + deltas),
    // replays the acknowledged suffix, and names anything it had to skip.
    let (server, restart) = Server::try_start(config()).unwrap();
    assert!(restart.checkpoints_restored > 0);
    assert!(restart.skipped_generations.is_empty()); // clean chain: no skips
    let report = server.shutdown();
    assert_eq!(report.stats.submitted, report.stats.completed);

    std::fs::remove_dir_all(&dir).ok();
}
