//! Chaos suite: every workload × fault plan × seed must either complete
//! with output identical to its scalar reference, or return a typed error
//! after a byte-exact rollback — never a silent wrong answer.
//!
//! Two regimes are swept:
//!
//! * **Full ladder** (the default [`RetryPolicy`]): the last rung is
//!   `ScalarTail`, which no scatter fault can touch, so *every* cell must
//!   complete — even under 100% fault rates — and the result must match
//!   the host-side oracle exactly.
//! * **Restricted ladder** (`vector_only`, no reseed) under total lane
//!   loss: every attempt must fail, and the machine memory the workload
//!   touched must read back byte-identical to a pre-transaction
//!   [`Snapshot`] — the journaled-rollback guarantee.
//!
//! When a cell fails, the run's [`RecoveryReport`] is serialized to
//! `target/chaos/recovery_report.json` (or `$CHAOS_ARTIFACT_DIR`) so CI
//! can attach it as an artifact.

use fol_core::recover::{
    txn_apply_rounds, txn_apply_rounds_hooked, ExecMode, RecoveryError, RecoveryReport,
    RetryPolicy, WatchdogConfig,
};
use fol_graph::components::{txn_components, union_find_components, Components};
use fol_hash::chaining::{all_keys, txn_insert_all as txn_chain_insert, ChainTable};
use fol_hash::open_addressing::{
    contains, init_table, stored_keys, txn_insert_all as txn_oa_insert,
};
use fol_hash::ProbeStrategy;
use fol_sort::dist_count::txn_sort;
use fol_tree::bst::{txn_insert_all as txn_bst_insert, Bst};
use fol_tree::rewrite::{txn_rewrite_to_normal_form, OpTree};
use fol_vm::{AmalgamMode, CostModel, FaultPlan, Machine, Region, Snapshot, Word};

/// The fault matrix: benign, light drops, light tears, mixed, and hostile.
fn fault_plans(seed: u64) -> Vec<(&'static str, FaultPlan)> {
    vec![
        ("benign", FaultPlan::benign(seed)),
        ("drops-3%", FaultPlan::dropped_lanes(seed, 2000)),
        (
            "tears-3%",
            FaultPlan::torn_writes(seed, 2000, AmalgamMode::Xor),
        ),
        (
            "mixed-12%",
            FaultPlan::dropped_lanes(seed, 8000).with_torn_writes(8000, AmalgamMode::Or),
        ),
        (
            "hostile-46%",
            FaultPlan::dropped_lanes(seed, 30000).with_torn_writes(30000, AmalgamMode::And),
        ),
    ]
}

const SEEDS: [u64; 3] = [1, 42, 20260806];

/// The read-side/memory corruption matrix: gather-unit faults (flips, stale
/// reads, torn gathers) and resident bit-rot, light and total. These never
/// touch the scatter unit, so the pre-integrity chaos suite above is blind
/// to them — detection rides entirely on the ELS auditor, the per-region
/// checksums, and the verified-replay rung.
fn corruption_plans(seed: u64) -> Vec<(&'static str, FaultPlan)> {
    vec![
        ("gather-flips-3%", FaultPlan::gather_flips(seed, 2000)),
        ("gather-flips-100%", FaultPlan::gather_flips(seed, 65535)),
        (
            "stale-reads-12%",
            FaultPlan::benign(seed).with_stale_reads(8000),
        ),
        (
            "torn-gathers-12%",
            FaultPlan::benign(seed).with_torn_gathers(8000),
        ),
        ("bit-rot-3%", FaultPlan::bit_rot(seed, 2000)),
        ("bit-rot-100%", FaultPlan::bit_rot(seed, 65535)),
        (
            "rot+flips-12%",
            FaultPlan::bit_rot(seed, 8000).with_gather_flips(8000),
        ),
    ]
}

/// Serializes a failing run's report for the CI artifact, then panics with
/// the cell's identity.
fn fail_cell(workload: &str, plan: &str, seed: u64, report: &RecoveryReport, why: &str) -> ! {
    let dir = std::env::var("CHAOS_ARTIFACT_DIR").unwrap_or_else(|_| "target/chaos".into());
    let _ = std::fs::create_dir_all(&dir);
    let path = format!("{dir}/recovery_report.json");
    let body = format!(
        "{{\"workload\":\"{workload}\",\"plan\":\"{plan}\",\"seed\":{seed},\"reason\":\"{why}\",\"report\":{}}}\n",
        report.to_json()
    );
    let _ = std::fs::write(&path, body);
    panic!("chaos cell failed: {workload} / {plan} / seed {seed}: {why} (report at {path})");
}

fn machine_with(plan: FaultPlan) -> Machine {
    let mut m = Machine::new(CostModel::unit());
    m.set_fault_plan(Some(plan));
    m
}

fn keys_for(seed: u64, n: usize, modulus: Word) -> Vec<Word> {
    let mut s = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1);
    (0..n)
        .map(|_| {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            ((s >> 16) as Word).rem_euclid(modulus)
        })
        .collect()
}

#[test]
fn chaining_always_completes_and_matches_reference() {
    for seed in SEEDS {
        for (name, plan) in fault_plans(seed) {
            let keys = keys_for(seed ^ 0xC4A1, 28, 1000);
            let mut m = machine_with(plan);
            let mut t = ChainTable::alloc(&mut m, 11, 32);
            match txn_chain_insert(&mut m, &mut t, &keys, &RetryPolicy::default()) {
                Ok((_, report)) => {
                    let mut expect = keys.clone();
                    expect.sort_unstable();
                    if all_keys(&m, &t) != expect {
                        fail_cell("chaining", name, seed, &report, "contents diverge");
                    }
                }
                Err(e) => fail_cell("chaining", name, seed, e.report(), "full ladder exhausted"),
            }
            assert!(!m.in_txn(), "chaining/{name}/{seed}: txn left open");
        }
    }
}

#[test]
fn open_addressing_always_completes_and_matches_reference() {
    for seed in SEEDS {
        for (name, plan) in fault_plans(seed) {
            // Distinct keys (the workload's precondition).
            let keys: Vec<Word> = (0..24).map(|i| (i * 97 + seed as Word % 89) + 1).collect();
            let mut m = machine_with(plan);
            let table = m.alloc(67, "table");
            init_table(&mut m, table);
            let probe = ProbeStrategy::KeyDependent;
            match txn_oa_insert(&mut m, table, &keys, probe, &RetryPolicy::default()) {
                Ok((_, report)) => {
                    let snap = m.mem().read_region(table);
                    let mut expect = keys.clone();
                    expect.sort_unstable();
                    if stored_keys(&snap) != expect
                        || keys.iter().any(|&k| !contains(&snap, k, probe))
                    {
                        fail_cell("open_addressing", name, seed, &report, "contents diverge");
                    }
                }
                Err(e) => fail_cell(
                    "open_addressing",
                    name,
                    seed,
                    e.report(),
                    "full ladder exhausted",
                ),
            }
            assert!(!m.in_txn(), "open_addressing/{name}/{seed}: txn left open");
        }
    }
}

#[test]
fn bst_always_completes_and_matches_reference() {
    for seed in SEEDS {
        for (name, plan) in fault_plans(seed) {
            let keys = keys_for(seed ^ 0xB57, 24, 200);
            let mut m = machine_with(plan);
            let mut t = Bst::alloc(&mut m, 32);
            match txn_bst_insert(&mut m, &mut t, &keys, &RetryPolicy::default()) {
                Ok((_, report)) => {
                    let mut expect = keys.clone();
                    expect.sort_unstable();
                    if t.inorder(&m) != expect {
                        fail_cell("bst", name, seed, &report, "inorder diverges");
                    }
                }
                Err(e) => fail_cell("bst", name, seed, e.report(), "full ladder exhausted"),
            }
            assert!(!m.in_txn(), "bst/{name}/{seed}: txn left open");
        }
    }
}

#[test]
fn rewrite_always_completes_and_matches_reference() {
    for seed in SEEDS {
        for (name, plan) in fault_plans(seed) {
            let symbols = keys_for(seed ^ 0x5EED, 14, 512);
            let mut m = machine_with(plan);
            let t = OpTree::right_comb(&mut m, &symbols);
            let before_leaves = t.leaves_inorder(&m);
            let before_val = t.eval_affine(&m);
            match txn_rewrite_to_normal_form(&mut m, &t, &RetryPolicy::default()) {
                Ok((_, report)) => {
                    if !t.is_normal_form(&m)
                        || t.leaves_inorder(&m) != before_leaves
                        || t.eval_affine(&m) != before_val
                    {
                        fail_cell("rewrite", name, seed, &report, "normal form diverges");
                    }
                }
                Err(e) => fail_cell("rewrite", name, seed, e.report(), "full ladder exhausted"),
            }
            assert!(!m.in_txn(), "rewrite/{name}/{seed}: txn left open");
        }
    }
}

#[test]
fn dist_count_always_completes_and_matches_reference() {
    for seed in SEEDS {
        for (name, plan) in fault_plans(seed) {
            let data = keys_for(seed ^ 0xD157, 48, 32);
            let mut expect = data.clone();
            expect.sort_unstable();
            let mut m = machine_with(plan);
            let a = m.alloc(data.len(), "A");
            m.mem_mut().write_region(a, &data);
            match txn_sort(&mut m, a, 32, &RetryPolicy::default()) {
                Ok((_, report)) => {
                    if m.mem().read_region(a) != expect {
                        fail_cell("dist_count", name, seed, &report, "output not sorted input");
                    }
                }
                Err(e) => fail_cell(
                    "dist_count",
                    name,
                    seed,
                    e.report(),
                    "full ladder exhausted",
                ),
            }
            assert!(!m.in_txn(), "dist_count/{name}/{seed}: txn left open");
        }
    }
}

#[test]
fn components_always_completes_and_matches_reference() {
    for seed in SEEDS {
        for (name, plan) in fault_plans(seed) {
            let n = 16usize;
            let ends = keys_for(seed ^ 0xC0C0, 40, n as Word);
            let edges: Vec<(Word, Word)> = ends.chunks(2).map(|c| (c[0], c[1])).collect();
            let expect = union_find_components(n, &edges);
            let mut m = machine_with(plan);
            let g = Components::new(&mut m, n, &edges);
            match txn_components(&mut m, &g, &RetryPolicy::default()) {
                Ok((_, report)) => {
                    if g.labelling(&m) != expect {
                        fail_cell("components", name, seed, &report, "labelling diverges");
                    }
                }
                Err(e) => fail_cell(
                    "components",
                    name,
                    seed,
                    e.report(),
                    "full ladder exhausted",
                ),
            }
            assert!(!m.in_txn(), "components/{name}/{seed}: txn left open");
        }
    }
}

/// Restricted-ladder regime: with only the `Vector` rung and total lane
/// loss, every attempt must fail — and every byte the workload could have
/// touched must read back exactly as captured before the transaction.
#[test]
fn exhaustion_restores_snapshots_byte_exact() {
    let doomed = |seed: u64| FaultPlan::dropped_lanes(seed, 65535);
    let policy = {
        let mut p = RetryPolicy::vector_only(2);
        p.reseed = false;
        p
    };

    for seed in SEEDS {
        // Chaining: pre-populate, snapshot, fail, compare.
        {
            let mut m = machine_with(doomed(seed));
            let mut t = ChainTable::alloc(&mut m, 7, 24);
            // Pre-population must not fight the fault plan: scalar path.
            fol_hash::chaining::scalar_insert_all(&mut m, &mut t, &[500, 501, 502]);
            let regions: Vec<Region> = vec![t.heads, t.work, t.arena];
            let snap = Snapshot::capture(m.mem(), &regions);
            let used_before = t.used_nodes;
            let err = txn_chain_insert(&mut m, &mut t, &keys_for(seed, 8, 100), &policy)
                .expect_err("vector-only under 100% drops must exhaust");
            assert_eq!(err.report().attempts, 2);
            assert!(
                snap.matches(m.mem()),
                "chaining rollback not byte-exact (seed {seed})"
            );
            assert_eq!(t.used_nodes, used_before);
        }
        // BST.
        {
            let mut m = machine_with(doomed(seed));
            let mut t = Bst::alloc(&mut m, 16);
            fol_tree::bst::scalar_insert_all(&mut m, &mut t, &[40, 10, 90]);
            let snap = Snapshot::capture(m.mem(), &[t.keys, t.links]);
            let err = txn_bst_insert(&mut m, &mut t, &keys_for(seed, 6, 100), &policy)
                .expect_err("vector-only under 100% drops must exhaust");
            assert!(!err.report().errors.is_empty());
            assert!(
                snap.matches(m.mem()),
                "bst rollback not byte-exact (seed {seed})"
            );
            assert_eq!(t.used, 3);
        }
        // Distribution counting sort.
        {
            let data = keys_for(seed ^ 7, 12, 8);
            let mut m = machine_with(doomed(seed));
            let a = m.alloc(data.len(), "A");
            m.mem_mut().write_region(a, &data);
            let snap = Snapshot::capture(m.mem(), &[a]);
            let _ = txn_sort(&mut m, a, 8, &policy)
                .expect_err("vector-only under 100% drops must exhaust");
            assert!(
                snap.matches(m.mem()),
                "dist_count rollback not byte-exact (seed {seed})"
            );
        }
        // Components.
        {
            let mut m = machine_with(doomed(seed));
            let g = Components::new(&mut m, 6, &[(0, 1), (2, 3), (4, 5), (1, 2)]);
            let snap = Snapshot::capture(m.mem(), &[g.labels, g.work]);
            let _ = txn_components(&mut m, &g, &policy)
                .expect_err("vector-only under 100% drops must exhaust");
            assert!(
                snap.matches(m.mem()),
                "components rollback not byte-exact (seed {seed})"
            );
        }
    }
}

/// Sticky-lane regime (the quarantine tentpole): one physical lane drops
/// *every* scatter write routed through it — a fault no reseed can dodge.
/// The health registry must quarantine the lane during the vector attempt,
/// and the `DegradedVector` rung must then finish every workload
/// oracle-equal at reduced width, never falling to the sequential rungs.
#[test]
fn sticky_lane_faults_converge_in_degraded_vector_mode() {
    const LANE: usize = 5;
    let sticky = |seed: u64| FaultPlan::sticky_lanes(seed, 1u64 << LANE);
    let check = |workload: &str, seed: u64, m: &Machine, report: &RecoveryReport, lane: usize| {
        match report.final_mode {
            ExecMode::DegradedVector { quarantined } if quarantined.contains(lane) => {}
            other => fail_cell(
                workload,
                "sticky-lane",
                seed,
                report,
                &format!("expected DegradedVector quarantining lane {lane}, finished in {other}"),
            ),
        }
        assert!(
            m.health().is_quarantined(lane),
            "{workload}/sticky/{seed}: registry lost the quarantine"
        );
    };

    for seed in SEEDS {
        // Chaining.
        {
            let keys = keys_for(seed ^ 0xC4A1, 28, 1000);
            let mut m = machine_with(sticky(seed));
            let mut t = ChainTable::alloc(&mut m, 11, 32);
            let (_, report) = txn_chain_insert(&mut m, &mut t, &keys, &RetryPolicy::default())
                .expect("degraded rung must absorb a sticky lane");
            let mut expect = keys.clone();
            expect.sort_unstable();
            assert_eq!(all_keys(&m, &t), expect, "chaining/sticky/{seed}");
            check("chaining", seed, &m, &report, LANE);
        }
        // Open addressing.
        {
            let keys: Vec<Word> = (0..24).map(|i| (i * 97 + seed as Word % 89) + 1).collect();
            let mut m = machine_with(sticky(seed));
            let table = m.alloc(67, "table");
            init_table(&mut m, table);
            let probe = ProbeStrategy::KeyDependent;
            let (_, report) = txn_oa_insert(&mut m, table, &keys, probe, &RetryPolicy::default())
                .expect("degraded rung must absorb a sticky lane");
            let snap = m.mem().read_region(table);
            let mut expect = keys.clone();
            expect.sort_unstable();
            assert_eq!(stored_keys(&snap), expect, "open_addressing/sticky/{seed}");
            check("open_addressing", seed, &m, &report, LANE);
        }
        // BST insert.
        {
            let keys = keys_for(seed ^ 0xB57, 24, 200);
            let mut m = machine_with(sticky(seed));
            let mut t = Bst::alloc(&mut m, 32);
            let (_, report) = txn_bst_insert(&mut m, &mut t, &keys, &RetryPolicy::default())
                .expect("degraded rung must absorb a sticky lane");
            let mut expect = keys.clone();
            expect.sort_unstable();
            assert_eq!(t.inorder(&m), expect, "bst/sticky/{seed}");
            check("bst", seed, &m, &report, LANE);
        }
        // Tree rewrite.
        {
            // A right comb rewrites one site per pass, so every scatter is
            // a singleton riding physical lane 0 — stick *that* lane.
            let symbols = keys_for(seed ^ 0x5EED, 30, 512);
            let mut m = machine_with(FaultPlan::sticky_lanes(seed, 1));
            let t = OpTree::right_comb(&mut m, &symbols);
            let before_leaves = t.leaves_inorder(&m);
            let before_val = t.eval_affine(&m);
            let (_, report) = txn_rewrite_to_normal_form(&mut m, &t, &RetryPolicy::default())
                .expect("degraded rung must absorb a sticky lane");
            assert!(t.is_normal_form(&m), "rewrite/sticky/{seed}");
            assert_eq!(t.leaves_inorder(&m), before_leaves, "rewrite/sticky/{seed}");
            assert_eq!(t.eval_affine(&m), before_val, "rewrite/sticky/{seed}");
            check("rewrite", seed, &m, &report, 0);
        }
        // Distribution-counting sort.
        {
            let data = keys_for(seed ^ 0xD157, 48, 32);
            let mut expect = data.clone();
            expect.sort_unstable();
            let mut m = machine_with(sticky(seed));
            let a = m.alloc(data.len(), "A");
            m.mem_mut().write_region(a, &data);
            let (_, report) = txn_sort(&mut m, a, 32, &RetryPolicy::default())
                .expect("degraded rung must absorb a sticky lane");
            assert_eq!(m.mem().read_region(a), expect, "dist_count/sticky/{seed}");
            check("dist_count", seed, &m, &report, LANE);
        }
        // Connected components.
        {
            let n = 16usize;
            let ends = keys_for(seed ^ 0xC0C0, 40, n as Word);
            let edges: Vec<(Word, Word)> = ends.chunks(2).map(|c| (c[0], c[1])).collect();
            let expect = union_find_components(n, &edges);
            let mut m = machine_with(sticky(seed));
            let g = Components::new(&mut m, n, &edges);
            let (_, report) = txn_components(&mut m, &g, &RetryPolicy::default())
                .expect("degraded rung must absorb a sticky lane");
            assert_eq!(g.labelling(&m), expect, "components/sticky/{seed}");
            check("components", seed, &m, &report, LANE);
        }
    }
}

/// Watchdog regime: a seeded livelock (total lane loss plus a zero
/// wall-clock deadline) must surface as the typed
/// [`RecoveryError::Watchdog`] — not an exhausted ladder — after a
/// byte-exact journaled rollback.
#[test]
fn watchdog_converts_livelock_into_typed_error_with_rollback() {
    for seed in SEEDS {
        let mut m = machine_with(FaultPlan::dropped_lanes(seed, 65535));
        let work = m.alloc(8, "work");
        let snap = Snapshot::capture(m.mem(), &[work]);
        let policy = RetryPolicy {
            watchdog: Some(WatchdogConfig {
                stall_rounds: 0,
                deadline: Some(std::time::Duration::ZERO),
            }),
            ..RetryPolicy::default()
        };
        let targets: Vec<usize> = (0..8).map(|i| i % 3).collect();
        let mut counts = vec![0u32; 8];
        let err = txn_apply_rounds(&mut m, work, &mut counts, &targets, &policy, |c, _| *c += 1)
            .expect_err("zero deadline must trip on the first pass");
        match &err {
            RecoveryError::Watchdog { report } => {
                assert_eq!(
                    report.attempts, 1,
                    "watchdog must not escalate (seed {seed})"
                );
                assert!(matches!(
                    report.errors.last(),
                    Some(fol_core::FolError::Stalled { .. })
                ));
            }
            RecoveryError::Exhausted { report } => fail_cell(
                "watchdog",
                "livelock",
                seed,
                report,
                "ladder exhausted instead of tripping the watchdog",
            ),
        }
        assert!(
            counts.iter().all(|&c| c == 0),
            "host data touched (seed {seed})"
        );
        assert!(
            snap.matches(m.mem()),
            "watchdog rollback not byte-exact (seed {seed})"
        );
        assert!(!m.in_txn());
    }
}

/// Host-stage corruption regime: the staging scratch `txn_apply_rounds`
/// builds between applying the rounds and committing lives *outside* every
/// tracked machine region — flipping a byte there must surface as the typed
/// `ChecksumMismatch` on the `"(host stage)"` pseudo-region, roll the
/// attempt back, and (because the corrupter strikes every attempt) exhaust
/// the ladder with the caller's data untouched. A one-shot corrupter must
/// instead be absorbed by a retry, with the final data exactly right.
#[test]
fn host_stage_corruption_is_detected_typed_and_rolled_back() {
    use fol_core::FolError;
    use fol_vm::IntegrityError;
    let targets: Vec<usize> = (0..16).map(|i| i % 5).collect();

    // Persistent corrupter: every attempt's stage is poisoned, so every
    // rung fails the stage digest and the ladder exhausts.
    {
        let mut m = Machine::new(CostModel::unit());
        let work = m.alloc(8, "work");
        let mut counts = vec![0u32; 16];
        let before = counts.clone();
        let err = txn_apply_rounds_hooked(
            &mut m,
            work,
            &mut counts,
            &targets,
            &RetryPolicy::default(),
            |c, _| *c += 1,
            &mut |stage: &mut [u32]| stage[3] ^= 0x40,
        )
        .expect_err("a corrupted stage must never commit");
        let report = err.report();
        assert_eq!(
            report.corruption_detected as usize,
            report.errors.len(),
            "every failure is a detected corruption"
        );
        for e in &report.errors {
            match e {
                FolError::Integrity(IntegrityError::ChecksumMismatch { region, .. }) => {
                    assert_eq!(region, "(host stage)", "typed to the host-stage region");
                }
                other => panic!("wrong error class for a stage flip: {other}"),
            }
        }
        assert_eq!(counts, before, "caller data untouched after exhaustion");
        assert!(!m.in_txn());
    }

    // One-shot corrupter: the first attempt is poisoned, the retry is
    // clean — the supervisor absorbs it and the final data is exact.
    {
        let mut m = Machine::new(CostModel::unit());
        let work = m.alloc(8, "work");
        let mut counts = vec![0u32; 16];
        let mut strikes = 1u32;
        let (_, report) = txn_apply_rounds_hooked(
            &mut m,
            work,
            &mut counts,
            &targets,
            &RetryPolicy::default(),
            |c, _| *c += 1,
            &mut |stage: &mut [u32]| {
                if strikes > 0 {
                    strikes -= 1;
                    stage[0] = stage[0].wrapping_add(1);
                }
            },
        )
        .expect("a transient stage flip must be absorbed by retry");
        assert_eq!(report.attempts, 2);
        assert_eq!(report.corruption_detected, 1);
        let mut expect = vec![0u32; 16];
        for &t in &targets {
            expect[t] += 1;
        }
        assert_eq!(
            counts, expect,
            "retried result is exact: every element lands on its target once"
        );
    }
}

/// Reports must round-trip sensible audit data: attempts counted, errors
/// recorded in order, fault events consumed, and the JSON form well-formed
/// enough for the CI artifact.
#[test]
fn recovery_reports_carry_a_usable_audit_trail() {
    let mut m =
        machine_with(FaultPlan::dropped_lanes(77, 30000).with_torn_writes(30000, AmalgamMode::Xor));
    let mut t = ChainTable::alloc(&mut m, 7, 32);
    let keys = keys_for(99, 20, 300);
    let (_, report) = txn_chain_insert(&mut m, &mut t, &keys, &RetryPolicy::default())
        .expect("full ladder completes");
    assert!(report.recovered());
    assert_eq!(report.errors.len(), report.attempts - 1);
    assert!(
        report.faults_consumed > 0,
        "hostile plan must have injected something"
    );
    let json = report.to_json();
    assert!(json.starts_with('{') && json.ends_with('}'));
    assert!(json.contains("\"attempts\":"));
    assert!(json.contains("\"final_mode\":"));
    // The machine's fault log digests the same story for humans.
    assert!(!m.fault_log().summary().is_empty());
}

/// Outcome of one corruption cell, for the oracle-equal-or-typed contract.
enum CellOutcome {
    /// Completed and the oracle check passed.
    OracleEqual(RecoveryReport),
    /// Refused with a typed error (after byte-exact restore).
    TypedRefusal(RecoveryReport),
}

/// Asserts the corruption-regime contract on one finished cell: a completed
/// run must be oracle-equal (checked by the caller before constructing
/// [`CellOutcome::OracleEqual`]), a refusal must carry typed errors, and at
/// total fault rates the integrity layer must actually have fired — a
/// first-try success would mean the faults were silently absorbed.
fn check_corruption_cell(workload: &str, plan: &str, seed: u64, total: bool, out: &CellOutcome) {
    let report = match out {
        CellOutcome::OracleEqual(r) => r,
        CellOutcome::TypedRefusal(r) => {
            if r.errors.is_empty() {
                fail_cell(workload, plan, seed, r, "refusal without a typed error");
            }
            r
        }
    };
    if total && report.attempts == 1 && report.corruption_detected == 0 {
        fail_cell(
            workload,
            plan,
            seed,
            report,
            "total-rate corruption neither detected nor escalated",
        );
    }
}

/// Corruption regime (the integrity tentpole): gather faults and resident
/// bit-rot across every workload, every seed. Each cell must either
/// complete with output identical to the host oracle, or refuse with a
/// typed error — a silently wrong answer fails the cell. The full default
/// ladder ends in `ScalarTail`, whose reads and writes bypass both the
/// gather unit and the scatter-hooked rot, so completion is the expected
/// outcome; refusals are tolerated only if typed.
#[test]
fn corruption_cells_are_oracle_equal_or_typed() {
    for seed in SEEDS {
        for (name, plan) in corruption_plans(seed) {
            let total = name.contains("100%");
            // Chaining.
            {
                let keys = keys_for(seed ^ 0xC4A1, 28, 1000);
                let mut m = machine_with(plan.clone());
                let mut t = ChainTable::alloc(&mut m, 11, 32);
                let out = match txn_chain_insert(&mut m, &mut t, &keys, &RetryPolicy::default()) {
                    Ok((_, report)) => {
                        let mut expect = keys.clone();
                        expect.sort_unstable();
                        if all_keys(&m, &t) != expect {
                            fail_cell("chaining", name, seed, &report, "contents diverge");
                        }
                        CellOutcome::OracleEqual(report)
                    }
                    Err(e) => CellOutcome::TypedRefusal(e.into_report()),
                };
                check_corruption_cell("chaining", name, seed, total, &out);
                assert!(!m.in_txn(), "chaining/{name}/{seed}: txn left open");
            }
            // Open addressing.
            {
                let keys: Vec<Word> = (0..24).map(|i| (i * 97 + seed as Word % 89) + 1).collect();
                let mut m = machine_with(plan.clone());
                let table = m.alloc(67, "table");
                init_table(&mut m, table);
                let probe = ProbeStrategy::KeyDependent;
                let out = match txn_oa_insert(&mut m, table, &keys, probe, &RetryPolicy::default())
                {
                    Ok((_, report)) => {
                        let snap = m.mem().read_region(table);
                        let mut expect = keys.clone();
                        expect.sort_unstable();
                        if stored_keys(&snap) != expect
                            || keys.iter().any(|&k| !contains(&snap, k, probe))
                        {
                            fail_cell("open_addressing", name, seed, &report, "contents diverge");
                        }
                        CellOutcome::OracleEqual(report)
                    }
                    Err(e) => CellOutcome::TypedRefusal(e.into_report()),
                };
                check_corruption_cell("open_addressing", name, seed, total, &out);
                assert!(!m.in_txn(), "open_addressing/{name}/{seed}: txn left open");
            }
            // BST insert.
            {
                let keys = keys_for(seed ^ 0xB57, 24, 200);
                let mut m = machine_with(plan.clone());
                let mut t = Bst::alloc(&mut m, 32);
                let out = match txn_bst_insert(&mut m, &mut t, &keys, &RetryPolicy::default()) {
                    Ok((_, report)) => {
                        let mut expect = keys.clone();
                        expect.sort_unstable();
                        if t.inorder(&m) != expect {
                            fail_cell("bst", name, seed, &report, "inorder diverges");
                        }
                        CellOutcome::OracleEqual(report)
                    }
                    Err(e) => CellOutcome::TypedRefusal(e.into_report()),
                };
                check_corruption_cell("bst", name, seed, total, &out);
                assert!(!m.in_txn(), "bst/{name}/{seed}: txn left open");
            }
            // Tree rewrite.
            {
                let symbols = keys_for(seed ^ 0x5EED, 14, 512);
                let mut m = machine_with(plan.clone());
                let t = OpTree::right_comb(&mut m, &symbols);
                let before_leaves = t.leaves_inorder(&m);
                let before_val = t.eval_affine(&m);
                let out = match txn_rewrite_to_normal_form(&mut m, &t, &RetryPolicy::default()) {
                    Ok((_, report)) => {
                        if !t.is_normal_form(&m)
                            || t.leaves_inorder(&m) != before_leaves
                            || t.eval_affine(&m) != before_val
                        {
                            fail_cell("rewrite", name, seed, &report, "normal form diverges");
                        }
                        CellOutcome::OracleEqual(report)
                    }
                    Err(e) => CellOutcome::TypedRefusal(e.into_report()),
                };
                check_corruption_cell("rewrite", name, seed, total, &out);
                assert!(!m.in_txn(), "rewrite/{name}/{seed}: txn left open");
            }
            // Distribution-counting sort.
            {
                let data = keys_for(seed ^ 0xD157, 48, 32);
                let mut expect = data.clone();
                expect.sort_unstable();
                let mut m = machine_with(plan.clone());
                let a = m.alloc(data.len(), "A");
                m.mem_mut().write_region(a, &data);
                let out = match txn_sort(&mut m, a, 32, &RetryPolicy::default()) {
                    Ok((_, report)) => {
                        if m.mem().read_region(a) != expect {
                            fail_cell("dist_count", name, seed, &report, "output not sorted input");
                        }
                        CellOutcome::OracleEqual(report)
                    }
                    Err(e) => CellOutcome::TypedRefusal(e.into_report()),
                };
                check_corruption_cell("dist_count", name, seed, total, &out);
                assert!(!m.in_txn(), "dist_count/{name}/{seed}: txn left open");
            }
            // Connected components.
            {
                let n = 16usize;
                let ends = keys_for(seed ^ 0xC0C0, 40, n as Word);
                let edges: Vec<(Word, Word)> = ends.chunks(2).map(|c| (c[0], c[1])).collect();
                let expect = union_find_components(n, &edges);
                let mut m = machine_with(plan.clone());
                let g = Components::new(&mut m, n, &edges);
                let out = match txn_components(&mut m, &g, &RetryPolicy::default()) {
                    Ok((_, report)) => {
                        if g.labelling(&m) != expect {
                            fail_cell("components", name, seed, &report, "labelling diverges");
                        }
                        CellOutcome::OracleEqual(report)
                    }
                    Err(e) => CellOutcome::TypedRefusal(e.into_report()),
                };
                check_corruption_cell("components", name, seed, total, &out);
                assert!(!m.in_txn(), "components/{name}/{seed}: txn left open");
            }
        }
    }
}

/// Bit-rot exhaustion regime: rot strikes the tracked work areas behind the
/// journal's back, so a plain rollback cannot satisfy the exhaustion
/// contract — the supervisor's snapshot repair must. With only the `Vector`
/// rung available, every attempt must fail *typed* (auditor or scrub), and
/// the workload's memory must still read back byte-exact.
#[test]
fn bit_rot_exhaustion_restores_snapshots_byte_exact() {
    let rotting = |seed: u64| FaultPlan::bit_rot(seed, 65535);
    let policy = {
        let mut p = RetryPolicy::vector_only(2);
        p.reseed = false;
        p
    };

    for seed in SEEDS {
        // Chaining.
        {
            let mut m = machine_with(rotting(seed));
            let mut t = ChainTable::alloc(&mut m, 7, 24);
            fol_hash::chaining::scalar_insert_all(&mut m, &mut t, &[500, 501, 502]);
            let regions: Vec<Region> = vec![t.heads, t.work, t.arena];
            let snap = Snapshot::capture(m.mem(), &regions);
            let err = txn_chain_insert(&mut m, &mut t, &keys_for(seed, 8, 100), &policy)
                .expect_err("vector-only under total rot must exhaust");
            assert!(
                err.report().corruption_detected > 0,
                "rot must be charged to the corruption counter (seed {seed})"
            );
            assert!(
                snap.matches(m.mem()),
                "chaining rot repair not byte-exact (seed {seed})"
            );
        }
        // Distribution-counting sort.
        {
            let data = keys_for(seed ^ 7, 12, 8);
            let mut m = machine_with(rotting(seed));
            let a = m.alloc(data.len(), "A");
            m.mem_mut().write_region(a, &data);
            let snap = Snapshot::capture(m.mem(), &[a]);
            let err = txn_sort(&mut m, a, 8, &policy)
                .expect_err("vector-only under total rot must exhaust");
            assert!(
                err.report().corruption_detected > 0,
                "rot must be charged to the corruption counter (seed {seed})"
            );
            assert!(
                snap.matches(m.mem()),
                "dist_count rot repair not byte-exact (seed {seed})"
            );
        }
    }
}

// ---------------------------------------------------------------------------
// Coalesced-batch isolation: the serving layer merges independent requests
// into one index vector, so a single adversarial request must not be able to
// take its siblings down with it.
// ---------------------------------------------------------------------------

/// The adversary: re-inserting a key the table already stores. The vector
/// rungs dedup it (the FOL label check treats "slot already holds my key"
/// as won), which diverges from the duplicate-storing scalar reference and
/// trips the stored-keys post-condition; only the scalar tail can complete
/// it. Two regimes, both proving sibling isolation:
///
/// * **Restricted ladder** (vector-only, no reseed, benign faults): the
///   adversarial group must fail *typed* after bisection isolates it, its
///   siblings must all land, and the table must end oracle-equal to the
///   innocent union — one poisoned request cannot fail a coalesced batch.
/// * **Full ladder** under the whole fault matrix: every group completes
///   (the scalar tail absorbs both injected faults and the duplicate), and
///   the table matches the scalar reference exactly — duplicate stored
///   twice, like `scalar_insert_all` would.
#[test]
fn a_single_adversarial_key_cannot_poison_a_coalesced_batch() {
    use fol_core::recover::GroupError;
    use fol_hash::open_addressing::txn_insert_groups;

    let groups: Vec<Vec<Word>> = vec![
        vec![1, 2],
        vec![3],
        vec![777], // the adversary: already stored
        vec![4, 5, 6],
        vec![7],
        vec![8, 9],
        vec![10],
        vec![11, 12],
    ];
    let innocent: Vec<Word> = vec![1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 777];

    // Regime A: restricted ladder — the adversary fails typed, alone.
    {
        let policy = RetryPolicy {
            reseed: false,
            ..RetryPolicy::vector_only(2)
        };
        let mut m = Machine::new(CostModel::unit());
        let table = m.alloc(64, "oa.table");
        init_table(&mut m, table);
        txn_oa_insert(&mut m, table, &[777], ProbeStrategy::KeyDependent, &policy)
            .expect("preload on a clean machine");
        let outs = txn_insert_groups(&mut m, table, &groups, ProbeStrategy::KeyDependent, &policy);
        assert_eq!(outs.len(), groups.len());
        for (i, out) in outs.iter().enumerate() {
            if groups[i] == [777] {
                assert!(
                    matches!(out, Err(GroupError::Recovery(_))),
                    "adversarial group must fail typed: {out:?}"
                );
            } else {
                assert!(
                    out.is_ok(),
                    "sibling group {i} poisoned by the adversary: {out:?}"
                );
            }
        }
        assert_eq!(
            stored_keys(&m.mem().read_region(table)),
            innocent,
            "table must hold exactly the innocent union plus the preload"
        );
    }

    // Regime B: full ladder x fault matrix — everything completes, and the
    // result matches the duplicate-storing scalar reference.
    let policy = RetryPolicy::default();
    for seed in SEEDS {
        for (plan_name, plan) in fault_plans(seed) {
            let mut m = Machine::new(CostModel::unit());
            m.set_fault_plan(Some(plan));
            let table = m.alloc(64, "oa.table");
            init_table(&mut m, table);
            txn_oa_insert(&mut m, table, &[777], ProbeStrategy::KeyDependent, &policy)
                .expect("preload under the full ladder always completes");
            let outs =
                txn_insert_groups(&mut m, table, &groups, ProbeStrategy::KeyDependent, &policy);
            for (i, out) in outs.iter().enumerate() {
                assert!(
                    out.is_ok(),
                    "full ladder must complete group {i} ({plan_name}, seed {seed}): {out:?}"
                );
            }
            let mut expected = innocent.clone();
            expected.push(777); // scalar-reference semantics: duplicate stored twice
            expected.sort_unstable();
            assert_eq!(
                stored_keys(&m.mem().read_region(table)),
                expected,
                "table must match the scalar reference ({plan_name}, seed {seed})"
            );
        }
    }
}
