//! SIGKILL crash/restart chaos suite: real child processes are killed at
//! chosen moments and the survivors' disks are what restart sees.
//!
//! Every cell follows the same shape: spawn this same test binary as a
//! child (`child_entrypoint` dispatches on `FOL_CRASH_ROLE`), let it make
//! durable progress against a tmpdir, SIGKILL it, optionally injure the
//! surviving files (torn tails, torn checkpoints, mid-log corruption), and
//! then restart **in-process** over the same directory. The invariants:
//!
//! * **No acknowledged request is lost.** A key whose insert the child
//!   acknowledged (recorded in an ack file *after* the server's reply)
//!   must be present after restart — recovered from a checkpoint or
//!   re-driven from the write-ahead request log.
//! * **Corrupt history is refused, typed.** A byte flip inside a sealed
//!   log segment or a torn checkpoint is never replayed around silently:
//!   the log refuses startup ([`ServeError::Persist`]); the checkpoint is
//!   refused with a typed reason and recovery falls back to the next
//!   oldest one plus the log.
//! * **A torn log tail is the accepted crash frontier**, surfaced in the
//!   [`fol_serve::RestartReport`], never an error.
//! * **Ladder progress is durable.** A process killed mid-escalation
//!   resumes at the persisted rung, not at the bottom.
//!
//! Each cell writes a small JSON summary to `target/crash/<cell>.json`
//! (override with `$CRASH_ARTIFACT_DIR`) so CI can attach the artifacts.
//! Tmpdirs are removed on drop; set `FOL_KEEP_CRASH_DIRS=1` to keep them
//! for a post-mortem.

use fol_core::recover::{run_transaction_durable, ExecMode, RetryPolicy};
use fol_core::FolError;
use fol_persist::checkpoint::Checkpointer;
use fol_persist::frame::{next_frame, Frame};
use fol_persist::wal;
use fol_persist::{Compactor, LogRecord};
use fol_serve::{
    decode_record, worker_prefix, DurRecord, DurabilityConfig, FsyncPolicy, Request, ServeError,
    Server, ServerConfig, SkipReason, WorkloadClass, REQUEST_LOG_PREFIX,
};
use fol_vm::{CostModel, Machine, Word};
use std::collections::HashMap;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

// ---------------------------------------------------------------- plumbing

/// A per-cell scratch directory, removed when the cell ends (pass or fail)
/// unless `FOL_KEEP_CRASH_DIRS=1` asks for a post-mortem.
struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> Self {
        use std::sync::atomic::{AtomicU64, Ordering};
        static NEXT: AtomicU64 = AtomicU64::new(0);
        let n = NEXT.fetch_add(1, Ordering::Relaxed);
        let dir = std::env::temp_dir().join(format!(
            "fol-crash-restart-{}-{tag}-{n}",
            std::process::id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        TempDir(dir)
    }

    fn path(&self) -> &Path {
        &self.0
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        if std::env::var_os("FOL_KEEP_CRASH_DIRS").is_none() {
            let _ = std::fs::remove_dir_all(&self.0);
        }
    }
}

/// Re-executes this test binary with `child_entrypoint` selected and the
/// role/dir passed through the environment. The child is a full, separate
/// OS process: killing it is a real SIGKILL, not a simulated panic.
fn spawn_child(role: &str, dir: &Path, extra: &[(&str, &str)]) -> Child {
    let exe = std::env::current_exe().expect("test binary path");
    let mut cmd = Command::new(exe);
    cmd.args(["child_entrypoint", "--exact", "--test-threads", "1"])
        .env("FOL_CRASH_ROLE", role)
        .env("FOL_CRASH_DIR", dir)
        .stdout(Stdio::null())
        .stderr(Stdio::null());
    for (k, v) in extra {
        cmd.env(k, v);
    }
    cmd.spawn().expect("spawn crash child")
}

fn wait_until(what: &str, deadline: Duration, mut done: impl FnMut() -> bool) {
    let start = Instant::now();
    while !done() {
        assert!(
            start.elapsed() < deadline,
            "timed out after {deadline:?} waiting for {what}"
        );
        std::thread::sleep(Duration::from_millis(10));
    }
}

fn kill(mut child: Child) {
    child.kill().expect("SIGKILL the crash child");
    child.wait().expect("reap the crash child");
}

/// Keys the child acknowledged, in ack order. The kill can land mid-line,
/// so a trailing partial line is ignored — an ack is an ack only once its
/// record is complete, exactly like the log's own framing.
fn read_acks(dir: &Path) -> Vec<Word> {
    let text = std::fs::read_to_string(dir.join("acks.txt")).unwrap_or_default();
    text.lines().filter_map(|l| l.parse().ok()).collect()
}

fn serve_config(dir: &Path, checkpoint_every: u64, segment_bytes: u64) -> ServerConfig {
    serve_config_with(dir, checkpoint_every, segment_bytes, FsyncPolicy::Off, 4)
}

fn serve_config_with(
    dir: &Path,
    checkpoint_every: u64,
    segment_bytes: u64,
    fsync: FsyncPolicy,
    full_image_every: u64,
) -> ServerConfig {
    let mut durability = DurabilityConfig::new(dir)
        .fsync(fsync)
        .checkpoint_every(checkpoint_every)
        .full_image_every(full_image_every);
    durability.segment_bytes = segment_bytes;
    ServerConfig {
        workers: 1,
        queue_capacity: 64,
        max_batch: 8,
        max_wait: Duration::from_millis(1),
        idle_tick: Duration::from_millis(1),
        oa_slots: 1 << 14,
        durability: Some(durability),
        ..ServerConfig::default()
    }
}

/// Checkpoint generations of worker 0 with the given extension (`"ckpt"` for
/// full images, `"delta"` for deltas), sorted by generation id.
fn generations(dir: &Path, ext: &str) -> Vec<(u64, PathBuf)> {
    let prefix = format!("{}-", worker_prefix(0));
    let suffix = format!(".{ext}");
    let mut out: Vec<(u64, PathBuf)> = std::fs::read_dir(dir)
        .unwrap()
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter_map(|p| {
            let name = p.file_name()?.to_str()?.to_owned();
            let seq = name
                .strip_prefix(&prefix)?
                .strip_suffix(&suffix)?
                .parse()
                .ok()?;
            Some((seq, p))
        })
        .collect();
    out.sort_unstable();
    out
}

/// Byte-for-byte clone of a flat survivor directory, so destructive sweeps
/// (truncation points, injury variants) each work on a fresh copy.
fn copy_dir(from: &Path, to: &Path) {
    std::fs::create_dir_all(to).unwrap();
    for entry in std::fs::read_dir(from).unwrap() {
        let path = entry.unwrap().path();
        if path.is_file() {
            std::fs::copy(&path, to.join(path.file_name().unwrap())).unwrap();
        }
    }
}

/// Restart over `dir`, assert every acknowledged key survived exactly once,
/// and return (recovered keys, restart report).
fn restart_and_audit(
    dir: &Path,
    checkpoint_every: u64,
    acked: &[Word],
    what: &str,
) -> (Vec<Word>, fol_serve::RestartReport) {
    let (server, restart) = Server::try_start(serve_config(dir, checkpoint_every, 1 << 20))
        .unwrap_or_else(|e| panic!("restart after {what} must succeed: {e}"));
    let report = server.shutdown();
    let keys = oa_keys(&report);
    assert!(
        keys.windows(2).all(|w| w[0] < w[1]),
        "replay must not double-apply after {what}: {keys:?}"
    );
    for k in acked {
        assert!(
            keys.binary_search(k).is_ok(),
            "acknowledged key {k} lost after {what}; recovered {} keys",
            keys.len()
        );
    }
    (keys, restart)
}

fn oa_keys(report: &fol_serve::ShutdownReport) -> Vec<Word> {
    let mut keys: Vec<Word> = report
        .dumps
        .iter()
        .filter(|d| d.class == WorkloadClass::OpenAddr)
        .flat_map(|d| d.keys.iter().copied())
        .collect();
    keys.sort_unstable();
    keys
}

/// One JSON artifact per cell; values arrive pre-rendered (numbers, bools,
/// or already-quoted strings).
fn write_cell_report(cell: &str, fields: &[(&str, String)]) {
    let dir = std::env::var_os("CRASH_ARTIFACT_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("target/crash"));
    if std::fs::create_dir_all(&dir).is_err() {
        return;
    }
    let mut s = format!("{{\n  \"cell\": \"{cell}\"");
    for (k, v) in fields {
        s.push_str(&format!(",\n  \"{k}\": {v}"));
    }
    s.push_str("\n}\n");
    let _ = std::fs::write(dir.join(format!("{cell}.json")), s);
}

// ------------------------------------------------------------ child roles

/// Child dispatch. In a normal test run (no `FOL_CRASH_ROLE`) this is a
/// no-op pass; under a role it runs that role's workload until the parent
/// kills it.
#[test]
fn child_entrypoint() {
    let role = match std::env::var("FOL_CRASH_ROLE") {
        Ok(r) => r,
        Err(_) => return,
    };
    let dir = PathBuf::from(std::env::var("FOL_CRASH_DIR").expect("FOL_CRASH_DIR"));
    match role.as_str() {
        "serve-insert" => child_serve_insert(&dir),
        "ladder" => child_ladder(&dir),
        other => panic!("unknown crash role {other:?}"),
    }
}

/// Runs a durable server and inserts distinct keys one at a time, appending
/// each key to `acks.txt` only *after* the server acknowledged it — the
/// client-side ack protocol the no-lost-ack cells audit against.
fn child_serve_insert(dir: &Path) {
    let every: u64 = std::env::var("FOL_CRASH_CKPT_EVERY")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(4);
    let seg: u64 = std::env::var("FOL_CRASH_SEG_BYTES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1 << 20);
    let fsync: FsyncPolicy = std::env::var("FOL_CRASH_FSYNC")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(FsyncPolicy::Off);
    let full_every: u64 = std::env::var("FOL_CRASH_FULL_EVERY")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(4);
    let (server, _) = Server::try_start(serve_config_with(dir, every, seg, fsync, full_every))
        .expect("child start");
    let mut acks = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(dir.join("acks.txt"))
        .expect("open ack file");
    for k in 0..10_000i64 {
        match server.call(Request::OaInsert { keys: vec![k] }) {
            Ok(_) => {
                writeln!(acks, "{k}").expect("record ack");
                acks.flush().expect("flush ack");
            }
            Err(e) => panic!("child insert {k}: {e}"),
        }
    }
    panic!("the parent was supposed to SIGKILL this child long before 10k inserts");
}

/// Climbs the retry ladder under a [`Checkpointer`]: fails the first two
/// rungs, then — with rung 2 already persisted by `on_attempt` — signals
/// the parent and hangs for the kill.
fn child_ladder(dir: &Path) {
    let mut m = Machine::new(CostModel::unit());
    let region = m.alloc(8, "cell");
    m.track_region(region);
    let mut ck = Checkpointer::new(dir, "ladder");
    let mut attempt = 0usize;
    let _ = run_transaction_durable(
        &mut m,
        &RetryPolicy::default(),
        &mut ck,
        |_, _| -> Result<(), FolError> {
            attempt += 1;
            if attempt <= 2 {
                return Err(FolError::NoSurvivors {
                    iteration: 0,
                    live: 1,
                });
            }
            // The hook wrote `ladder.rung` = 2 before this body ran; freeze
            // here so the parent's SIGKILL lands mid-attempt.
            std::fs::write(dir.join("rung2-armed"), b"armed").expect("arm signal");
            #[allow(clippy::empty_loop)]
            loop {
                std::thread::sleep(Duration::from_millis(50));
            }
        },
    );
}

// ------------------------------------------------------------------ cells

/// SIGKILL mid-stream: every key the child's client saw acknowledged is
/// present after restart, exactly once, and a second restart reproduces a
/// byte-identical table — the replay is deterministic and idempotent.
#[test]
fn sigkill_mid_batch_loses_no_acknowledged_request() {
    let tmp = TempDir::new("no-lost-ack");
    let child = spawn_child("serve-insert", tmp.path(), &[("FOL_CRASH_CKPT_EVERY", "4")]);
    wait_until("48 acknowledged inserts", Duration::from_secs(60), || {
        read_acks(tmp.path()).len() >= 48
    });
    kill(child);
    let acked = read_acks(tmp.path());

    let (server, restart) = Server::try_start(serve_config(tmp.path(), 4, 1 << 20))
        .expect("restart over the crashed child's directory");
    let report = server.shutdown();
    let keys = oa_keys(&report);
    assert!(
        keys.windows(2).all(|w| w[0] < w[1]),
        "replay must not double-apply: duplicate key in {keys:?}"
    );
    for k in &acked {
        assert!(
            keys.binary_search(k).is_ok(),
            "acknowledged key {k} lost across the crash; recovered {} keys",
            keys.len()
        );
    }

    // Oracle check: recovery is a pure function of the surviving disk, so
    // restarting again over the (now clean) state must reproduce the same
    // table byte-for-byte.
    let (server2, _) = Server::try_start(serve_config(tmp.path(), 4, 1 << 20)).unwrap();
    let report2 = server2.shutdown();
    assert_eq!(oa_keys(&report2), keys, "recovery must be deterministic");

    write_cell_report(
        "sigkill_mid_batch",
        &[
            ("acked", acked.len().to_string()),
            ("recovered", keys.len().to_string()),
            ("replayed", restart.replayed.to_string()),
            ("torn_tail", restart.torn_tail.to_string()),
            ("acked_lost", "0".into()),
            ("passed", "true".into()),
        ],
    );
}

/// A torn write-ahead-log tail (the kill signature) is the accepted crash
/// frontier: surfaced in the restart report, with everything before the
/// tear — including every acknowledged key — intact.
#[test]
fn torn_wal_tail_is_surfaced_and_costs_no_acks() {
    let tmp = TempDir::new("torn-tail");
    let child = spawn_child("serve-insert", tmp.path(), &[("FOL_CRASH_CKPT_EVERY", "4")]);
    wait_until("24 acknowledged inserts", Duration::from_secs(60), || {
        read_acks(tmp.path()).len() >= 24
    });
    kill(child);
    let acked = read_acks(tmp.path());

    // Tear the newest segment mid-record. Only the final record can be
    // damaged, and a ripped-off completion is exactly what replay covers.
    let segs = wal::segments(tmp.path(), REQUEST_LOG_PREFIX).unwrap();
    let (_, path) = segs.last().expect("the child wrote a log");
    let len = std::fs::metadata(path).unwrap().len();
    assert!(len > 20, "segment too short to tear mid-record");
    std::fs::OpenOptions::new()
        .write(true)
        .open(path)
        .unwrap()
        .set_len(len - 3)
        .unwrap();

    let (server, restart) =
        Server::try_start(serve_config(tmp.path(), 4, 1 << 20)).expect("torn tail must not refuse");
    assert!(restart.torn_tail, "the tear is surfaced: {restart:?}");
    let report = server.shutdown();
    let keys = oa_keys(&report);
    assert!(keys.windows(2).all(|w| w[0] < w[1]), "no duplicates");
    for k in &acked {
        assert!(
            keys.binary_search(k).is_ok(),
            "acknowledged key {k} lost to a torn tail"
        );
    }
    write_cell_report(
        "torn_wal_tail",
        &[
            ("acked", acked.len().to_string()),
            ("recovered", keys.len().to_string()),
            ("replayed", restart.replayed.to_string()),
            ("acked_lost", "0".into()),
            ("passed", "true".into()),
        ],
    );
}

/// A byte flip inside a *sealed* log segment is corruption, not a crash
/// frontier: startup over that history is refused with the typed
/// persistence error, never silently replayed around.
#[test]
fn corrupt_sealed_wal_segment_refuses_restart_typed() {
    let tmp = TempDir::new("corrupt-wal");
    // Tiny segments so the child seals several; a sealed segment admits no
    // torn-tail forgiveness.
    let child = spawn_child(
        "serve-insert",
        tmp.path(),
        &[
            ("FOL_CRASH_CKPT_EVERY", "4"),
            ("FOL_CRASH_SEG_BYTES", "2048"),
        ],
    );
    wait_until("64 acknowledged inserts", Duration::from_secs(60), || {
        read_acks(tmp.path()).len() >= 64
    });
    kill(child);

    let segs = wal::segments(tmp.path(), REQUEST_LOG_PREFIX).unwrap();
    assert!(
        segs.len() >= 2,
        "expected multiple sealed segments: {segs:?}"
    );
    let (_, first) = &segs[0];
    let mut bytes = std::fs::read(first).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x20;
    std::fs::write(first, &bytes).unwrap();

    let err = match Server::try_start(serve_config(tmp.path(), 4, 2048)) {
        Err(e) => e,
        Ok(_) => panic!("corrupt sealed history must refuse startup"),
    };
    assert!(
        matches!(err, ServeError::Persist { .. }),
        "refusal must be typed: {err}"
    );
    write_cell_report(
        "corrupt_sealed_wal",
        &[
            ("segments", segs.len().to_string()),
            ("error", format!("{:?}", format!("{err}"))),
            ("passed", "true".into()),
        ],
    );
}

/// A torn checkpoint file (the mid-checkpoint-write kill) is refused with
/// a typed reason and recovery falls back to the next oldest checkpoint
/// plus the request log — still without losing one acknowledged key.
#[test]
fn torn_checkpoint_is_refused_and_recovery_falls_back() {
    let tmp = TempDir::new("torn-ckpt");
    // checkpoint_every=1 with keep=2 guarantees two checkpoint generations.
    let child = spawn_child("serve-insert", tmp.path(), &[("FOL_CRASH_CKPT_EVERY", "1")]);
    wait_until("32 acknowledged inserts", Duration::from_secs(60), || {
        read_acks(tmp.path()).len() >= 32
    });
    kill(child);
    let acked = read_acks(tmp.path());

    // Tear the newest checkpoint of the only worker in half — the torn
    // tmp-file rename race a real mid-write kill can leave behind.
    let prefix = format!("{}-", worker_prefix(0));
    let mut ckpts: Vec<PathBuf> = std::fs::read_dir(tmp.path())
        .unwrap()
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| {
            let name = p.file_name().unwrap().to_string_lossy().into_owned();
            name.starts_with(&prefix) && name.ends_with(".ckpt")
        })
        .collect();
    ckpts.sort();
    assert!(ckpts.len() >= 2, "expected two checkpoint generations");
    let newest = ckpts.last().unwrap();
    let len = std::fs::metadata(newest).unwrap().len();
    std::fs::OpenOptions::new()
        .write(true)
        .open(newest)
        .unwrap()
        .set_len(len / 2)
        .unwrap();

    let (server, restart) = Server::try_start(serve_config(tmp.path(), 1, 1 << 20))
        .expect("a torn checkpoint must not block recovery");
    assert!(
        restart.checkpoints_refused >= 1,
        "the torn file is refused, typed: {restart:?}"
    );
    assert!(
        restart.checkpoints_restored >= 1,
        "recovery falls back to the older generation: {restart:?}"
    );
    let report = server.shutdown();
    let keys = oa_keys(&report);
    assert!(keys.windows(2).all(|w| w[0] < w[1]), "no duplicates");
    for k in &acked {
        assert!(
            keys.binary_search(k).is_ok(),
            "acknowledged key {k} lost to a torn checkpoint"
        );
    }
    write_cell_report(
        "torn_checkpoint_fallback",
        &[
            ("acked", acked.len().to_string()),
            ("recovered", keys.len().to_string()),
            (
                "checkpoints_refused",
                restart.checkpoints_refused.to_string(),
            ),
            ("replayed", restart.replayed.to_string()),
            ("acked_lost", "0".into()),
            ("passed", "true".into()),
        ],
    );
}

/// SIGKILL between ladder rungs: the persisted rung file makes escalation
/// progress durable, so the restarted run begins at the rung the dead
/// process had reached (`VerifiedReplay`, index 2) instead of re-failing
/// the bottom of the ladder — and a clean commit clears the rung file.
#[test]
fn sigkill_mid_ladder_resumes_at_the_persisted_rung() {
    let tmp = TempDir::new("ladder");
    let child = spawn_child("ladder", tmp.path(), &[]);
    wait_until("the child to reach rung 2", Duration::from_secs(60), || {
        tmp.path().join("rung2-armed").exists()
    });
    kill(child);
    assert!(
        tmp.path().join("ladder.rung").exists(),
        "the rung file is the durable ladder cursor"
    );

    let mut m = Machine::new(CostModel::unit());
    let region = m.alloc(8, "cell");
    m.track_region(region);
    let mut ck = Checkpointer::new(tmp.path(), "ladder");
    let mut seen: Vec<ExecMode> = Vec::new();
    let (_, report) =
        run_transaction_durable(&mut m, &RetryPolicy::default(), &mut ck, |_, mode| {
            seen.push(mode);
            Ok(())
        })
        .expect("the resumed run commits");
    // VerifiedReplay re-executes the body for its 2-of-3 replay voting, so
    // the body may run more than once — but every run must be at the
    // resumed rung, and the supervisor must book exactly one attempt.
    assert!(
        !seen.is_empty()
            && seen
                .iter()
                .all(|m| matches!(m, ExecMode::VerifiedReplay { .. })),
        "resume must start at the persisted rung, got {seen:?}"
    );
    assert_eq!(report.attempts, 1, "no re-failing of already-burned rungs");
    assert_eq!(ck.checkpoints_written(), 1, "commit checkpointed");
    assert!(
        !tmp.path().join("ladder.rung").exists(),
        "a committed ladder leaves no cursor behind"
    );
    write_cell_report(
        "sigkill_mid_ladder",
        &[
            ("resumed_mode", format!("{:?}", format!("{:?}", seen[0]))),
            ("attempts", report.attempts.to_string()),
            ("passed", "true".into()),
        ],
    );
}

// --------------------------------------------- delta-chain recovery cells

/// How the chaos cells classify WAL payloads for a standalone [`Compactor`]
/// run — the same mapping the serving layer uses internally: undecodable
/// payloads become an admission no image can ever cover, so their segment
/// is never judged deletable.
fn classify(payload: &[u8]) -> LogRecord {
    match decode_record(payload) {
        Ok(DurRecord::Admit { seq, .. }) => LogRecord::Admit { seq },
        Ok(DurRecord::Complete { seq, applied }) => LogRecord::Complete { seq, applied },
        Err(_) => LogRecord::Admit { seq: u64::MAX },
    }
}

/// SIGKILL while the cadence is deep in a delta chain (`full_image_every`
/// so large that only generation 1 is a full image): restart must
/// materialize base + every surviving delta, lose no acknowledged key, and
/// the restart report must account for the chain depth it walked.
#[test]
fn sigkill_mid_delta_chain_loses_no_acknowledged_request() {
    let tmp = TempDir::new("delta-chain");
    let child = spawn_child(
        "serve-insert",
        tmp.path(),
        &[
            ("FOL_CRASH_CKPT_EVERY", "1"),
            ("FOL_CRASH_FULL_EVERY", "1000"),
        ],
    );
    wait_until("24 acknowledged inserts", Duration::from_secs(60), || {
        read_acks(tmp.path()).len() >= 24
    });
    kill(child);
    let acked = read_acks(tmp.path());
    let deltas = generations(tmp.path(), "delta");
    assert!(
        generations(tmp.path(), "ckpt").len() == 1 && deltas.len() >= 2,
        "the cadence must have produced one base and a real delta chain"
    );

    let (keys, restart) = restart_and_audit(tmp.path(), 1, &acked, "a mid-delta-chain SIGKILL");
    assert!(
        restart.checkpoints_restored >= 1 && restart.deltas_applied >= 2,
        "recovery must come through the delta chain, not a cold replay: {restart:?}"
    );

    // Recovery is a pure function of the surviving disk.
    let (server2, _) = Server::try_start(serve_config(tmp.path(), 1, 1 << 20)).unwrap();
    let report2 = server2.shutdown();
    assert_eq!(oa_keys(&report2), keys, "recovery must be deterministic");

    write_cell_report(
        "sigkill_mid_delta_chain",
        &[
            ("acked", acked.len().to_string()),
            ("recovered", keys.len().to_string()),
            ("deltas_on_disk", deltas.len().to_string()),
            ("deltas_applied", restart.deltas_applied.to_string()),
            ("acked_lost", "0".into()),
            ("passed", "true".into()),
        ],
    );
}

/// SIGKILL inside a compaction pass: the mark-then-delete protocol means
/// the survivor directory may hold a `.compacting` marker and any prefix of
/// the intended deletions. Planting the marker reproduces the worst
/// interruption point deterministically; a standalone compactor run must
/// resume it (report it, finish the work, clear it), and restart over the
/// resumed directory loses nothing.
#[test]
fn sigkill_mid_compaction_resumes_the_marker_and_loses_nothing() {
    let tmp = TempDir::new("mid-compaction");
    // Aggressive cadence + tiny segments: real compaction churn while the
    // child runs, so the kill lands in a directory shaped by many passes.
    let child = spawn_child(
        "serve-insert",
        tmp.path(),
        &[
            ("FOL_CRASH_CKPT_EVERY", "1"),
            ("FOL_CRASH_FULL_EVERY", "2"),
            ("FOL_CRASH_SEG_BYTES", "2048"),
        ],
    );
    wait_until("32 acknowledged inserts", Duration::from_secs(60), || {
        read_acks(tmp.path()).len() >= 32
    });
    kill(child);
    let acked = read_acks(tmp.path());

    let compactor = Compactor::new(tmp.path(), REQUEST_LOG_PREFIX).keep_full_images(2);
    let killed_mid_pass = compactor.marker_path().exists();
    if !killed_mid_pass {
        // The kill rarely lands inside the (short) delete window; plant the
        // marker to simulate exactly that interruption point.
        std::fs::write(compactor.marker_path(), b"interrupted\n").unwrap();
    }
    let prefix = worker_prefix(0);
    let report = compactor
        .compact(&[prefix.as_str()], classify)
        .expect("resuming an interrupted pass must succeed");
    assert!(
        report.resumed_marker,
        "the interrupted pass is visible in the report: {report:?}"
    );
    assert!(
        !compactor.marker_path().exists(),
        "a completed pass clears its marker"
    );
    assert!(
        report.refusals.is_empty(),
        "nothing in this directory warrants a refusal: {report:?}"
    );

    let (keys, _) = restart_and_audit(tmp.path(), 1, &acked, "a mid-compaction SIGKILL");
    let (server2, _) = Server::try_start(serve_config(tmp.path(), 1, 1 << 20)).unwrap();
    let report2 = server2.shutdown();
    assert_eq!(oa_keys(&report2), keys, "recovery must be deterministic");

    write_cell_report(
        "sigkill_mid_compaction",
        &[
            ("acked", acked.len().to_string()),
            ("recovered", keys.len().to_string()),
            ("killed_mid_pass", killed_mid_pass.to_string()),
            ("resumed_marker", report.resumed_marker.to_string()),
            (
                "generations_removed",
                report.generations_removed.to_string(),
            ),
            (
                "wal_segments_removed",
                report.wal_segments_removed.to_string(),
            ),
            ("acked_lost", "0".into()),
            ("passed", "true".into()),
        ],
    );
}

/// A torn delta head (mid-delta-write kill signature, forced by truncating
/// the newest delta in half) is skipped with a typed [`SkipReason::Refused`]
/// and recovery falls back one link — still losing nothing.
#[test]
fn torn_delta_is_skipped_typed_and_recovery_falls_back() {
    let tmp = TempDir::new("torn-delta");
    let child = spawn_child(
        "serve-insert",
        tmp.path(),
        &[
            ("FOL_CRASH_CKPT_EVERY", "1"),
            ("FOL_CRASH_FULL_EVERY", "1000"),
        ],
    );
    wait_until("24 acknowledged inserts", Duration::from_secs(60), || {
        read_acks(tmp.path()).len() >= 24
    });
    kill(child);
    let acked = read_acks(tmp.path());

    let deltas = generations(tmp.path(), "delta");
    let (torn_seq, torn_path) = deltas.last().expect("a delta chain exists");
    let len = std::fs::metadata(torn_path).unwrap().len();
    std::fs::OpenOptions::new()
        .write(true)
        .open(torn_path)
        .unwrap()
        .set_len(len / 2)
        .unwrap();

    let (keys, restart) = restart_and_audit(tmp.path(), 1, &acked, "a torn delta head");
    let skip = restart
        .skipped_generations
        .iter()
        .find(|s| s.seq == *torn_seq)
        .expect("the torn generation appears in the skip record");
    assert!(
        matches!(skip.reason, SkipReason::Refused { .. }),
        "a torn delta is a typed refusal: {:?}",
        skip.reason
    );
    assert!(
        restart.checkpoints_restored >= 1,
        "recovery fell back to the link below the tear: {restart:?}"
    );
    write_cell_report(
        "torn_delta_fallback",
        &[
            ("acked", acked.len().to_string()),
            ("recovered", keys.len().to_string()),
            ("skipped", restart.skipped_generations.len().to_string()),
            ("skip_reason", format!("{:?}", format!("{:?}", skip.reason))),
            ("acked_lost", "0".into()),
            ("passed", "true".into()),
        ],
    );
}

/// Deleting the head's *parent* delta leaves a link naming a generation
/// that no longer exists: the head is skipped with the typed
/// [`SkipReason::MissingParent`], and the next intact head plus widened WAL
/// replay recovers every acknowledged key.
#[test]
fn missing_parent_is_skipped_typed_and_replay_widens() {
    let tmp = TempDir::new("missing-parent");
    let child = spawn_child(
        "serve-insert",
        tmp.path(),
        &[
            ("FOL_CRASH_CKPT_EVERY", "1"),
            ("FOL_CRASH_FULL_EVERY", "1000"),
        ],
    );
    wait_until("24 acknowledged inserts", Duration::from_secs(60), || {
        read_acks(tmp.path()).len() >= 24
    });
    kill(child);
    let acked = read_acks(tmp.path());

    let deltas = generations(tmp.path(), "delta");
    assert!(deltas.len() >= 3, "need a chain deep enough to break");
    let (parent_seq, parent_path) = &deltas[deltas.len() - 2];
    std::fs::remove_file(parent_path).unwrap();

    let (keys, restart) = restart_and_audit(tmp.path(), 1, &acked, "a deleted parent delta");
    assert!(
        restart.skipped_generations.iter().any(|s| matches!(
            s.reason,
            SkipReason::MissingParent { parent_seq: p } if p == *parent_seq
        )),
        "the dangling link is typed MissingParent: {:?}",
        restart.skipped_generations
    );
    write_cell_report(
        "missing_parent_fallback",
        &[
            ("acked", acked.len().to_string()),
            ("recovered", keys.len().to_string()),
            ("skipped", restart.skipped_generations.len().to_string()),
            ("acked_lost", "0".into()),
            ("passed", "true".into()),
        ],
    );
}

/// Deleting a generation *deeper* in the chain orphans every head above it:
/// each is skipped (typed), the planner walks all the way down to the
/// newest head whose chain is intact, and the widened WAL replay covers the
/// difference.
#[test]
fn deleted_mid_chain_generation_widens_the_fallback() {
    let tmp = TempDir::new("mid-chain-delete");
    let child = spawn_child(
        "serve-insert",
        tmp.path(),
        &[
            ("FOL_CRASH_CKPT_EVERY", "1"),
            ("FOL_CRASH_FULL_EVERY", "1000"),
        ],
    );
    wait_until("32 acknowledged inserts", Duration::from_secs(60), || {
        read_acks(tmp.path()).len() >= 32
    });
    kill(child);
    let acked = read_acks(tmp.path());

    let deltas = generations(tmp.path(), "delta");
    assert!(deltas.len() >= 4, "need a chain deep enough to break twice");
    let (gone_seq, gone_path) = &deltas[deltas.len() - 3];
    std::fs::remove_file(gone_path).unwrap();

    let (keys, restart) =
        restart_and_audit(tmp.path(), 1, &acked, "a deleted mid-chain generation");
    let missing: Vec<_> = restart
        .skipped_generations
        .iter()
        .filter(|s| {
            matches!(
                s.reason,
                SkipReason::MissingParent { parent_seq: p } if p == *gone_seq
            )
        })
        .collect();
    assert!(
        missing.len() >= 2,
        "every head chained through the hole is skipped, typed: {:?}",
        restart.skipped_generations
    );
    write_cell_report(
        "mid_chain_delete_fallback",
        &[
            ("acked", acked.len().to_string()),
            ("recovered", keys.len().to_string()),
            ("skipped", restart.skipped_generations.len().to_string()),
            ("acked_lost", "0".into()),
            ("passed", "true".into()),
        ],
    );
}

/// A bit flip inside the newest *full image* poisons it and every delta
/// chained onto it: all of them are skipped, typed, and recovery falls back
/// a whole full-image generation — whose WAL coverage the compactor was
/// required to preserve — still losing nothing.
#[test]
fn bit_flipped_full_image_falls_back_a_full_generation() {
    let tmp = TempDir::new("bitflip-full");
    let child = spawn_child(
        "serve-insert",
        tmp.path(),
        &[("FOL_CRASH_CKPT_EVERY", "1"), ("FOL_CRASH_FULL_EVERY", "2")],
    );
    wait_until("32 acknowledged inserts", Duration::from_secs(60), || {
        read_acks(tmp.path()).len() >= 32
    });
    kill(child);
    let acked = read_acks(tmp.path());

    let fulls = generations(tmp.path(), "ckpt");
    assert!(fulls.len() >= 2, "retention keeps two full images");
    let (flipped_seq, newest_full) = fulls.last().unwrap();
    let mut bytes = std::fs::read(newest_full).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x40;
    std::fs::write(newest_full, &bytes).unwrap();

    let (keys, restart) = restart_and_audit(tmp.path(), 1, &acked, "a bit-flipped full image");
    assert!(
        restart
            .skipped_generations
            .iter()
            .any(|s| s.seq == *flipped_seq && matches!(s.reason, SkipReason::Refused { .. })),
        "the corrupt image itself is refused, typed: {:?}",
        restart.skipped_generations
    );
    assert!(
        restart.checkpoints_restored >= 1,
        "recovery still restores from the older full image: {restart:?}"
    );
    write_cell_report(
        "bit_flipped_full_image",
        &[
            ("acked", acked.len().to_string()),
            ("recovered", keys.len().to_string()),
            ("skipped", restart.skipped_generations.len().to_string()),
            ("replayed", restart.replayed.to_string()),
            ("acked_lost", "0".into()),
            ("passed", "true".into()),
        ],
    );
}

/// The `FsyncPolicy::Batch` tear window, simulated as power loss: truncate
/// the log at every sampled point from the last acknowledged request's
/// completion record to end-of-file (the bytes a dying page cache could
/// legitimately drop) and restart over each truncation. Under Batch the
/// log is fsynced before acks demultiplex, so no cut in that window may
/// lose an acknowledged key.
#[test]
fn batch_fsync_tear_window_loses_no_acknowledged_request() {
    let tmp = TempDir::new("batch-tear");
    let child = spawn_child(
        "serve-insert",
        tmp.path(),
        &[
            ("FOL_CRASH_CKPT_EVERY", "4"),
            ("FOL_CRASH_FULL_EVERY", "1000"), // no rotation: one segment
            ("FOL_CRASH_FSYNC", "batch"),
        ],
    );
    wait_until("24 acknowledged inserts", Duration::from_secs(60), || {
        read_acks(tmp.path()).len() >= 24
    });
    kill(child);
    let acked = read_acks(tmp.path());

    // Only the *active* (last) segment can hold unsynced bytes; sealed
    // segments are never truncated by the sweep. Walk every surviving
    // segment's frames for the key→seq admission map, and record each
    // completion's frame *end* offset within the last segment — the kill
    // may leave a torn final frame there, which ends the walk cleanly.
    let segs = wal::segments(tmp.path(), REQUEST_LOG_PREFIX).unwrap();
    let seg_path = segs.last().expect("the child wrote a log").1.clone();
    let header = wal::WAL_MAGIC.len() + 4;
    let mut key_seq: HashMap<Word, u64> = HashMap::new();
    let mut complete_end: HashMap<u64, u64> = HashMap::new();
    let mut len = 0u64;
    for (_, path) in &segs {
        let last = *path == seg_path;
        let bytes = std::fs::read(path).unwrap();
        let mut pos = header;
        while pos < bytes.len() {
            let Ok(Frame::Ok(payload)) = next_frame(&bytes, &mut pos, "tear-window scan") else {
                break;
            };
            match decode_record(payload) {
                Ok(DurRecord::Admit {
                    seq,
                    request: Request::OaInsert { keys },
                    ..
                }) => {
                    key_seq.insert(keys[0], seq);
                }
                Ok(DurRecord::Complete { seq, .. }) if last => {
                    complete_end.insert(seq, pos as u64);
                }
                _ => {}
            }
        }
        if last {
            len = bytes.len() as u64;
        }
    }

    // The safe frontier: the last acknowledged completion's end offset in
    // the active segment. Batch fsyncs the log before replies demultiplex,
    // so everything at or before this offset is durable; everything after
    // it is the tear window power loss may drop. Acked keys whose records
    // live in sealed segments (or in a retained checkpoint image) impose
    // no constraint — the sweep never touches those bytes.
    let frontier = acked
        .iter()
        .filter_map(|k| complete_end.get(key_seq.get(k)?))
        .copied()
        .max()
        .unwrap_or(header as u64);
    assert!(frontier <= len);

    // Sweep the window (all points when small, sampled otherwise, always
    // including both ends), each on a fresh copy of the survivor dir.
    let window = len - frontier;
    let cuts: Vec<u64> = if window <= 24 {
        (frontier..=len).collect()
    } else {
        (0..=24).map(|i| frontier + (window * i) / 24).collect()
    };
    let mut acked_lost = 0usize;
    for (i, cut) in cuts.iter().enumerate() {
        let copy = TempDir::new(&format!("batch-tear-cut{i}"));
        copy_dir(tmp.path(), copy.path());
        std::fs::OpenOptions::new()
            .write(true)
            .open(copy.path().join(seg_path.file_name().unwrap()))
            .unwrap()
            .set_len(*cut)
            .unwrap();
        let (server, _) = Server::try_start(serve_config(copy.path(), 4, 1 << 20))
            .unwrap_or_else(|e| panic!("power loss at offset {cut} must not refuse restart: {e}"));
        let report = server.shutdown();
        let keys = oa_keys(&report);
        for k in &acked {
            if keys.binary_search(k).is_err() {
                acked_lost += 1;
                eprintln!("acked key {k} lost at cut offset {cut}");
            }
        }
    }
    assert_eq!(
        acked_lost, 0,
        "the Batch tear window must never cost an acknowledged request"
    );
    write_cell_report(
        "batch_fsync_tear_window",
        &[
            ("acked", acked.len().to_string()),
            ("window_bytes", window.to_string()),
            ("cuts", cuts.len().to_string()),
            ("acked_lost", acked_lost.to_string()),
            ("passed", "true".into()),
        ],
    );
}
