//! Workspace-level property tests: every vectorized application is checked
//! against an independent oracle under random inputs and random
//! ELS-conforming conflict policies.

use fol_suite::core::vectorize::{UpdateLoop, UpdateOp};
use fol_suite::gc::{collect_vector, encode_imm, is_pointer, Heap};
use fol_suite::vm::expr::Expr;
use fol_suite::hash::chaining::{self, ChainTable};
use fol_suite::hash::open_addressing as oa;
use fol_suite::hash::ProbeStrategy;
use fol_suite::sort::{address_calc, dist_count};
use fol_suite::tree::bst::{self, Bst};
use fol_suite::tree::rewrite::{self, OpTree};
use fol_suite::vm::{ConflictPolicy, CostModel, Machine, Word};
use proptest::prelude::*;

fn policies() -> impl Strategy<Value = ConflictPolicy> {
    prop_oneof![
        Just(ConflictPolicy::FirstWins),
        Just(ConflictPolicy::LastWins),
        any::<u64>().prop_map(ConflictPolicy::Arbitrary),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Open addressing stores exactly the key set and lookup succeeds, for
    /// any distinct key set and policy.
    #[test]
    fn open_addressing_correct(
        raw in prop::collection::hash_set(0i64..1_000_000, 0..120),
        policy in policies(),
    ) {
        let keys: Vec<Word> = raw.into_iter().collect();
        let size = (keys.len() * 2 + 37).max(37);
        let mut m = Machine::with_policy(CostModel::unit(), policy);
        let t = m.alloc(size, "table");
        oa::init_table(&mut m, t);
        let _ = oa::vectorized_insert_all(&mut m, t, &keys, ProbeStrategy::KeyDependent);
        let snap = m.mem().read_region(t);
        let mut expect = keys.clone();
        expect.sort_unstable();
        prop_assert_eq!(oa::stored_keys(&snap), expect);
        for &k in &keys {
            prop_assert!(oa::contains(&snap, k, ProbeStrategy::KeyDependent));
        }
    }

    /// Chaining stores every key (duplicates included) in its home bucket.
    #[test]
    fn chaining_correct(
        keys in prop::collection::vec(0i64..10_000, 0..100),
        policy in policies(),
    ) {
        let mut m = Machine::with_policy(CostModel::unit(), policy);
        let mut t = ChainTable::alloc(&mut m, 17, keys.len().max(1));
        let _ = chaining::vectorized_insert_all(&mut m, &mut t, &keys);
        let mut expect = keys.clone();
        expect.sort_unstable();
        prop_assert_eq!(chaining::all_keys(&m, &t), expect);
        // Every key is in the bucket its hash names.
        let chains = t.chains(&m);
        for (b, chain) in chains.iter().enumerate() {
            for &k in chain {
                prop_assert_eq!(fol_suite::hash::hash_mod(k, 17) as usize, b);
            }
        }
    }

    /// Both vectorized sorts equal std's sort for any input and policy.
    #[test]
    fn sorts_match_std(
        data in prop::collection::vec(0i64..500, 0..200),
        policy in policies(),
    ) {
        let mut expect = data.clone();
        expect.sort_unstable();

        let mut m = Machine::with_policy(CostModel::unit(), policy.clone());
        let a = m.alloc(data.len(), "A");
        m.mem_mut().write_region(a, &data);
        let _ = address_calc::vectorized_sort(&mut m, a, 500);
        prop_assert_eq!(m.mem().read_region(a), expect.clone());

        let mut m = Machine::with_policy(CostModel::unit(), policy);
        let a = m.alloc(data.len(), "A");
        m.mem_mut().write_region(a, &data);
        let _ = dist_count::vectorized_sort(&mut m, a, 500);
        prop_assert_eq!(m.mem().read_region(a), expect);
    }

    /// BST multi-insert: inorder equals the sorted multiset; membership
    /// holds for every key.
    #[test]
    fn bst_inorder_sorted(
        keys in prop::collection::vec(0i64..5_000, 0..150),
        policy in policies(),
    ) {
        let mut m = Machine::with_policy(CostModel::unit(), policy);
        let mut t = Bst::alloc(&mut m, keys.len().max(1));
        let _ = bst::vectorized_insert_all(&mut m, &mut t, &keys);
        let mut expect = keys.clone();
        expect.sort_unstable();
        prop_assert_eq!(t.inorder(&m), expect);
        for &k in &keys {
            prop_assert!(t.contains(&m, k));
        }
    }

    /// Tree rewriting: normal form reached, in-order leaves preserved,
    /// associative evaluation unchanged — for any leaf sequence.
    #[test]
    fn rewrite_preserves_semantics(
        symbols in prop::collection::vec(0i64..100, 1..40),
        policy in policies(),
    ) {
        let mut m = Machine::with_policy(CostModel::unit(), policy);
        let t = OpTree::right_comb(&mut m, &symbols);
        let leaves = t.leaves_inorder(&m);
        let value = t.eval_affine(&m);
        let _ = rewrite::vectorized_rewrite_to_normal_form(&mut m, &t);
        prop_assert!(t.is_normal_form(&m));
        prop_assert_eq!(t.leaves_inorder(&m), leaves);
        prop_assert_eq!(t.eval_affine(&m), value);
    }

    /// The vectorizing transformation equals the sequential loop for random
    /// update loops (random subscript expressions, combines, inputs and
    /// conflict policies) — the transformation-correctness property that
    /// subsumes the per-application differential tests.
    #[test]
    fn vectorized_update_loop_equals_sequential(
        input in prop::collection::vec(0i64..1000, 0..80),
        mult in 1i64..20,
        add in 0i64..50,
        table_bits in 2u32..6,
        op_pick in 0u8..4,
        policy in policies(),
    ) {
        let table_len = 1usize << table_bits;
        let op = match op_pick {
            0 => UpdateOp::Store,
            1 => UpdateOp::Add,
            2 => UpdateOp::Min,
            _ => UpdateOp::Max,
        };
        let lp = UpdateLoop {
            target: Expr::input().times(mult).plus(add).modulo(table_len as i64),
            value: Expr::input().plus(1),
            op,
        };
        let mut ms = Machine::new(CostModel::unit());
        let ts = ms.alloc(table_len, "table");
        ms.vfill(ts, 0);
        lp.run_scalar(&mut ms, ts, &input);

        let mut mv = Machine::with_policy(CostModel::unit(), policy);
        let tv = mv.alloc(table_len, "table");
        let wv = mv.alloc(table_len, "work");
        mv.vfill(tv, 0);
        let _ = lp.run_vectorized(&mut mv, tv, wv, &input);
        prop_assert_eq!(ms.mem().read_region(ts), mv.mem().read_region(tv));
    }

    /// GC: every root's reachable graph is shape-preserved, and the copy
    /// count never exceeds the live-cell count.
    #[test]
    fn gc_preserves_reachable_graphs(
        shape in prop::collection::vec((0u8..4, 0i64..50, 0i64..50), 1..40),
        root_picks in prop::collection::vec(any::<prop::sample::Index>(), 1..6),
        policy in policies(),
    ) {
        let mut m = Machine::with_policy(CostModel::unit(), policy);
        let mut from = Heap::alloc(&mut m, shape.len(), "from");
        // Build a random heap: fields are immediates or backward pointers,
        // guaranteeing a valid (possibly shared) DAG.
        for (i, &(kind, a, b)) in shape.iter().enumerate() {
            let field = |sel: bool, v: i64| -> Word {
                if sel && i > 0 { v.rem_euclid(i as i64) } else { encode_imm(v) }
            };
            let car = field(kind & 1 != 0, a);
            let cdr = field(kind & 2 != 0, b);
            let _ = from.cons(&mut m, car, cdr);
        }
        let roots: Vec<Word> =
            root_picks.iter().map(|ix| ix.index(shape.len()) as Word).collect();
        let (to, new_roots, rep) = collect_vector(&mut m, &from, &roots);
        prop_assert!(rep.copied <= shape.len());
        prop_assert_eq!(new_roots.len(), roots.len());
        for (i, &orig) in roots.iter().enumerate() {
            prop_assert!(is_pointer(new_roots[i]));
            prop_assert!(Heap::same_shape(&m, &from, orig, &to, new_roots[i]));
        }
    }
}
