//! Workspace-level property tests: every vectorized application is checked
//! against an independent oracle under random inputs and random
//! ELS-conforming conflict policies.
//!
//! Deterministic seeded sweeps (SplitMix64) stand in for a property-testing
//! framework: each property is checked over many generated cases, and a
//! failure names the seed so the case replays exactly.

use fol_suite::core::vectorize::{UpdateLoop, UpdateOp};
use fol_suite::gc::{collect_vector, encode_imm, is_pointer, Heap};
use fol_suite::hash::chaining::{self, ChainTable};
use fol_suite::hash::open_addressing as oa;
use fol_suite::hash::ProbeStrategy;
use fol_suite::sort::{address_calc, dist_count};
use fol_suite::tree::bst::{self, Bst};
use fol_suite::tree::rewrite::{self, OpTree};
use fol_suite::vm::expr::Expr;
use fol_suite::vm::{ConflictPolicy, CostModel, Machine, Word};

const CASES: u64 = 48;

/// SplitMix64 — deterministic case generator for the seeded sweeps.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Self {
        Self(seed)
    }

    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound
    }

    fn range(&mut self, lo: i64, hi: i64) -> i64 {
        lo + self.below((hi - lo) as u64) as i64
    }

    fn vec(&mut self, max_len: u64, lo: i64, hi: i64) -> Vec<i64> {
        let n = self.below(max_len) as usize;
        (0..n).map(|_| self.range(lo, hi)).collect()
    }
}

fn policy_for(rng: &mut Rng) -> ConflictPolicy {
    match rng.below(3) {
        0 => ConflictPolicy::FirstWins,
        1 => ConflictPolicy::LastWins,
        _ => ConflictPolicy::Arbitrary(rng.next_u64()),
    }
}

/// Open addressing stores exactly the key set and lookup succeeds, for
/// any distinct key set and policy.
#[test]
fn open_addressing_correct() {
    for seed in 0..CASES {
        let mut rng = Rng::new(seed);
        let n = rng.below(120) as usize;
        let raw: std::collections::HashSet<i64> = (0..n).map(|_| rng.range(0, 1_000_000)).collect();
        let keys: Vec<Word> = raw.into_iter().collect();
        let policy = policy_for(&mut rng);
        let size = (keys.len() * 2 + 37).max(37);
        let mut m = Machine::with_policy(CostModel::unit(), policy);
        let t = m.alloc(size, "table");
        oa::init_table(&mut m, t);
        let _ = oa::vectorized_insert_all(&mut m, t, &keys, ProbeStrategy::KeyDependent);
        let snap = m.mem().read_region(t);
        let mut expect = keys.clone();
        expect.sort_unstable();
        assert_eq!(oa::stored_keys(&snap), expect, "seed {seed}");
        for &k in &keys {
            assert!(
                oa::contains(&snap, k, ProbeStrategy::KeyDependent),
                "seed {seed}: {k}"
            );
        }
    }
}

/// Chaining stores every key (duplicates included) in its home bucket.
#[test]
fn chaining_correct() {
    for seed in 0..CASES {
        let mut rng = Rng::new(seed);
        let keys = rng.vec(100, 0, 10_000);
        let policy = policy_for(&mut rng);
        let mut m = Machine::with_policy(CostModel::unit(), policy);
        let mut t = ChainTable::alloc(&mut m, 17, keys.len().max(1));
        let _ = chaining::vectorized_insert_all(&mut m, &mut t, &keys);
        let mut expect = keys.clone();
        expect.sort_unstable();
        assert_eq!(chaining::all_keys(&m, &t), expect, "seed {seed}");
        // Every key is in the bucket its hash names.
        let chains = t.chains(&m);
        for (b, chain) in chains.iter().enumerate() {
            for &k in chain {
                assert_eq!(fol_suite::hash::hash_mod(k, 17) as usize, b, "seed {seed}");
            }
        }
    }
}

/// Both vectorized sorts equal std's sort for any input and policy.
#[test]
fn sorts_match_std() {
    for seed in 0..CASES {
        let mut rng = Rng::new(seed);
        let data = rng.vec(200, 0, 500);
        let policy = policy_for(&mut rng);
        let mut expect = data.clone();
        expect.sort_unstable();

        let mut m = Machine::with_policy(CostModel::unit(), policy.clone());
        let a = m.alloc(data.len(), "A");
        m.mem_mut().write_region(a, &data);
        let _ = address_calc::vectorized_sort(&mut m, a, 500);
        assert_eq!(m.mem().read_region(a), expect, "seed {seed}: address_calc");

        let mut m = Machine::with_policy(CostModel::unit(), policy);
        let a = m.alloc(data.len(), "A");
        m.mem_mut().write_region(a, &data);
        let _ = dist_count::vectorized_sort(&mut m, a, 500);
        assert_eq!(m.mem().read_region(a), expect, "seed {seed}: dist_count");
    }
}

/// BST multi-insert: inorder equals the sorted multiset; membership
/// holds for every key.
#[test]
fn bst_inorder_sorted() {
    for seed in 0..CASES {
        let mut rng = Rng::new(seed);
        let keys = rng.vec(150, 0, 5_000);
        let policy = policy_for(&mut rng);
        let mut m = Machine::with_policy(CostModel::unit(), policy);
        let mut t = Bst::alloc(&mut m, keys.len().max(1));
        let _ = bst::vectorized_insert_all(&mut m, &mut t, &keys);
        let mut expect = keys.clone();
        expect.sort_unstable();
        assert_eq!(t.inorder(&m), expect, "seed {seed}");
        for &k in &keys {
            assert!(t.contains(&m, k), "seed {seed}: {k}");
        }
    }
}

/// Tree rewriting: normal form reached, in-order leaves preserved,
/// associative evaluation unchanged — for any leaf sequence.
#[test]
fn rewrite_preserves_semantics() {
    for seed in 0..CASES {
        let mut rng = Rng::new(seed);
        let n = 1 + rng.below(39) as usize;
        let symbols: Vec<i64> = (0..n).map(|_| rng.range(0, 100)).collect();
        let policy = policy_for(&mut rng);
        let mut m = Machine::with_policy(CostModel::unit(), policy);
        let t = OpTree::right_comb(&mut m, &symbols);
        let leaves = t.leaves_inorder(&m);
        let value = t.eval_affine(&m);
        let _ = rewrite::vectorized_rewrite_to_normal_form(&mut m, &t);
        assert!(t.is_normal_form(&m), "seed {seed}");
        assert_eq!(t.leaves_inorder(&m), leaves, "seed {seed}");
        assert_eq!(t.eval_affine(&m), value, "seed {seed}");
    }
}

/// The vectorizing transformation equals the sequential loop for random
/// update loops (random subscript expressions, combines, inputs and
/// conflict policies) — the transformation-correctness property that
/// subsumes the per-application differential tests.
#[test]
fn vectorized_update_loop_equals_sequential() {
    for seed in 0..CASES {
        let mut rng = Rng::new(seed);
        let input = rng.vec(80, 0, 1000);
        let mult = rng.range(1, 20);
        let add = rng.range(0, 50);
        let table_bits = 2 + rng.below(4) as u32;
        let op = match rng.below(4) {
            0 => UpdateOp::Store,
            1 => UpdateOp::Add,
            2 => UpdateOp::Min,
            _ => UpdateOp::Max,
        };
        let policy = policy_for(&mut rng);
        let table_len = 1usize << table_bits;
        let lp = UpdateLoop {
            target: Expr::input().times(mult).plus(add).modulo(table_len as i64),
            value: Expr::input().plus(1),
            op,
        };
        let mut ms = Machine::new(CostModel::unit());
        let ts = ms.alloc(table_len, "table");
        ms.vfill(ts, 0);
        lp.run_scalar(&mut ms, ts, &input);

        let mut mv = Machine::with_policy(CostModel::unit(), policy);
        let tv = mv.alloc(table_len, "table");
        let wv = mv.alloc(table_len, "work");
        mv.vfill(tv, 0);
        let _ = lp.run_vectorized(&mut mv, tv, wv, &input);
        assert_eq!(
            ms.mem().read_region(ts),
            mv.mem().read_region(tv),
            "seed {seed}"
        );
    }
}

/// GC: every root's reachable graph is shape-preserved, and the copy
/// count never exceeds the live-cell count.
#[test]
fn gc_preserves_reachable_graphs() {
    for seed in 0..CASES {
        let mut rng = Rng::new(seed);
        let n = 1 + rng.below(39) as usize;
        let shape: Vec<(u8, i64, i64)> = (0..n)
            .map(|_| (rng.below(4) as u8, rng.range(0, 50), rng.range(0, 50)))
            .collect();
        let n_roots = 1 + rng.below(5) as usize;
        let policy = policy_for(&mut rng);
        let mut m = Machine::with_policy(CostModel::unit(), policy);
        let mut from = Heap::alloc(&mut m, shape.len(), "from");
        // Build a random heap: fields are immediates or backward pointers,
        // guaranteeing a valid (possibly shared) DAG.
        for (i, &(kind, a, b)) in shape.iter().enumerate() {
            let field = |sel: bool, v: i64| -> Word {
                if sel && i > 0 {
                    v.rem_euclid(i as i64)
                } else {
                    encode_imm(v)
                }
            };
            let car = field(kind & 1 != 0, a);
            let cdr = field(kind & 2 != 0, b);
            let _ = from.cons(&mut m, car, cdr);
        }
        let roots: Vec<Word> = (0..n_roots)
            .map(|_| rng.below(shape.len() as u64) as Word)
            .collect();
        let (to, new_roots, rep) = collect_vector(&mut m, &from, &roots);
        assert!(rep.copied <= shape.len(), "seed {seed}");
        assert_eq!(new_roots.len(), roots.len(), "seed {seed}");
        for (i, &orig) in roots.iter().enumerate() {
            assert!(is_pointer(new_roots[i]), "seed {seed}: root {orig}");
            assert!(
                Heap::same_shape(&m, &from, orig, &to, new_roots[i]),
                "seed {seed}: root {orig}"
            );
        }
    }
}
