use fol_core::recover::{txn_apply_rounds, RetryPolicy};
use fol_vm::{CostModel, FaultPlan, Machine};

#[test]
fn readme_transactional_execution_snippet() {
    let mut m = Machine::new(CostModel::unit());
    m.set_fault_plan(Some(FaultPlan::dropped_lanes(7, 20_000)));
    let work = m.alloc(3, "work");

    let targets = [0usize, 1, 0, 2, 2, 0];
    let mut counts = [0u32; 3];
    let (_, report) = txn_apply_rounds(
        &mut m,
        work,
        &mut counts,
        &targets,
        &RetryPolicy::default(),
        |cell, _i| *cell += 1,
    )
    .expect("the default ladder ends on a fault-immune rung");

    assert_eq!(counts, [3, 1, 2]);
    println!(
        "attempts: {}, final mode: {:?}",
        report.attempts, report.final_mode
    );
}
