//! Compile-and-run check for the README "Remote serving" snippet — if the
//! public API drifts, this test fails before the docs lie.

use fol_net::{NetClient, NetClientConfig, NetServer, NetServerConfig, WireFaultPlan};
use fol_serve::{Request, Response, Server, ServerConfig};

#[test]
fn readme_net_snippet() {
    // Any serving-layer Server can face the network; port 0 picks a free one.
    let server = Server::start(ServerConfig::default());
    let net = NetServer::start(server, NetServerConfig::default()).unwrap();

    // A client under a hostile, *seeded* wire: 15% of its request frames are
    // silently dropped and 5% duplicated. Retries are idempotent by
    // (client_id, seq), so every acknowledged insert applies exactly once.
    let mut client = NetClient::new(
        net.local_addr().to_string(),
        NetClientConfig {
            client_id: 7,
            fault_plan: Some(WireFaultPlan {
                seed: 42,
                drop_per_mille: 150,
                dup_per_mille: 50,
                ..Default::default()
            }),
            ..NetClientConfig::default()
        },
    );

    // A pipelined batch: every submit is written before any result is read,
    // so the remote coalescing scheduler sees the whole batch at once.
    let batch: Vec<Request> = (0..64)
        .map(|k| Request::ChainInsert { keys: vec![k] })
        .collect();
    for outcome in client.call_many(&batch) {
        assert!(matches!(outcome, Ok(Response::ChainInserted { .. })));
    }

    // Health is answered at the network layer, outside the queue and the
    // in-flight bound — it keeps working under full saturation.
    let health = client.health().unwrap();
    assert!(health.iter().any(|(k, v)| k == "submitted" && *v >= 64));

    let report = net.shutdown(); // graceful drain, then the serving layer's own
    assert_eq!(report.stats.submitted, report.stats.completed);
}
