//! The paper's literal worked examples, as executable tests: Fig 4's
//! lost-update accident, Fig 6's decomposition, Fig 7's chaining
//! walkthrough, Fig 13's sorting trace, Fig 5's tree rewrite.

use fol_suite::core::host::fol1_host;
use fol_suite::core::theory;
use fol_suite::hash::chaining::ChainTable;
use fol_suite::hash::{chaining, hash_mod, UNENTERED};
use fol_suite::sort::address_calc;
use fol_suite::tree::rewrite::{self, OpTree};
use fol_suite::vm::{AluOp, CostModel, Machine};

#[test]
fn fig4_forced_vectorization_loses_a_key() {
    // Keys 353 and 911 collide (both hash to 5); a single unconditional
    // scatter stores exactly one of them under the ELS condition.
    assert_eq!(hash_mod(353, 6), 5);
    assert_eq!(hash_mod(911, 6), 5);
    let mut m = Machine::new(CostModel::s810());
    let table = m.alloc(6, "table");
    m.vfill(table, UNENTERED);
    let keys = m.vimm(&[353, 911]);
    let hv = m.valu_s(AluOp::Mod, &keys, 6);
    m.scatter(table, &hv, &keys);
    let stored: Vec<_> = m
        .mem()
        .read_region(table)
        .into_iter()
        .filter(|&w| w != UNENTERED)
        .collect();
    assert_eq!(
        stored.len(),
        1,
        "exactly one key survives the forced scatter"
    );
    assert!(stored[0] == 353 || stored[0] == 911);
}

#[test]
fn fig6_decomposition_of_the_shared_set() {
    // V = [a, b, a, c, c, a] over cells {a=0, b=1, c=2}: S1..S3 with sizes
    // 3, 2, 1 — Fig 6's picture.
    let v = [0usize, 1, 0, 2, 2, 0];
    let d = fol1_host(&v, 3);
    assert_eq!(d.sizes(), vec![3, 2, 1]);
    assert!(theory::is_disjoint_cover(&d, 6));
    assert!(theory::rounds_target_distinct(&d, &v));
    let words: Vec<i64> = v.iter().map(|&x| x as i64).collect();
    assert!(theory::is_minimal(&d, &words));
}

#[test]
fn fig7_chaining_walkthrough() {
    // Two colliding keys and three singles enter a 6-bucket chained table
    // in exactly two FOL rounds; the colliding pair shares bucket 5.
    let mut m = Machine::new(CostModel::s810());
    let mut t = ChainTable::alloc(&mut m, 6, 8);
    let rounds = chaining::vectorized_insert_all(&mut m, &mut t, &[353, 911, 7, 14, 3]);
    assert_eq!(rounds, 2);
    let mut bucket5 = t.chains(&m)[5].clone();
    bucket5.sort_unstable();
    assert_eq!(bucket5, vec![353, 911]);
}

#[test]
fn fig13_address_calculation_trace() {
    // A = [38, 11, 42, 39] in [0, 100): hashes 3, 0, 3, 3; the three-way
    // collision resolves over FOL iterations and the packed result is
    // sorted. (Fig 13b shows the same input taking 2 vector iterations.)
    let mut m = Machine::new(CostModel::s810());
    let a = m.alloc(4, "A");
    m.mem_mut().write_region(a, &[38, 11, 42, 39]);
    let report = address_calc::vectorized_sort(&mut m, a, 100);
    assert_eq!(m.mem().read_region(a), vec![11, 38, 39, 42]);
    assert!(
        report.iterations >= 2,
        "38/42/39 collide: more than one iteration"
    );
}

#[test]
fn fig5_overlapping_rewrites_are_sequenced() {
    // a * (b * (c * d)): sites n1 and n3 share node n3; the parallel batch
    // may contain only one of them, and the final form is the left comb
    // with leaves in the original order.
    let mut m = Machine::new(CostModel::s810());
    let t = OpTree::right_comb(&mut m, &[1, 2, 3, 4]);
    let sites = rewrite::find_sites(&mut m, &t);
    assert_eq!(sites.len(), 2);

    let report = rewrite::vectorized_rewrite_to_normal_form(&mut m, &t);
    assert!(report.passes >= 2, "overlap forces at least two passes");
    assert!(t.is_normal_form(&m));
    assert_eq!(t.leaves_inorder(&m), vec![1, 2, 3, 4]);
}

#[test]
fn theorem3_duplicate_free_means_one_round() {
    let v: Vec<usize> = (0..100).rev().collect();
    let d = fol1_host(&v, 100);
    assert_eq!(d.num_rounds(), 1);
}

#[test]
fn theorem6_all_equal_means_n_rounds() {
    let v = vec![0usize; 40];
    let d = fol1_host(&v, 1);
    assert_eq!(d.num_rounds(), 40);
    assert_eq!(
        theory::fol1_work(&d.sizes()),
        40 * 41 / 2,
        "O(N^2) worst-case work"
    );
}
