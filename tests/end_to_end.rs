//! Cross-crate integration tests: whole pipelines on one machine, shape
//! checks of the headline results, and conflict-policy invariance across
//! every application at once.

use fol_suite::gc::{collect_vector, Heap};
use fol_suite::graph::dag::DagValues;
use fol_suite::graph::{dag, list};
use fol_suite::hash::open_addressing as oa;
use fol_suite::hash::ProbeStrategy;
use fol_suite::sort::{address_calc, dist_count};
use fol_suite::tree::bst::{self, Bst};
use fol_suite::vm::{ConflictPolicy, CostModel, Machine, Word};

fn lcg_keys(n: usize, limit: Word, mut seed: u64) -> Vec<Word> {
    (0..n)
        .map(|_| {
            seed = seed
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((seed >> 33) as Word).rem_euclid(limit)
        })
        .collect()
}

/// One machine hosts a full symbolic workload: hash a key set, sort it,
/// index it in a BST, thread it through lists, and collect garbage — all
/// vectorized, all on shared memory, cycle-metered end to end.
#[test]
fn one_machine_runs_the_whole_suite() {
    let mut m = Machine::new(CostModel::s810());
    let keys: Vec<Word> = (0..200).map(|i| i * 131 + 7).collect();

    // Hash table.
    let table = m.alloc(521, "table");
    oa::init_table(&mut m, table);
    let _ = oa::vectorized_insert_all(&mut m, table, &keys, ProbeStrategy::KeyDependent);
    for &k in &keys {
        assert!(oa::contains(
            &m.mem().read_region(table),
            k,
            ProbeStrategy::KeyDependent
        ));
    }

    // Sort a copy.
    let a = m.alloc(keys.len(), "A");
    m.mem_mut().write_region(a, &keys);
    let _ = address_calc::vectorized_sort(&mut m, a, 1 << 20);
    let sorted = m.mem().read_region(a);
    let mut expect = keys.clone();
    expect.sort_unstable();
    assert_eq!(sorted, expect);

    // BST over the same keys.
    let mut t = Bst::alloc(&mut m, keys.len());
    let _ = bst::vectorized_insert_all(&mut m, &mut t, &keys);
    assert_eq!(t.inorder(&m), expect);

    // Lists with a batch insertion.
    let mut arena = list::ListArena::alloc(&mut m, 64);
    let head = arena.build(&mut m, &[1, 2, 3]);
    let _ = list::insert_after_many(&mut m, &mut arena, &[0, 0, 2], &[9, 8, 7]);
    let collected = arena.collect(&m, head);
    assert_eq!(collected.len(), 6);

    // GC a small heap.
    let mut from = Heap::alloc(&mut m, 64, "from");
    let live = from.list_of(&mut m, &[1, 2, 3]);
    let _ = from.list_of(&mut m, &[9, 9]);
    let (to, roots, rep) = collect_vector(&mut m, &from, &[live]);
    assert_eq!(rep.copied, 3);
    assert!(Heap::same_shape(&m, &from, live, &to, roots[0]));

    assert!(m.stats().cycles() > 0);
    assert!(m.stats().vector_instructions > 100);
}

/// Every application produces policy-independent results (as sets /
/// structures), exercising the ELS-condition argument across the suite.
#[test]
fn conflict_policy_invariance_across_applications() {
    let policies = [
        ConflictPolicy::FirstWins,
        ConflictPolicy::LastWins,
        ConflictPolicy::Arbitrary(1),
        ConflictPolicy::Arbitrary(0xDEAD),
    ];
    let keys = lcg_keys(300, 1 << 20, 42);
    let mut distinct = keys.clone();
    distinct.sort_unstable();
    distinct.dedup();

    let mut sorted_results = Vec::new();
    let mut hash_results = Vec::new();
    let mut bst_results = Vec::new();
    for policy in &policies {
        // Sorting.
        let mut m = Machine::with_policy(CostModel::s810(), policy.clone());
        let a = m.alloc(keys.len(), "A");
        m.mem_mut().write_region(a, &keys);
        let _ = dist_count::vectorized_sort(&mut m, a, 1 << 20);
        sorted_results.push(m.mem().read_region(a));

        // Hashing (distinct keys only).
        let mut m = Machine::with_policy(CostModel::s810(), policy.clone());
        let table = m.alloc(4099, "table");
        oa::init_table(&mut m, table);
        let _ = oa::vectorized_insert_all(&mut m, table, &distinct, ProbeStrategy::KeyDependent);
        hash_results.push(oa::stored_keys(&m.mem().read_region(table)));

        // BST.
        let mut m = Machine::with_policy(CostModel::s810(), policy.clone());
        let mut t = Bst::alloc(&mut m, keys.len());
        let _ = bst::vectorized_insert_all(&mut m, &mut t, &keys);
        bst_results.push(t.inorder(&m));
    }
    for w in sorted_results.windows(2) {
        assert_eq!(w[0], w[1], "sorting must be policy-independent");
    }
    for w in hash_results.windows(2) {
        assert_eq!(w[0], w[1], "stored key set must be policy-independent");
    }
    for w in bst_results.windows(2) {
        assert_eq!(w[0], w[1], "BST contents must be policy-independent");
    }
}

/// The headline shape: at load factor 0.5 the vectorized hash insertion
/// beats the scalar one, and by more on the larger table.
#[test]
fn headline_acceleration_shape() {
    let run = |size: usize| {
        let n = size / 2;
        let keys = lcg_keys(n * 3, 1 << 30, size as u64)
            .into_iter()
            .collect::<std::collections::BTreeSet<_>>()
            .into_iter()
            .take(n)
            .collect::<Vec<_>>();
        assert_eq!(keys.len(), n);
        let mut ms = Machine::new(CostModel::s810());
        let ts = ms.alloc(size, "t");
        oa::init_table(&mut ms, ts);
        ms.reset_stats();
        let _ = oa::scalar_insert_all(&mut ms, ts, &keys, ProbeStrategy::KeyDependent);
        let scalar = ms.stats().cycles();
        let mut mv = Machine::new(CostModel::s810());
        let tv = mv.alloc(size, "t");
        oa::init_table(&mut mv, tv);
        mv.reset_stats();
        let _ = oa::vectorized_insert_all(&mut mv, tv, &keys, ProbeStrategy::KeyDependent);
        scalar as f64 / mv.stats().cycles() as f64
    };
    let small = run(521);
    let large = run(4099);
    assert!(small > 2.0, "small-table accel {small:.2}");
    assert!(
        large > small,
        "larger table must accelerate more: {small:.2} vs {large:.2}"
    );
}

/// Host-parallel path (rayon) agrees with the machine path on the DAG
/// update workload.
#[test]
fn machine_and_host_parallel_agree() {
    let n_nodes = 32;
    let nodes_usize: Vec<usize> = (0..500).map(|i| (i * 7) % n_nodes).collect();
    let nodes_word: Vec<Word> = nodes_usize.iter().map(|&x| x as Word).collect();
    let deltas: Vec<i64> = (0..500).map(|i| (i % 11) as i64).collect();

    let mut m = Machine::new(CostModel::s810());
    let d = DagValues::alloc(&mut m, n_nodes);
    let _ = dag::vectorized_add_deltas(&mut m, &d, &nodes_word, &deltas);
    let machine_values = m.mem().read_region(d.values);

    let mut host_values = vec![0i64; n_nodes];
    dag::par_add_deltas(&mut host_values, &nodes_usize, &deltas);
    assert_eq!(machine_values, host_values);
}
