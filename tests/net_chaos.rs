//! Wire-fault chaos matrix: every cell crosses one fault kind with one
//! side of the wire (client writes or server writes) under a seeded
//! [`fol_net::WireFaultPlan`], drives real traffic over loopback, and
//! audits the end-to-end contract:
//!
//! * **termination** — every request resolves `Ok` or with a typed
//!   [`fol_net::NetError`] before the client's deadline (plus scheduling
//!   slack); nothing hangs;
//! * **zero acknowledged-but-lost** — every key whose insert the client
//!   saw acknowledged is present in the server's final dump;
//! * **no invented state** — every key in the final dump was actually
//!   submitted (faults corrupt frames, and corrupt frames are refused,
//!   never half-applied);
//! * **exactly-once** — retries and duplicated frames never double-apply
//!   a key.
//!
//! Each cell appends a JSON artifact to `target/net-chaos/<cell>.json`
//! (override with `$NET_CHAOS_ARTIFACT_DIR`) naming its seed, so CI can
//! attach the evidence and a red cell reproduces bit-for-bit.

use fol_net::{
    NetClient, NetClientConfig, NetError, NetServer, NetServerConfig, ShardMap, WireFaultPlan,
};
use fol_serve::{Request, Response, Server, ServerConfig, ShutdownReport, WorkloadClass};
use fol_vm::Word;
use std::path::PathBuf;
use std::time::{Duration, Instant};

const CALL_DEADLINE: Duration = Duration::from_secs(30);
/// Generous allowance for scheduler noise on top of the hard deadline.
const TERMINATION_SLACK: Duration = Duration::from_secs(10);

fn small_server() -> Server {
    Server::start(ServerConfig {
        workers: 2,
        queue_capacity: 256,
        max_batch: 32,
        max_wait: Duration::from_millis(1),
        idle_tick: Duration::from_millis(1),
        chain_buckets: 32,
        chain_capacity: 2048,
        oa_slots: 256,
        bst_capacity: 512,
        ..ServerConfig::default()
    })
}

fn chain_union(report: &ShutdownReport) -> Vec<Word> {
    let mut keys: Vec<Word> = report
        .dumps
        .iter()
        .filter(|d| d.class == WorkloadClass::Chain)
        .flat_map(|d| d.keys.iter().copied())
        .collect();
    keys.sort_unstable();
    keys
}

fn write_cell_report(cell: &str, fields: &[(&str, String)]) {
    let dir = std::env::var_os("NET_CHAOS_ARTIFACT_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("target/net-chaos"));
    if std::fs::create_dir_all(&dir).is_err() {
        return;
    }
    let mut s = format!("{{\n  \"cell\": \"{cell}\"");
    for (k, v) in fields {
        s.push_str(&format!(",\n  \"{k}\": {v}"));
    }
    s.push_str("\n}\n");
    let _ = std::fs::write(dir.join(format!("{cell}.json")), s);
}

/// The fault kinds of the matrix; `mixed` arms every band at once.
fn plans(seed: u64) -> Vec<(&'static str, WireFaultPlan)> {
    let base = WireFaultPlan {
        seed,
        delay: Duration::from_millis(20),
        ..WireFaultPlan::default()
    };
    vec![
        (
            "drop",
            WireFaultPlan {
                drop_per_mille: 180,
                ..base.clone()
            },
        ),
        (
            "delay",
            WireFaultPlan {
                delay_per_mille: 180,
                ..base.clone()
            },
        ),
        (
            "dup",
            WireFaultPlan {
                dup_per_mille: 180,
                ..base.clone()
            },
        ),
        (
            "flip",
            WireFaultPlan {
                flip_per_mille: 120,
                ..base.clone()
            },
        ),
        (
            "tear",
            WireFaultPlan {
                tear_per_mille: 100,
                ..base.clone()
            },
        ),
        (
            "mixed",
            WireFaultPlan {
                drop_per_mille: 60,
                delay_per_mille: 60,
                dup_per_mille: 60,
                flip_per_mille: 40,
                tear_per_mille: 40,
                ..base
            },
        ),
    ]
}

/// Runs one cell: 48 single-key chain inserts in pipelined batches of 16
/// through the faulted wire, then audits the final dump against the acks.
fn run_cell(cell: &str, client_plan: Option<WireFaultPlan>, server_plan: Option<WireFaultPlan>) {
    let seed = client_plan
        .as_ref()
        .or(server_plan.as_ref())
        .map(|p| p.seed)
        .unwrap_or(0);
    let net = NetServer::start(
        small_server(),
        NetServerConfig {
            fault_plan: server_plan,
            ..NetServerConfig::default()
        },
    )
    .expect("bind loopback");
    let mut client = NetClient::new(
        net.local_addr().to_string(),
        NetClientConfig {
            client_id: 0xC0FFEE,
            call_deadline: CALL_DEADLINE,
            io_timeout: Duration::from_millis(200),
            fault_plan: client_plan,
            ..NetClientConfig::default()
        },
    );

    let submitted: Vec<Word> = (0..48).collect();
    let mut acked: Vec<Word> = Vec::new();
    let mut typed_failures: Vec<String> = Vec::new();
    let t0 = Instant::now();
    for chunk in submitted.chunks(16) {
        let batch: Vec<Request> = chunk
            .iter()
            .map(|&k| Request::ChainInsert { keys: vec![k] })
            .collect();
        let batch_start = Instant::now();
        let results = client.call_many(&batch);
        assert!(
            batch_start.elapsed() < CALL_DEADLINE + TERMINATION_SLACK,
            "{cell}: call_many ran past its deadline"
        );
        for (&k, r) in chunk.iter().zip(&results) {
            match r {
                Ok(Response::ChainInserted { .. }) => acked.push(k),
                Ok(other) => panic!("{cell}: key {k} answered with the wrong kind: {other:?}"),
                // A typed failure is an allowed terminal verdict — the
                // request may or may not have been applied, and the audit
                // below only requires that *acknowledged* keys survive.
                Err(e @ (NetError::Deadline { .. } | NetError::NoQuorum { .. })) => {
                    typed_failures.push(format!("{k}:{e}"))
                }
                Err(e) => {
                    assert!(
                        !e.is_retryable(),
                        "{cell}: key {k} surfaced a retryable error {e} — the \
                         retry ladder must absorb those until the deadline"
                    );
                    typed_failures.push(format!("{k}:{e}"));
                }
            }
        }
    }
    let elapsed = t0.elapsed();

    let report = net.shutdown();
    let dumped = chain_union(&report);

    // Exactly-once: duplicated frames and re-submissions never double-apply.
    assert!(
        dumped.windows(2).all(|w| w[0] < w[1]),
        "{cell}: duplicate key in the final dump: {dumped:?}"
    );
    // Zero acknowledged-but-lost.
    let lost: Vec<Word> = acked
        .iter()
        .copied()
        .filter(|k| dumped.binary_search(k).is_err())
        .collect();
    assert!(
        lost.is_empty(),
        "{cell}: acknowledged keys lost: {lost:?} (acked {}, dumped {})",
        acked.len(),
        dumped.len()
    );
    // No invented state.
    let foreign: Vec<Word> = dumped
        .iter()
        .copied()
        .filter(|k| submitted.binary_search(k).is_err())
        .collect();
    assert!(
        foreign.is_empty(),
        "{cell}: keys nobody submitted appeared in the dump: {foreign:?}"
    );
    // The fault rates are chosen recoverable: every request must in fact
    // have been acknowledged, not merely have failed typed.
    assert_eq!(
        acked.len(),
        submitted.len(),
        "{cell}: expected full acknowledgement under recoverable faults; \
         typed failures: {typed_failures:?}"
    );

    write_cell_report(
        cell,
        &[
            ("seed", seed.to_string()),
            ("submitted", submitted.len().to_string()),
            ("acked", acked.len().to_string()),
            ("dumped", dumped.len().to_string()),
            ("typed_failures", typed_failures.len().to_string()),
            ("lost_acks", "0".into()),
            ("elapsed_ms", elapsed.as_millis().to_string()),
            ("passed", "true".into()),
        ],
    );
}

#[test]
fn client_side_fault_matrix_terminates_typed_and_loses_no_acks() {
    for (kind, plan) in plans(0x00C1_1E57) {
        run_cell(&format!("client_{kind}"), Some(plan), None);
    }
}

#[test]
fn server_side_fault_matrix_terminates_typed_and_loses_no_acks() {
    for (kind, plan) in plans(0x5E1_7E12) {
        run_cell(&format!("server_{kind}"), None, Some(plan));
    }
}

/// Regression: the server's exactly-once dedupe table is keyed by
/// `(client_id, map_epoch, seq)`, not `(client_id, seq)`. A client that
/// restarts its sequence space after a map refresh (epoch advance) must
/// not have its fresh submits answered from a *previous epoch's* cached
/// outcomes — while within one epoch, a replayed sequence number still
/// dedupes.
#[test]
fn dedupe_is_scoped_to_the_shard_map_epoch() {
    let net = NetServer::start(small_server(), NetServerConfig::default()).expect("bind loopback");
    let addr = net.local_addr().to_string();
    let map = ShardMap::build(vec![addr.clone()], 8, 64, 1);
    let client = |id: u64| {
        NetClient::new(
            addr.clone(),
            NetClientConfig {
                client_id: id,
                ..NetClientConfig::default()
            },
        )
    };
    client(1).install_map(&map, 0).expect("install epoch 1");

    // Epoch 1: client 7's seq 0 inserts key 100.
    let k1: Word = 100;
    let mut a = client(7);
    a.set_map_epoch(map.epoch);
    let r = a.call_many_tagged(
        &[(
            Request::ChainInsert { keys: vec![k1] },
            map.shard_of_key(k1),
        )],
        map.epoch,
    );
    assert!(matches!(r[0], Ok(Response::ChainInserted { .. })));

    // The cluster advances an epoch; client 7 reconnects with a fresh
    // sequence space. Its new seq 0 carries a different write and MUST be
    // applied, not answered from epoch 1's cache.
    let mut next = map.clone();
    next.epoch += 1;
    client(2).install_map(&next, 0).expect("install epoch 2");
    let k2: Word = 200;
    let mut b = client(7);
    b.set_map_epoch(next.epoch);
    let r = b.call_many_tagged(
        &[(
            Request::ChainInsert { keys: vec![k2] },
            next.shard_of_key(k2),
        )],
        next.epoch,
    );
    assert!(matches!(r[0], Ok(Response::ChainInserted { .. })));

    // Within an epoch the same (client, seq) still dedupes: a third
    // incarnation replaying seq 0 under epoch 2 gets the cached outcome,
    // and its (different) payload is NOT applied.
    let k3: Word = 300;
    let mut c = client(7);
    c.set_map_epoch(next.epoch);
    let r = c.call_many_tagged(
        &[(
            Request::ChainInsert { keys: vec![k3] },
            next.shard_of_key(k3),
        )],
        next.epoch,
    );
    assert!(
        matches!(r[0], Ok(Response::ChainInserted { .. })),
        "a deduped replay replays the cached ack"
    );

    let dumped = chain_union(&net.shutdown());
    assert_eq!(
        dumped,
        vec![k1, k2],
        "epoch-scoped dedupe: k1 and k2 applied once each, k3's replayed \
         sequence answered from cache"
    );
    write_cell_report(
        "dedupe_epoch_scope",
        &[
            ("acked", "3".into()),
            ("applied", "2".into()),
            ("lost_acks", "0".into()),
            ("passed", "true".into()),
        ],
    );
}

#[test]
fn both_sides_faulted_at_once_still_converge() {
    let client = WireFaultPlan {
        seed: 0xB07_51DE,
        drop_per_mille: 60,
        dup_per_mille: 60,
        flip_per_mille: 30,
        tear_per_mille: 30,
        delay_per_mille: 40,
        delay: Duration::from_millis(10),
    };
    let server = WireFaultPlan {
        seed: 0x0DD_51DE,
        ..client.clone()
    };
    run_cell("both_mixed", Some(client), Some(server));
}
