//! Compile-and-run check for the README "Serving traffic" snippet — if the
//! public API drifts, this test fails before the docs lie.

use fol_serve::{Request, Response, Server, ServerConfig};

#[test]
fn readme_serve_snippet() {
    let server = Server::start(ServerConfig::default());

    // Submit small independent requests; the scheduler coalesces them into
    // one large-index-vector transaction (measured ~50x faster than
    // one-txn-per-request at size 1 — `cargo bench --bench serve`).
    let tickets: Vec<_> = (0..256)
        .map(|k| {
            server
                .submit(Request::ChainInsert { keys: vec![k] })
                .unwrap()
        })
        .collect();
    for t in tickets {
        assert!(matches!(t.wait(), Ok(Response::ChainInserted { .. })));
    }

    // Every outcome is per-request and typed: overload and deadline refusals,
    // admission rejections, isolated transaction failures — never a silent drop.
    server.call(Request::OaInsert { keys: vec![7, 9] }).unwrap();
    let found = server.call(Request::OaLookup { keys: vec![7, 8] }).unwrap();
    assert_eq!(
        found,
        Response::OaLookedUp {
            found: vec![true, false]
        }
    );

    let report = server.shutdown(); // drains the queue, dumps the structures
    assert_eq!(report.stats.submitted, report.stats.completed);
}
