//! Replicated serving under real process death: three independent server
//! processes behind a [`fol_net::ReplicaSet`], one SIGKILLed mid-batch
//! while seeded wire faults are active on every link.
//!
//! The invariants, in the order the cells check them:
//!
//! * **voting masks the dead replica** — every request keeps resolving
//!   `Ok` through the kill, acknowledged by the surviving quorum;
//! * **failover is typed eviction** — the killed member is evicted as
//!   [`EvictReason::Unresponsive`] after its strikes run out, and the set
//!   keeps serving with `live == 2`;
//! * **zero acknowledged-but-lost** — after a graceful drain, each
//!   survivor's final dump is byte-equal to the scalar oracle (the sorted
//!   acknowledged keys), so nothing the set acknowledged died with the
//!   killed process;
//! * **digest voting detects real divergence** — a replica whose logical
//!   content differs from the quorum's (here: a key smuggled in behind the
//!   set's back) is evicted as [`EvictReason::DigestMinority`].
//!
//! The kill is a real `SIGKILL` against a child OS process (re-exec of
//! this test binary, dispatched on `FOL_NET_ROLE`), not a dropped thread:
//! the dead replica's sockets reset mid-conversation exactly like a
//! production crash. Cells write JSON artifacts next to the chaos
//! matrix's (`target/net-chaos/`, override `$NET_CHAOS_ARTIFACT_DIR`).

use fol_net::{
    EvictReason, NetClient, NetClientConfig, NetServer, NetServerConfig, ReplicaSet,
    ReplicaSetConfig, WireFaultPlan,
};
use fol_serve::{keys_digest, Request, Response, Server, ServerConfig, WorkloadClass};
use fol_vm::Word;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

// ---------------------------------------------------------------- plumbing

struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> Self {
        use std::sync::atomic::{AtomicU64, Ordering};
        static NEXT: AtomicU64 = AtomicU64::new(0);
        let n = NEXT.fetch_add(1, Ordering::Relaxed);
        let dir = std::env::temp_dir().join(format!(
            "fol-replica-failover-{}-{tag}-{n}",
            std::process::id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        TempDir(dir)
    }

    fn path(&self) -> &Path {
        &self.0
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn small_config() -> ServerConfig {
    ServerConfig {
        workers: 2,
        queue_capacity: 256,
        max_batch: 32,
        max_wait: Duration::from_millis(1),
        idle_tick: Duration::from_millis(1),
        chain_buckets: 32,
        chain_capacity: 2048,
        oa_slots: 256,
        bst_capacity: 512,
        ..ServerConfig::default()
    }
}

fn write_cell_report(cell: &str, fields: &[(&str, String)]) {
    let dir = std::env::var_os("NET_CHAOS_ARTIFACT_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("target/net-chaos"));
    if std::fs::create_dir_all(&dir).is_err() {
        return;
    }
    let mut s = format!("{{\n  \"cell\": \"{cell}\"");
    for (k, v) in fields {
        s.push_str(&format!(",\n  \"{k}\": {v}"));
    }
    s.push_str("\n}\n");
    let _ = std::fs::write(dir.join(format!("{cell}.json")), s);
}

fn wait_until(what: &str, deadline: Duration, mut done: impl FnMut() -> bool) {
    let start = Instant::now();
    while !done() {
        assert!(
            start.elapsed() < deadline,
            "timed out after {deadline:?} waiting for {what}"
        );
        std::thread::sleep(Duration::from_millis(10));
    }
}

// ------------------------------------------------------------- child side

/// Child dispatch: under `FOL_NET_ROLE` this process is one replica; in a
/// normal test run it is a no-op pass.
#[test]
fn child_entrypoint() {
    if std::env::var("FOL_NET_ROLE").as_deref() != Ok("replica") {
        return;
    }
    let dir = PathBuf::from(std::env::var("FOL_NET_DIR").expect("FOL_NET_DIR"));
    let seed: u64 = std::env::var("FOL_NET_SEED")
        .expect("FOL_NET_SEED")
        .parse()
        .expect("numeric seed");
    // Every replica misbehaves on its response writes, each with its own
    // deterministic plan.
    let net = NetServer::start(
        Server::start(small_config()),
        NetServerConfig {
            fault_plan: Some(WireFaultPlan {
                seed,
                drop_per_mille: 80,
                dup_per_mille: 60,
                flip_per_mille: 40,
                ..WireFaultPlan::default()
            }),
            ..NetServerConfig::default()
        },
    )
    .expect("replica bind");
    // Publish the picked port atomically (write + rename) so the parent
    // never reads a half-written file.
    let tmp = dir.join("addr.tmp");
    std::fs::write(&tmp, net.local_addr().to_string()).expect("write addr");
    std::fs::rename(&tmp, dir.join("addr.txt")).expect("publish addr");

    // Serve until a peer asks for shutdown over the wire, then drain and
    // publish the final chain dump — the survivor evidence the parent
    // audits against the oracle.
    let t0 = Instant::now();
    while !net.shutdown_requested() {
        std::thread::sleep(Duration::from_millis(5));
    }
    eprintln!("child: shutdown_requested at {:?}", t0.elapsed());
    let report = net.shutdown();
    eprintln!("child: drained at {:?}", t0.elapsed());
    let mut keys: Vec<Word> = report
        .dumps
        .iter()
        .filter(|d| d.class == WorkloadClass::Chain)
        .flat_map(|d| d.keys.iter().copied())
        .collect();
    keys.sort_unstable();
    let body = keys
        .iter()
        .map(|k| k.to_string())
        .collect::<Vec<_>>()
        .join("\n");
    let tmp = dir.join("dump.tmp");
    std::fs::write(&tmp, body).expect("write dump");
    std::fs::rename(&tmp, dir.join("dump.txt")).expect("publish dump");
}

fn spawn_replica(dir: &Path, seed: u64) -> Child {
    let exe = std::env::current_exe().expect("test binary path");
    let mut cmd = Command::new(exe);
    let log = std::fs::File::create(dir.join("child.log")).expect("child log");
    cmd.args([
        "child_entrypoint",
        "--exact",
        "--test-threads",
        "1",
        "--nocapture",
    ])
    .env("FOL_NET_ROLE", "replica")
    .env("FOL_NET_DIR", dir)
    .env("FOL_NET_SEED", seed.to_string())
    .stdout(Stdio::null())
    .stderr(log);
    cmd.spawn().expect("spawn replica child")
}

fn read_addr(dir: &Path) -> Option<String> {
    std::fs::read_to_string(dir.join("addr.txt"))
        .ok()
        .map(|s| s.trim().to_string())
}

fn read_dump(dir: &Path) -> Vec<Word> {
    let text = std::fs::read_to_string(dir.join("dump.txt")).expect("survivor dump");
    text.lines().filter_map(|l| l.parse().ok()).collect()
}

// ------------------------------------------------------------------ cells

/// The tentpole cell: 3 replicas, seeded faults on every link, one replica
/// SIGKILLed while a batch is in flight. Quorum acking rides through; the
/// dead member is evicted typed; the survivors drain to dumps byte-equal
/// to the sorted acknowledged keys.
#[test]
fn sigkill_one_replica_mid_batch_masks_and_loses_nothing() {
    let dirs = [TempDir::new("r0"), TempDir::new("r1"), TempDir::new("r2")];
    let mut children: Vec<Child> = dirs
        .iter()
        .enumerate()
        .map(|(i, d)| spawn_replica(d.path(), 0xFA11 + i as u64))
        .collect();
    wait_until(
        "all replicas to publish ports",
        Duration::from_secs(30),
        || dirs.iter().all(|d| read_addr(d.path()).is_some()),
    );
    let addrs: Vec<String> = dirs.iter().map(|d| read_addr(d.path()).unwrap()).collect();

    let mut set = ReplicaSet::connect(
        &addrs,
        ReplicaSetConfig {
            client: NetClientConfig {
                client_id: 31,
                io_timeout: Duration::from_millis(200),
                connect_timeout: Duration::from_millis(300),
                call_deadline: Duration::from_secs(2),
                // The client side of every link misbehaves too.
                fault_plan: Some(WireFaultPlan {
                    seed: 0xC0DE,
                    drop_per_mille: 80,
                    dup_per_mille: 60,
                    ..WireFaultPlan::default()
                }),
                ..NetClientConfig::default()
            },
            quorum: 0, // majority of 3 = 2
            max_strikes: 2,
            ..ReplicaSetConfig::default()
        },
    );
    assert_eq!(set.quorum(), 2);

    let mut acked: Vec<Word> = Vec::new();
    let batches: Vec<Vec<Word>> = (0..6).map(|b| (b * 8..b * 8 + 8).collect()).collect();
    let victim = 1usize;
    for (bi, keys) in batches.iter().enumerate() {
        let batch: Vec<Request> = keys
            .iter()
            .map(|&k| Request::ChainInsert { keys: vec![k] })
            .collect();
        // Kill replica 1 *while batch 2 is in flight*: the killer thread
        // fires mid-apply, so its sockets reset under the set's feet.
        let killer = (bi == 2).then(|| {
            let pid = children[victim].id();
            std::thread::spawn(move || {
                std::thread::sleep(Duration::from_millis(30));
                // SIGKILL via the child handle is owned by the main thread;
                // use the raw pid so the kill lands mid-batch.
                let _ = Command::new("kill").args(["-9", &pid.to_string()]).status();
            })
        });
        let results = set.apply(&batch).expect("quorum holds throughout");
        if let Some(k) = killer {
            k.join().unwrap();
        }
        for (&key, r) in keys.iter().zip(&results) {
            match r {
                Ok(Response::ChainInserted { .. }) => acked.push(key),
                other => panic!("batch {bi} key {key}: quorum ack expected, got {other:?}"),
            }
        }
    }
    children[victim].wait().expect("reap the killed replica");

    // Typed eviction: the victim struck out as Unresponsive; the set still
    // clears quorum with the two survivors.
    assert_eq!(set.live(), 2, "status: {:?}", set.status());
    let status = set.status();
    assert!(
        matches!(
            status[victim].evicted,
            Some(EvictReason::Unresponsive { .. })
        ),
        "victim evicted typed: {:?}",
        status[victim].evicted
    );

    // The survivors vote one digest, and it is the oracle's.
    let mut oracle = acked.clone();
    oracle.sort_unstable();
    let (digest, count) = set
        .vote_digest(WorkloadClass::Chain)
        .expect("digest quorum");
    assert_eq!(
        (digest, count),
        (keys_digest(&oracle), oracle.len() as u64),
        "voted digest must equal the scalar oracle's"
    );
    assert_eq!(set.live(), 2, "no survivor landed in a digest minority");

    // Graceful drain: each survivor publishes its final dump, byte-equal
    // to the oracle — zero acknowledged-but-lost, nothing invented.
    for (i, dir) in dirs.iter().enumerate() {
        if i == victim {
            continue;
        }
        let mut quitter = NetClient::new(
            addrs[i].clone(),
            NetClientConfig {
                client_id: 90 + i as u64,
                call_deadline: Duration::from_secs(2),
                ..NetClientConfig::default()
            },
        );
        // The ShutdownAck crosses the survivor's *faulted* response writer
        // and may be dropped; the child exiting is the authoritative ack.
        let acked = quitter.request_shutdown().is_ok();
        wait_until(
            "the survivor to drain and exit",
            Duration::from_secs(30),
            || children[i].try_wait().expect("poll survivor").is_some(),
        );
        let status = children[i].wait().expect("reap survivor");
        assert!(
            status.success(),
            "survivor {i} must exit cleanly (wire-acked: {acked}): {status:?}\nchild log:\n{}",
            std::fs::read_to_string(dir.path().join("child.log")).unwrap_or_default()
        );
        assert_eq!(
            read_dump(dir.path()),
            oracle,
            "survivor {i}'s dump must be byte-equal to the acked oracle"
        );
    }

    write_cell_report(
        "replica_sigkill_mid_batch",
        &[
            ("replicas", "3".into()),
            ("killed", "1".into()),
            ("acked", acked.len().to_string()),
            ("lost_acks", "0".into()),
            ("survivor_digest", digest.to_string()),
            ("evicted_as", "\"unresponsive\"".into()),
            ("passed", "true".into()),
        ],
    );
}

/// Digest-minority eviction: acknowledged traffic can never diverge a
/// replica (the ladder's last rung always completes), so a content digest
/// in the minority means the replica's state was corrupted or tampered
/// with out-of-band. Here a key is smuggled into one replica behind the
/// set's back; the next vote evicts it, typed, with the evidence attached.
#[test]
fn digest_minority_is_evicted_with_the_divergent_digest() {
    // In-process replicas: divergence detection needs no real crash.
    let nets: Vec<NetServer> = (0..3)
        .map(|_| {
            NetServer::start(Server::start(small_config()), NetServerConfig::default()).unwrap()
        })
        .collect();
    let addrs: Vec<String> = nets.iter().map(|n| n.local_addr().to_string()).collect();

    let mut set = ReplicaSet::connect(
        &addrs,
        ReplicaSetConfig {
            client: NetClientConfig {
                client_id: 41,
                ..NetClientConfig::default()
            },
            ..ReplicaSetConfig::default()
        },
    );
    let keys: Vec<Word> = (0..16).collect();
    let batch: Vec<Request> = keys
        .iter()
        .map(|&k| Request::ChainInsert { keys: vec![k] })
        .collect();
    let results = set.apply(&batch).expect("quorum");
    assert!(results.iter().all(|r| r.is_ok()));
    let (clean_digest, clean_count) = set.vote_digest(WorkloadClass::Chain).unwrap();
    assert_eq!((clean_digest, clean_count), (keys_digest(&keys), 16));
    assert_eq!(set.live(), 3, "agreement evicts nobody");

    // Smuggle a key into replica 2 behind the set's back.
    let mut rogue = NetClient::new(
        addrs[2].clone(),
        NetClientConfig {
            client_id: 666,
            ..NetClientConfig::default()
        },
    );
    rogue
        .call(Request::ChainInsert { keys: vec![999] })
        .expect("the smuggled insert lands");

    let (digest, count) = set
        .vote_digest(WorkloadClass::Chain)
        .expect("majority holds");
    assert_eq!(
        (digest, count),
        (clean_digest, 16),
        "the quorum's digest wins"
    );
    assert_eq!(set.live(), 2);
    let status = set.status();
    match &status[2].evicted {
        Some(EvictReason::DigestMinority { got, majority }) => {
            assert_eq!(*majority, (clean_digest, 16));
            let mut diverged = keys.clone();
            diverged.push(999);
            diverged.sort_unstable();
            assert_eq!(
                *got,
                (keys_digest(&diverged), 17),
                "the eviction carries the divergent digest as evidence"
            );
        }
        other => panic!("expected a digest-minority eviction, got {other:?}"),
    }

    // The thinned set keeps serving on quorum.
    let more: Vec<Request> = (100..108)
        .map(|k| Request::ChainInsert { keys: vec![k] })
        .collect();
    assert!(set.apply(&more).expect("quorum").iter().all(|r| r.is_ok()));

    write_cell_report(
        "replica_digest_minority",
        &[
            ("replicas", "3".into()),
            ("evicted", "1".into()),
            ("evicted_as", "\"digest-minority\"".into()),
            ("passed", "true".into()),
        ],
    );
    for net in nets {
        drop(net.shutdown());
    }
}
