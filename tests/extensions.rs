//! Integration tests for the extension systems: maze router, N-queens,
//! equi-join, radix sort, rebalancing, rehashing and connected components —
//! cross-checked against independent oracles and across ELS policies.
//!
//! Deterministic seeded sweeps (SplitMix64) stand in for a property-testing
//! framework: each property is checked over many generated cases, and a
//! failure names the seed so the case replays exactly.

use fol_suite::graph::components::{union_find_components, vectorized_components, Components};
use fol_suite::hash::chaining::{self, ChainTable};
use fol_suite::hash::join::{scalar_hash_join, vectorized_hash_join};
use fol_suite::maze::{vectorized_route, Maze};
use fol_suite::queens::{scalar_solve, vector_solve, KNOWN_COUNTS};
use fol_suite::sort::radix;
use fol_suite::tree::bst::{self, Bst};
use fol_suite::tree::rebalance::{min_height, rebalance};
use fol_suite::vm::{ConflictPolicy, CostModel, Machine, Word};

const CASES: u64 = 32;

/// SplitMix64 — deterministic case generator for the seeded sweeps.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Self {
        Self(seed)
    }

    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound
    }

    fn range(&mut self, lo: i64, hi: i64) -> i64 {
        lo + self.below((hi - lo) as u64) as i64
    }

    fn vec(&mut self, max_len: u64, lo: i64, hi: i64) -> Vec<i64> {
        let n = self.below(max_len) as usize;
        (0..n).map(|_| self.range(lo, hi)).collect()
    }
}

fn policy_for(rng: &mut Rng) -> ConflictPolicy {
    match rng.below(3) {
        0 => ConflictPolicy::FirstWins,
        1 => ConflictPolicy::LastWins,
        _ => ConflictPolicy::Arbitrary(rng.next_u64()),
    }
}

/// Maze router equals host BFS on random grids.
#[test]
fn maze_matches_bfs() {
    for seed in 0..CASES {
        let mut rng = Rng::new(seed);
        let (w, h) = (8usize, 6usize);
        let density = rng.below(45) as u8;
        let bitmap: Vec<bool> = (0..w * h)
            .map(|i| i != 0 && i != w * h - 1 && (rng.below(100) as u8) < density)
            .collect();
        let policy = policy_for(&mut rng);
        let mut m = Machine::with_policy(CostModel::unit(), policy);
        let maze = Maze::new(&mut m, w, h, &bitmap);
        let (a, b) = (maze.at(0, 0), maze.at(w - 1, h - 1));
        let expect = maze.shortest_distance_host(&m, a, b);
        let got = vectorized_route(&mut m, &maze, a, b).distance;
        assert_eq!(got, expect, "seed {seed}");
    }
}

/// Join equals the nested-loop oracle on random relations.
#[test]
fn join_matches_nested_loop() {
    for seed in 0..CASES {
        let mut rng = Rng::new(seed);
        let build = rng.vec(60, 0, 40);
        let probe = rng.vec(60, 0, 40);
        let policy = policy_for(&mut rng);
        let mut expect = Vec::new();
        for (pi, &pk) in probe.iter().enumerate() {
            for (bi, &bk) in build.iter().enumerate() {
                if pk == bk {
                    expect.push((pi, bi));
                }
            }
        }
        expect.sort_unstable();
        let mut m = Machine::with_policy(CostModel::unit(), policy);
        let mut got = vectorized_hash_join(&mut m, &build, &probe, 7);
        got.sort_unstable();
        assert_eq!(got, expect, "seed {seed}");
    }
}

/// Radix sort equals std sort for random data and digit widths.
#[test]
fn radix_matches_std() {
    for seed in 0..CASES {
        let mut rng = Rng::new(seed);
        let data = rng.vec(150, 0, 1024);
        let radix_bits = 1 + rng.below(8) as u32;
        let policy = policy_for(&mut rng);
        let mut m = Machine::with_policy(CostModel::unit(), policy);
        let a = m.alloc(data.len(), "A");
        m.mem_mut().write_region(a, &data);
        let _ = radix::vectorized_sort(&mut m, a, 10, radix_bits);
        let mut expect = data.clone();
        expect.sort_unstable();
        assert_eq!(m.mem().read_region(a), expect, "seed {seed}");
    }
}

/// Rebalancing preserves contents and reaches minimum height.
#[test]
fn rebalance_invariants() {
    for seed in 0..CASES {
        let mut rng = Rng::new(seed);
        let n = 1 + rng.below(79) as usize;
        let keys: Vec<i64> = (0..n).map(|_| rng.range(0, 500)).collect();
        let policy = policy_for(&mut rng);
        let mut m = Machine::with_policy(CostModel::unit(), policy);
        let mut t = Bst::alloc(&mut m, keys.len());
        let _ = bst::vectorized_insert_all(&mut m, &mut t, &keys);
        let b = rebalance(&mut m, &t, 500);
        assert_eq!(b.inorder(&m), t.inorder(&m), "seed {seed}");
        assert_eq!(b.height(&m), min_height(keys.len()), "seed {seed}");
    }
}

/// Rehashing preserves the key multiset at any growth factor.
#[test]
fn rehash_preserves_keys() {
    for seed in 0..CASES {
        let mut rng = Rng::new(seed);
        let keys = rng.vec(80, 0, 1000);
        let new_buckets = 1 + rng.below(39) as usize;
        let policy = policy_for(&mut rng);
        let mut m = Machine::with_policy(CostModel::unit(), policy);
        let mut t = ChainTable::alloc(&mut m, 5, keys.len().max(1));
        let _ = chaining::vectorized_insert_all(&mut m, &mut t, &keys);
        let out = chaining::rehash(&mut m, &t, new_buckets);
        assert_eq!(
            chaining::all_keys(&m, &out),
            chaining::all_keys(&m, &t),
            "seed {seed}"
        );
    }
}

/// Connected components equal union-find on random graphs.
#[test]
fn components_match_union_find() {
    for seed in 0..CASES {
        let mut rng = Rng::new(seed);
        let n_edges = rng.below(40) as usize;
        let edges: Vec<(i64, i64)> = (0..n_edges)
            .map(|_| (rng.range(0, 20), rng.range(0, 20)))
            .collect();
        let policy = policy_for(&mut rng);
        let n = 20;
        let expect = union_find_components(n, &edges);
        let mut m = Machine::with_policy(CostModel::unit(), policy);
        let g = Components::new(&mut m, n, &edges);
        let _ = vectorized_components(&mut m, &g);
        assert_eq!(g.labelling(&m), expect, "seed {seed}");
    }
}

#[test]
fn queens_counts_and_scalar_agreement() {
    for (n, &expect) in KNOWN_COUNTS.iter().enumerate().take(9) {
        let mut mv = Machine::new(CostModel::unit());
        let v = vector_solve(&mut mv, n, false);
        assert_eq!(v.count, expect, "n={n}");
        let mut ms = Machine::new(CostModel::unit());
        assert_eq!(scalar_solve(&mut ms, n).count, v.count, "n={n}");
    }
}

#[test]
fn join_modelled_speedup_holds_cross_crate() {
    let build: Vec<Word> = (0..600).map(|i| i * 3 % 1000).collect();
    let probe: Vec<Word> = (0..600).map(|i| i * 7 % 1000).collect();
    let mut ms = Machine::new(CostModel::s810());
    ms.reset_stats();
    let a = scalar_hash_join(&mut ms, &build, &probe, 127);
    let sc = ms.stats().cycles();
    let mut mv = Machine::new(CostModel::s810());
    mv.reset_stats();
    let b = vectorized_hash_join(&mut mv, &build, &probe, 127);
    let vc = mv.stats().cycles();
    assert_eq!(a.len(), b.len());
    assert!(vc * 2 < sc, "join: scalar {sc} vs vector {vc}");
}
