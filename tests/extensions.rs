//! Integration tests for the extension systems: maze router, N-queens,
//! equi-join, radix sort, rebalancing, rehashing and connected components —
//! cross-checked against independent oracles and across ELS policies.

use fol_suite::graph::components::{
    union_find_components, vectorized_components, Components,
};
use fol_suite::hash::chaining::{self, ChainTable};
use fol_suite::hash::join::{scalar_hash_join, vectorized_hash_join};
use fol_suite::maze::{vectorized_route, Maze};
use fol_suite::queens::{scalar_solve, vector_solve, KNOWN_COUNTS};
use fol_suite::sort::radix;
use fol_suite::tree::bst::{self, Bst};
use fol_suite::tree::rebalance::{min_height, rebalance};
use fol_suite::vm::{ConflictPolicy, CostModel, Machine, Word};
use proptest::prelude::*;

fn policies() -> impl Strategy<Value = ConflictPolicy> {
    prop_oneof![
        Just(ConflictPolicy::FirstWins),
        Just(ConflictPolicy::LastWins),
        any::<u64>().prop_map(ConflictPolicy::Arbitrary),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Maze router equals host BFS on random grids.
    #[test]
    fn maze_matches_bfs(
        walls in prop::collection::vec(0u8..100, 48),
        density in 0u8..45,
        policy in policies(),
    ) {
        let (w, h) = (8usize, 6usize);
        let bitmap: Vec<bool> = walls
            .iter()
            .enumerate()
            .map(|(i, &r)| i != 0 && i != w * h - 1 && r < density)
            .collect();
        let mut m = Machine::with_policy(CostModel::unit(), policy);
        let maze = Maze::new(&mut m, w, h, &bitmap);
        let (a, b) = (maze.at(0, 0), maze.at(w - 1, h - 1));
        let expect = maze.shortest_distance_host(&m, a, b);
        let got = vectorized_route(&mut m, &maze, a, b).distance;
        prop_assert_eq!(got, expect);
    }

    /// Join equals the nested-loop oracle on random relations.
    #[test]
    fn join_matches_nested_loop(
        build in prop::collection::vec(0i64..40, 0..60),
        probe in prop::collection::vec(0i64..40, 0..60),
        policy in policies(),
    ) {
        let mut expect = Vec::new();
        for (pi, &pk) in probe.iter().enumerate() {
            for (bi, &bk) in build.iter().enumerate() {
                if pk == bk {
                    expect.push((pi, bi));
                }
            }
        }
        expect.sort_unstable();
        let mut m = Machine::with_policy(CostModel::unit(), policy);
        let mut got = vectorized_hash_join(&mut m, &build, &probe, 7);
        got.sort_unstable();
        prop_assert_eq!(got, expect);
    }

    /// Radix sort equals std sort for random data and digit widths.
    #[test]
    fn radix_matches_std(
        data in prop::collection::vec(0i64..1024, 0..150),
        radix_bits in 1u32..9,
        policy in policies(),
    ) {
        let mut m = Machine::with_policy(CostModel::unit(), policy);
        let a = m.alloc(data.len(), "A");
        m.mem_mut().write_region(a, &data);
        let _ = radix::vectorized_sort(&mut m, a, 10, radix_bits);
        let mut expect = data.clone();
        expect.sort_unstable();
        prop_assert_eq!(m.mem().read_region(a), expect);
    }

    /// Rebalancing preserves contents and reaches minimum height.
    #[test]
    fn rebalance_invariants(
        keys in prop::collection::vec(0i64..500, 1..80),
        policy in policies(),
    ) {
        let mut m = Machine::with_policy(CostModel::unit(), policy);
        let mut t = Bst::alloc(&mut m, keys.len());
        let _ = bst::vectorized_insert_all(&mut m, &mut t, &keys);
        let b = rebalance(&mut m, &t, 500);
        prop_assert_eq!(b.inorder(&m), t.inorder(&m));
        prop_assert_eq!(b.height(&m), min_height(keys.len()));
    }

    /// Rehashing preserves the key multiset at any growth factor.
    #[test]
    fn rehash_preserves_keys(
        keys in prop::collection::vec(0i64..1000, 0..80),
        new_buckets in 1usize..40,
        policy in policies(),
    ) {
        let mut m = Machine::with_policy(CostModel::unit(), policy);
        let mut t = ChainTable::alloc(&mut m, 5, keys.len().max(1));
        let _ = chaining::vectorized_insert_all(&mut m, &mut t, &keys);
        let out = chaining::rehash(&mut m, &t, new_buckets);
        prop_assert_eq!(chaining::all_keys(&m, &out), chaining::all_keys(&m, &t));
    }

    /// Connected components equal union-find on random graphs.
    #[test]
    fn components_match_union_find(
        edges in prop::collection::vec((0i64..20, 0i64..20), 0..40),
        policy in policies(),
    ) {
        let n = 20;
        let expect = union_find_components(n, &edges);
        let mut m = Machine::with_policy(CostModel::unit(), policy);
        let g = Components::new(&mut m, n, &edges);
        let _ = vectorized_components(&mut m, &g);
        prop_assert_eq!(g.labelling(&m), expect);
    }
}

#[test]
fn queens_counts_and_scalar_agreement() {
    for (n, &expect) in KNOWN_COUNTS.iter().enumerate().take(9) {
        let mut mv = Machine::new(CostModel::unit());
        let v = vector_solve(&mut mv, n, false);
        assert_eq!(v.count, expect, "n={n}");
        let mut ms = Machine::new(CostModel::unit());
        assert_eq!(scalar_solve(&mut ms, n).count, v.count, "n={n}");
    }
}

#[test]
fn join_modelled_speedup_holds_cross_crate() {
    let build: Vec<Word> = (0..600).map(|i| i * 3 % 1000).collect();
    let probe: Vec<Word> = (0..600).map(|i| i * 7 % 1000).collect();
    let mut ms = Machine::new(CostModel::s810());
    ms.reset_stats();
    let a = scalar_hash_join(&mut ms, &build, &probe, 127);
    let sc = ms.stats().cycles();
    let mut mv = Machine::new(CostModel::s810());
    mv.reset_stats();
    let b = vectorized_hash_join(&mut mv, &build, &probe, 127);
    let vc = mv.stats().cycles();
    assert_eq!(a.len(), b.len());
    assert!(vc * 2 < sc, "join: scalar {sc} vs vector {vc}");
}
