//! Compile-and-run check for the README "Real hardware lanes" snippet —
//! if the backend-selection API drifts, this test fails before the docs
//! lie.

use fol_core::recover::RetryPolicy;
use fol_hash::open_addressing::{init_table, txn_insert_all};
use fol_hash::ProbeStrategy;
use fol_serve::{Server, ServerConfig};
use fol_simd::{best_available, engine_for, BackendKind};
use fol_vm::{CostModel, Machine, Word};

#[test]
fn readme_backend_snippet() {
    // Pick the fastest backend this CPU can run. Selection degrades typed,
    // never silently: asking for Avx2 on a machine without it hands back the
    // scalar engine, and engine_name() reports what actually ran.
    let mut m = Machine::with_engine(CostModel::unit(), engine_for(best_available()));
    assert!(matches!(m.engine_name(), "avx2" | "scalar"));

    // The whole stack is backend-agnostic: same transactional insert, same
    // journal, same checksums — and byte-identical memory at the end.
    let keys: Vec<Word> = (1..=24).collect();
    let table = m.alloc(67, "table");
    init_table(&mut m, table);
    txn_insert_all(
        &mut m,
        table,
        &keys,
        ProbeStrategy::KeyDependent,
        &RetryPolicy::default(),
    )
    .unwrap();

    let mut sim = Machine::new(CostModel::unit()); // the simulator backend
    let table = sim.alloc(67, "table");
    init_table(&mut sim, table);
    txn_insert_all(
        &mut sim,
        table,
        &keys,
        ProbeStrategy::KeyDependent,
        &RetryPolicy::default(),
    )
    .unwrap();
    assert_eq!(m.content_digest(), sim.content_digest());

    // The serving pool takes the same selector through its config.
    let server = Server::start(ServerConfig {
        backend: BackendKind::Scalar, // or best_available()
        ..ServerConfig::default()
    });
    server.shutdown();
}
