//! Compile-and-run check for the README "Silent corruption" snippet —
//! if the public API drifts, this test fails before the docs lie.

use fol_core::recover::{txn_apply_rounds, RetryPolicy};
use fol_vm::{CostModel, FaultPlan, Machine};

#[test]
fn readme_silent_corruption_snippet() {
    let mut m = Machine::new(CostModel::unit());
    // Resident memory decays: seeded bit-flips strike checksum-tracked regions.
    m.set_fault_plan(Some(FaultPlan::bit_rot(7, u16::MAX)));
    let work = m.alloc(97, "work");
    m.track_region(work); // opt in: every store now maintains the digest

    let targets: Vec<usize> = (0..256).map(|i| i % 97).collect();
    let mut expect = vec![0u32; 97];
    for &t in &targets {
        expect[t] += 1;
    }

    let mut counts = vec![0u32; 97];
    let (_, report) = txn_apply_rounds(
        &mut m,
        work,
        &mut counts,
        &targets,
        &RetryPolicy::default(),
        |cell, _i| *cell += 1,
    )
    .expect("detected rot is repaired and the ladder still lands");

    assert_eq!(counts, expect); // oracle-equal despite the rot...
    assert!(report.corruption_detected > 0); // ...and detected, not lucky
    assert!(m.scrub().is_ok()); // machine left checksum-clean
}
