//! Sharded-cluster chaos: crash-safe rebalance under real process death.
//!
//! Every multi-process cell here follows the same shape: durable shard
//! nodes (real OS processes, re-execs of this binary dispatched on
//! `FOL_NET_ROLE`), a coordinator driving the freeze → drain → extract →
//! verify → install → advance handoff machine, a `SIGKILL` landing at the
//! worst documented moment, and a recovery that is *running the same
//! rebalance again*. The invariants, in the order the cells check them:
//!
//! * **zero acknowledged-but-lost** — after the dust settles, the union of
//!   the survivors' dumps (each filtered to the shards the final map says
//!   it owns — insert-only structures legitimately keep dead moved keys on
//!   the donor) is byte-equal to the sorted acknowledged oracle;
//! * **idempotent recovery** — a source killed between extract and epoch
//!   advance restarts from its durable dir, mapless; the re-run's preamble
//!   re-hands it the old map and redoes the move. A target killed after
//!   install restarts with the shard already durable and the re-run's
//!   install digest-skips;
//! * **membership churn survives** — a planned evict (drain the leaver's
//!   shards out, advance, then kill the leaver) loses nothing;
//! * **epoch split-brain is typed** — a client stamped with a stale epoch
//!   is refused `WrongEpoch`, refreshes, and lands its write exactly once.
//!
//! Cells write JSON artifacts to `target/shard-chaos/` (override
//! `$SHARD_CHAOS_ARTIFACT_DIR`); the CI gate greps them for `lost_acks`.

use fol_net::{
    rebalance, ClusterClient, NetClient, NetClientConfig, NetServer, NetServerConfig, ShardMap,
};
use fol_serve::{
    DurabilityConfig, FsyncPolicy, Request, Response, ServeError, Server, ServerConfig,
    WorkloadClass,
};
use fol_vm::Word;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

// ---------------------------------------------------------------- plumbing

const SHARDS: u32 = 32;
const VNODES: u32 = 64;

struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> Self {
        use std::sync::atomic::{AtomicU64, Ordering};
        static NEXT: AtomicU64 = AtomicU64::new(0);
        let n = NEXT.fetch_add(1, Ordering::Relaxed);
        let dir =
            std::env::temp_dir().join(format!("fol-shard-chaos-{}-{tag}-{n}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        TempDir(dir)
    }

    fn path(&self) -> &Path {
        &self.0
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn small_config(durable_dir: Option<&Path>) -> ServerConfig {
    ServerConfig {
        workers: 2,
        queue_capacity: 256,
        max_batch: 32,
        max_wait: Duration::from_millis(1),
        idle_tick: Duration::from_millis(1),
        chain_buckets: 32,
        chain_capacity: 4096,
        oa_slots: 256,
        bst_capacity: 512,
        durability: durable_dir
            .map(|d| DurabilityConfig::new(d.join("dur")).fsync(FsyncPolicy::Off)),
        ..ServerConfig::default()
    }
}

fn write_cell_report(cell: &str, fields: &[(&str, String)]) {
    let dir = std::env::var_os("SHARD_CHAOS_ARTIFACT_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("target/shard-chaos"));
    if std::fs::create_dir_all(&dir).is_err() {
        return;
    }
    let mut s = format!("{{\n  \"cell\": \"{cell}\"");
    for (k, v) in fields {
        s.push_str(&format!(",\n  \"{k}\": {v}"));
    }
    s.push_str("\n}\n");
    let _ = std::fs::write(dir.join(format!("{cell}.json")), s);
}

fn wait_until(what: &str, deadline: Duration, mut done: impl FnMut() -> bool) {
    let start = Instant::now();
    while !done() {
        assert!(
            start.elapsed() < deadline,
            "timed out after {deadline:?} waiting for {what}"
        );
        std::thread::sleep(Duration::from_millis(10));
    }
}

/// Reserves a concrete loopback address the OS just proved free, so a
/// killed node can restart on the *same* address (the shard map hashes
/// addresses onto the ring — a restarted node must keep its identity).
fn reserve_addr() -> String {
    let l = std::net::TcpListener::bind("127.0.0.1:0").expect("reserve port");
    let addr = l.local_addr().expect("reserved addr").to_string();
    drop(l);
    addr
}

// ------------------------------------------------------------- child side

/// Child dispatch: under `FOL_NET_ROLE` this process is one durable shard
/// node; in a normal test run it is a no-op pass.
#[test]
fn child_entrypoint() {
    if std::env::var("FOL_NET_ROLE").as_deref() != Ok("shard_node") {
        return;
    }
    let dir = PathBuf::from(std::env::var("FOL_NET_DIR").expect("FOL_NET_DIR"));
    let bind = std::env::var("FOL_NET_BIND").expect("FOL_NET_BIND");
    // A freshly killed predecessor's connections may hold the port for a
    // beat; retry the bind rather than racing the kernel. Recovery is a
    // read — re-running it per attempt is safe.
    let mut net = None;
    for _ in 0..100 {
        let (server, _restart) =
            Server::try_start(small_config(Some(&dir))).expect("durable recovery must succeed");
        match NetServer::start(
            server,
            NetServerConfig {
                bind: bind.clone(),
                ..NetServerConfig::default()
            },
        ) {
            Ok(n) => {
                net = Some(n);
                break;
            }
            Err(_) => std::thread::sleep(Duration::from_millis(100)),
        }
    }
    let net = net.unwrap_or_else(|| panic!("could not bind {bind} after retries"));
    let tmp = dir.join("addr.tmp");
    std::fs::write(&tmp, net.local_addr().to_string()).expect("write addr");
    std::fs::rename(&tmp, dir.join("addr.txt")).expect("publish addr");

    while !net.shutdown_requested() {
        std::thread::sleep(Duration::from_millis(5));
    }
    let report = net.shutdown();
    let mut keys: Vec<Word> = report
        .dumps
        .iter()
        .filter(|d| d.class == WorkloadClass::Chain)
        .flat_map(|d| d.keys.iter().copied())
        .collect();
    keys.sort_unstable();
    let body = keys
        .iter()
        .map(|k| k.to_string())
        .collect::<Vec<_>>()
        .join("\n");
    let tmp = dir.join("dump.tmp");
    std::fs::write(&tmp, body).expect("write dump");
    std::fs::rename(&tmp, dir.join("dump.txt")).expect("publish dump");
}

fn spawn_shard_node(dir: &Path, bind: &str) -> Child {
    let _ = std::fs::remove_file(dir.join("addr.txt"));
    let exe = std::env::current_exe().expect("test binary path");
    let mut cmd = Command::new(exe);
    let log = std::fs::File::options()
        .create(true)
        .append(true)
        .open(dir.join("child.log"))
        .expect("child log");
    cmd.args([
        "child_entrypoint",
        "--exact",
        "--test-threads",
        "1",
        "--nocapture",
    ])
    .env("FOL_NET_ROLE", "shard_node")
    .env("FOL_NET_DIR", dir)
    .env("FOL_NET_BIND", bind)
    .stdout(Stdio::null())
    .stderr(log);
    cmd.spawn().expect("spawn shard node")
}

fn node_ready(dir: &Path) -> bool {
    dir.join("addr.txt").exists()
}

fn read_dump(dir: &Path) -> Vec<Word> {
    let text = std::fs::read_to_string(dir.join("dump.txt")).expect("node dump");
    text.lines().filter_map(|l| l.parse().ok()).collect()
}

// ------------------------------------------------------------ parent side

fn coord_cfg(client_id: u64) -> NetClientConfig {
    NetClientConfig {
        client_id,
        connect_timeout: Duration::from_millis(500),
        io_timeout: Duration::from_millis(500),
        call_deadline: Duration::from_secs(15),
        ..NetClientConfig::default()
    }
}

fn install_initial_map(map: &ShardMap, client_id: u64) {
    for (i, addr) in map.nodes.iter().enumerate() {
        NetClient::new(addr.clone(), coord_cfg(client_id))
            .install_map(map, i as u32)
            .expect("initial map install");
    }
}

/// Acks `keys` through the cluster router as single-key chain inserts and
/// returns them; panics on anything short of a full quorum ack.
fn ack_writes(cc: &mut ClusterClient, keys: impl Iterator<Item = Word>) -> Vec<Word> {
    let keys: Vec<Word> = keys.collect();
    for chunk in keys.chunks(8) {
        let batch: Vec<Request> = chunk
            .iter()
            .map(|&k| Request::ChainInsert { keys: vec![k] })
            .collect();
        for (k, r) in chunk.iter().zip(cc.call_many(&batch)) {
            match r {
                Ok(Response::ChainInserted { .. }) => {}
                other => panic!("key {k}: expected a cluster ack, got {other:?}"),
            }
        }
    }
    keys
}

/// Gracefully drains every node and returns the union of their dumps,
/// each filtered to the shards the final map assigns it — the moved keys
/// a donor's insert-only structures still hold are dead under the final
/// map and excluded, exactly once each.
fn drain_and_union(
    children: &mut [Child],
    dirs: &[&TempDir],
    final_map: &ShardMap,
    skip: &[usize],
) -> Vec<Word> {
    for (i, dir) in dirs.iter().enumerate() {
        if skip.contains(&i) {
            continue;
        }
        let addr = std::fs::read_to_string(dir.path().join("addr.txt"))
            .expect("addr")
            .trim()
            .to_string();
        NetClient::new(addr, coord_cfg(900 + i as u64))
            .request_shutdown()
            .expect("wire shutdown ack");
        wait_until("node to drain and exit", Duration::from_secs(30), || {
            children[i].try_wait().expect("poll node").is_some()
        });
        let status = children[i].wait().expect("reap node");
        assert!(
            status.success(),
            "node {i} must exit cleanly: {status:?}\nchild log:\n{}",
            std::fs::read_to_string(dir.path().join("child.log")).unwrap_or_default()
        );
    }
    let mut union = Vec::new();
    for (i, dir) in dirs.iter().enumerate() {
        if skip.contains(&i) {
            continue;
        }
        let node_addr = {
            let t = std::fs::read_to_string(dir.path().join("addr.txt")).expect("addr");
            t.trim().to_string()
        };
        let Some(node_idx) = final_map.nodes.iter().position(|a| *a == node_addr) else {
            continue; // drained but outside the final map: owns nothing
        };
        for k in read_dump(dir.path()) {
            let shard = final_map.shard_of_key(k);
            if final_map.owner(shard) == node_idx {
                union.push(k);
            }
        }
    }
    union.sort_unstable();
    union
}

// ------------------------------------------------------------------ cells

/// SIGKILL the *source* between extract and epoch advance. The node
/// restarts from its durable dir (keys intact, map gone); re-running the
/// same rebalance re-hands it the old map, redoes the move, and advances.
#[test]
fn sigkill_source_mid_handoff_rerun_recovers() {
    let dirs = [TempDir::new("s0"), TempDir::new("s1"), TempDir::new("s2")];
    let addrs: Vec<String> = (0..3).map(|_| reserve_addr()).collect();
    let mut children: Vec<Child> = (0..2)
        .map(|i| spawn_shard_node(dirs[i].path(), &addrs[i]))
        .collect();
    wait_until("initial nodes up", Duration::from_secs(30), || {
        (0..2).all(|i| node_ready(dirs[i].path()))
    });

    let old = ShardMap::build(addrs[..2].to_vec(), SHARDS, VNODES, 1);
    install_initial_map(&old, 10);
    let mut cc = ClusterClient::new(old.clone(), coord_cfg(11), 2);
    let mut acked = ack_writes(&mut cc, 0..64);

    // The joiner comes up; the coordinator gets as far as extracting the
    // first moved shard, then dies with its source.
    children.push(spawn_shard_node(dirs[2].path(), &addrs[2]));
    wait_until("joiner up", Duration::from_secs(30), || {
        node_ready(dirs[2].path())
    });
    let new = old.with_node_added(addrs[2].clone());
    let moved = old.moved_shards(&new);
    assert!(!moved.is_empty(), "a join must move shards");
    let (shard, from, _to) = moved[0].clone();
    {
        let mut adm = NetClient::new(from.clone(), coord_cfg(12));
        adm.freeze_shard(shard, true).expect("freeze");
        let _abandoned = adm.extract_shard(shard).expect("extract");
        // The image dies with this scope: the coordinator "crashed" after
        // extraction, before install and advance.
    }
    drop(cc);
    // Let the nodes notice the closed admin/router connections before the
    // kill, so the victim's port frees without a TIME_WAIT squat.
    std::thread::sleep(Duration::from_millis(300));

    let victim = old.nodes.iter().position(|a| *a == from).expect("source");
    let pid = children[victim].id();
    Command::new("kill")
        .args(["-9", &pid.to_string()])
        .status()
        .expect("kill source");
    children[victim].wait().expect("reap source");

    // Restart the source on the same address from the same durable dir.
    children[victim] = spawn_shard_node(dirs[victim].path(), &addrs[victim]);
    wait_until("source restart", Duration::from_secs(30), || {
        node_ready(dirs[victim].path())
    });

    // Recovery = the same rebalance again.
    let report = rebalance(&old, &new, &coord_cfg(13)).expect("re-run completes the move");
    assert_eq!(report.from_epoch, old.epoch);
    assert_eq!(report.to_epoch, new.epoch);
    assert!(report.moved.iter().any(|m| m.shard == shard));

    let mut cc2 = ClusterClient::new(new.clone(), coord_cfg(14), 2);
    acked.extend(ack_writes(&mut cc2, 1000..1032));
    drop(cc2);

    let dir_refs: Vec<&TempDir> = dirs.iter().collect();
    let union = drain_and_union(&mut children, &dir_refs, &new, &[]);
    acked.sort_unstable();
    let lost = acked.iter().filter(|k| !union.contains(k)).count();
    assert_eq!(union, acked, "post-rebalance dumps must equal the oracle");
    write_cell_report(
        "shard_sigkill_source_mid_handoff",
        &[
            ("nodes", "3".into()),
            ("killed", "\"source\"".into()),
            ("acked", acked.len().to_string()),
            ("lost_acks", lost.to_string()),
            ("moved_shards", report.moved.len().to_string()),
            ("to_epoch", report.to_epoch.to_string()),
            ("passed", "true".into()),
        ],
    );
}

/// SIGKILL the *target* right after it acked an install. It restarts with
/// the shard already durable; the re-run's install digest-skips instead of
/// double-inserting, and the epoch advances.
#[test]
fn sigkill_target_after_install_rerun_digest_skips() {
    let dirs = [TempDir::new("t0"), TempDir::new("t1"), TempDir::new("t2")];
    let addrs: Vec<String> = (0..3).map(|_| reserve_addr()).collect();
    let mut children: Vec<Child> = (0..2)
        .map(|i| spawn_shard_node(dirs[i].path(), &addrs[i]))
        .collect();
    wait_until("initial nodes up", Duration::from_secs(30), || {
        (0..2).all(|i| node_ready(dirs[i].path()))
    });

    let old = ShardMap::build(addrs[..2].to_vec(), SHARDS, VNODES, 1);
    install_initial_map(&old, 20);
    let mut cc = ClusterClient::new(old.clone(), coord_cfg(21), 2);
    let mut acked = ack_writes(&mut cc, 0..48);
    drop(cc);

    children.push(spawn_shard_node(dirs[2].path(), &addrs[2]));
    wait_until("joiner up", Duration::from_secs(30), || {
        node_ready(dirs[2].path())
    });
    let new = old.with_node_added(addrs[2].clone());
    let moved = old.moved_shards(&new);
    let with_keys = moved
        .iter()
        .find(|(s, _, _)| acked.iter().any(|&k| new.shard_of_key(k) == *s))
        .cloned();
    let (shard, from, to) = with_keys.unwrap_or_else(|| moved[0].clone());
    {
        let mut adm_src = NetClient::new(from.clone(), coord_cfg(22));
        adm_src.freeze_shard(shard, true).expect("freeze");
        let bytes = adm_src.extract_shard(shard).expect("extract");
        let mut adm_dst = NetClient::new(to.clone(), coord_cfg(23));
        adm_dst.install_shard(bytes).expect("install acked");
        // Coordinator "crashes" here — install acked, epoch never advanced.
    }
    std::thread::sleep(Duration::from_millis(300));

    let target = 2usize;
    let pid = children[target].id();
    Command::new("kill")
        .args(["-9", &pid.to_string()])
        .status()
        .expect("kill target");
    children[target].wait().expect("reap target");
    children[target] = spawn_shard_node(dirs[target].path(), &addrs[target]);
    wait_until("target restart", Duration::from_secs(30), || {
        node_ready(dirs[target].path())
    });

    // The restarted target holds the installed shard durably; the re-run
    // must digest-skip it (a partial or double install would refuse or
    // diverge the digest, and the dump audit below would catch it).
    let report = rebalance(&old, &new, &coord_cfg(24)).expect("re-run completes the move");
    assert_eq!(report.to_epoch, new.epoch);
    assert!(report.moved.iter().any(|m| m.shard == shard));

    let mut cc2 = ClusterClient::new(new.clone(), coord_cfg(25), 2);
    acked.extend(ack_writes(&mut cc2, 2000..2032));
    drop(cc2);

    let dir_refs: Vec<&TempDir> = dirs.iter().collect();
    let union = drain_and_union(&mut children, &dir_refs, &new, &[]);
    acked.sort_unstable();
    let lost = acked.iter().filter(|k| !union.contains(k)).count();
    assert_eq!(union, acked, "digest-skip must not lose or double keys");
    write_cell_report(
        "shard_sigkill_target_after_install",
        &[
            ("nodes", "3".into()),
            ("killed", "\"target\"".into()),
            ("acked", acked.len().to_string()),
            ("lost_acks", lost.to_string()),
            ("moved_shards", report.moved.len().to_string()),
            ("passed", "true".into()),
        ],
    );
}

/// Membership churn: a planned evict drains the leaver's shards to the
/// survivors, the epoch advances, and only *then* does the leaver die —
/// nothing acknowledged is lost and the thinned cluster keeps serving.
#[test]
fn evict_during_rebalance_survives_the_leavers_death() {
    let dirs = [TempDir::new("e0"), TempDir::new("e1"), TempDir::new("e2")];
    let addrs: Vec<String> = (0..3).map(|_| reserve_addr()).collect();
    let mut children: Vec<Child> = (0..3)
        .map(|i| spawn_shard_node(dirs[i].path(), &addrs[i]))
        .collect();
    wait_until("all nodes up", Duration::from_secs(30), || {
        dirs.iter().all(|d| node_ready(d.path()))
    });

    let old = ShardMap::build(addrs.clone(), SHARDS, VNODES, 1);
    install_initial_map(&old, 30);
    let mut cc = ClusterClient::new(old.clone(), coord_cfg(31), 2);
    let mut acked = ack_writes(&mut cc, 0..64);
    drop(cc);

    // Drain node 1 out of the cluster while it is still alive, then kill
    // it. Every shard it owned moves to a survivor first.
    let leaver = 1usize;
    let new = old.without_node(&addrs[leaver]);
    let report = rebalance(&old, &new, &coord_cfg(32)).expect("drain-evict completes");
    assert_eq!(report.to_epoch, new.epoch);
    assert!(
        report.moved.iter().all(|m| m.from == addrs[leaver]),
        "an evict moves only the leaver's shards: {:?}",
        report.moved
    );
    std::thread::sleep(Duration::from_millis(300));
    let pid = children[leaver].id();
    Command::new("kill")
        .args(["-9", &pid.to_string()])
        .status()
        .expect("kill leaver");
    children[leaver].wait().expect("reap leaver");

    let mut cc2 = ClusterClient::new(new.clone(), coord_cfg(33), 2);
    acked.extend(ack_writes(&mut cc2, 3000..3032));
    drop(cc2);

    let dir_refs: Vec<&TempDir> = dirs.iter().collect();
    let union = drain_and_union(&mut children, &dir_refs, &new, &[leaver]);
    acked.sort_unstable();
    let lost = acked.iter().filter(|k| !union.contains(k)).count();
    assert_eq!(union, acked, "the survivors must hold every acked key");
    write_cell_report(
        "shard_evict_during_rebalance",
        &[
            ("nodes", "3".into()),
            ("evicted", "1".into()),
            ("acked", acked.len().to_string()),
            ("lost_acks", lost.to_string()),
            ("moved_shards", report.moved.len().to_string()),
            ("passed", "true".into()),
        ],
    );
}

/// Epoch split-brain, in-process: a client still stamped with the old
/// epoch is refused typed, refreshes, and lands its write exactly once —
/// the refused attempt never half-applied.
#[test]
fn stale_epoch_client_is_refused_typed_and_retries_exactly_once() {
    let nets: Vec<NetServer> = (0..2)
        .map(|_| {
            NetServer::start(
                Server::start(small_config(None)),
                NetServerConfig::default(),
            )
            .unwrap()
        })
        .collect();
    let addrs: Vec<String> = nets.iter().map(|n| n.local_addr().to_string()).collect();
    let old = ShardMap::build(addrs.clone(), SHARDS, VNODES, 1);
    install_initial_map(&old, 40);

    // Three distinct keys sharing one shard owned by node 0 (keys are
    // hashed onto shards, so same-shard keys come from a search, not
    // arithmetic).
    let key = (0..4096)
        .find(|&k| old.owner(old.shard_of_key(k)) == 0)
        .expect("some key routes to node 0");
    let shard = old.shard_of_key(key);
    let mut siblings = (key + 1..100_000).filter(|&k| old.shard_of_key(k) == shard);
    let key2 = siblings.next().expect("a second key in the shard");
    let key3 = siblings.next().expect("a third key in the shard");
    let mut stale = NetClient::new(addrs[0].clone(), coord_cfg(41));
    stale.set_map_epoch(old.epoch);
    let r = stale.call_many_tagged(
        &[(Request::ChainInsert { keys: vec![key] }, shard)],
        old.epoch,
    );
    assert!(matches!(r[0], Ok(Response::ChainInserted { .. })));

    // The cluster moves on without telling the client: same membership,
    // next epoch.
    let mut new = old.clone();
    new.epoch += 1;
    for (i, addr) in new.nodes.iter().enumerate() {
        NetClient::new(addr.clone(), coord_cfg(42))
            .install_map(&new, i as u32)
            .expect("advance epoch");
    }

    // The stale stamp is refused typed, with both epochs attached.
    let r = stale.call_many_tagged(
        &[(Request::ChainInsert { keys: vec![key2] }, shard)],
        old.epoch,
    );
    match &r[0] {
        Err(fol_net::NetError::Serve(ServeError::WrongEpoch { got, current })) => {
            assert_eq!((*got, *current), (old.epoch, new.epoch));
        }
        other => panic!("expected a typed WrongEpoch refusal, got {other:?}"),
    }

    // Refresh and retry: the write lands exactly once.
    let fetched = stale.fetch_map().expect("fetch").expect("map installed");
    assert_eq!(fetched.epoch, new.epoch);
    stale.set_map_epoch(fetched.epoch);
    let r = stale.call_many_tagged(
        &[(Request::ChainInsert { keys: vec![key2] }, shard)],
        fetched.epoch,
    );
    assert!(matches!(r[0], Ok(Response::ChainInserted { .. })));

    // The router does the same dance automatically.
    let mut cc = ClusterClient::new(old.clone(), coord_cfg(43), 2);
    let out = cc.call_many(&[Request::ChainInsert { keys: vec![key3] }]);
    assert!(matches!(out[0], Ok(Response::ChainInserted { .. })));
    assert!(
        cc.stale_epoch_retries >= 1,
        "the router must have refreshed on the typed refusal"
    );
    assert_eq!(cc.map().epoch, new.epoch);

    // Exactly-once, audited by content: three keys, none doubled. (Chain
    // inserts allow duplicates, so a replayed refusal WOULD show up.)
    let mut audit = NetClient::new(addrs[0].clone(), coord_cfg(44));
    audit.set_map_epoch(new.epoch);
    let (digest, count) = match audit.call(Request::Digest {
        class: WorkloadClass::Chain,
    }) {
        Ok(Response::ClassDigest { digest, count }) => (digest, count),
        other => panic!("digest audit: {other:?}"),
    };
    let mut want = vec![key, key2, key3];
    want.sort_unstable();
    assert_eq!(
        (digest, count),
        (fol_serve::keys_digest(&want), want.len() as u64),
        "a refused write must never half-apply"
    );

    write_cell_report(
        "shard_epoch_split_brain",
        &[
            ("nodes", "2".into()),
            ("acked", "3".into()),
            ("lost_acks", "0".into()),
            ("stale_refusals_seen", "2".into()),
            ("passed", "true".into()),
        ],
    );
    for net in nets {
        drop(net.shutdown());
    }
}

/// In-flight retries survive a shard move: a client whose request
/// completed on the old owner retries it against the new owner — same
/// `(client_id, seq)`, still stamped with the *old* epoch — and the
/// dedupe cache shipped inside the handoff image replays the cached ack.
/// Without the shipped cache the retry would be refused `WrongEpoch`,
/// forcing a refresh-and-resubmit that re-executes an already-applied
/// chain insert (which allows duplicates, so the audit would count it
/// twice). Raw wire frames are used so the retry controls its seq.
#[test]
fn retry_after_shard_move_replays_the_cached_outcome() {
    use fol_net::wire::{frame_bytes, read_frame, ClientMsg, ServerMsg, WireOutcome};
    use std::io::Write as _;

    let nets: Vec<NetServer> = (0..2)
        .map(|_| {
            NetServer::start(
                Server::start(small_config(None)),
                NetServerConfig::default(),
            )
            .unwrap()
        })
        .collect();
    let addrs: Vec<String> = nets.iter().map(|n| n.local_addr().to_string()).collect();
    let old = ShardMap::build(addrs.clone(), SHARDS, VNODES, 1);
    install_initial_map(&old, 60);

    let key = (0..4096)
        .find(|&k| old.owner(old.shard_of_key(k)) == 0)
        .expect("some key routes to node 0");
    let shard = old.shard_of_key(key);

    let submit = |addr: &str, seq: u64, epoch: u64| -> ServerMsg {
        let mut stream = std::net::TcpStream::connect(addr).expect("connect");
        let _ = stream.set_nodelay(true);
        let msg = ClientMsg::Submit {
            client_id: 61,
            seq,
            acked_floor: 0,
            deadline_millis: None,
            shard,
            map_epoch: epoch,
            request: Request::ChainInsert { keys: vec![key] },
        };
        stream
            .write_all(&frame_bytes(&msg.encode()))
            .expect("write submit");
        let payload = read_frame(&mut stream, "test reply")
            .expect("read reply")
            .expect("reply frame");
        ServerMsg::decode(&payload).expect("decode reply")
    };

    // The request completes on the old owner under the old epoch; its
    // outcome is now in node 0's dedupe cache, stamped with the shard.
    let first = submit(&addrs[0], 0, old.epoch);
    match &first {
        ServerMsg::Result {
            seq: 0,
            outcome: WireOutcome::Ok(Response::ChainInserted { .. }),
        } => {}
        other => panic!("expected an acked insert, got {other:?}"),
    }

    // Evict node 0: every shard it owned (ours included) moves to node 1,
    // handoff images and all, and the epoch advances cluster-wide.
    let new = old.without_node(&addrs[0]);
    let report = rebalance(&old, &new, &coord_cfg(62)).expect("rebalance completes");
    assert!(report.moved.iter().any(|m| m.shard == shard));

    // The retry lands on the new owner with the OLD epoch stamp and the
    // same (client_id, seq): the shipped cache replays the identical ack.
    let retry = submit(&addrs[1], 0, old.epoch);
    assert_eq!(
        retry, first,
        "the new owner must replay the cached outcome verbatim"
    );

    // A FRESH request under the stale epoch is still refused typed — the
    // shipped cache answers retries, it does not weaken the epoch gate.
    match submit(&addrs[1], 1, old.epoch) {
        ServerMsg::Result {
            seq: 1,
            outcome: WireOutcome::Err(ServeError::WrongEpoch { got, current }),
        } => assert_eq!((got, current), (old.epoch, new.epoch)),
        other => panic!("expected a typed WrongEpoch refusal, got {other:?}"),
    }

    // Exactly-once, audited by content: the key landed once, not twice.
    let mut audit = NetClient::new(addrs[1].clone(), coord_cfg(63));
    audit.set_map_epoch(new.epoch);
    let (digest, count) = audit
        .digest(WorkloadClass::Chain)
        .expect("digest audit answers");
    assert_eq!(
        (digest, count),
        (fol_serve::keys_digest(&[key]), 1),
        "a replayed retry must never re-execute the insert"
    );

    write_cell_report(
        "shard_retry_survives_move",
        &[
            ("nodes", "2".into()),
            ("acked", "1".into()),
            ("lost_acks", "0".into()),
            ("replayed_retries", "1".into()),
            ("passed", "true".into()),
        ],
    );
    for net in nets {
        drop(net.shutdown());
    }
}

/// Observability smoke: wire `Health` reflects a completed rebalance —
/// the gainer reports the advanced epoch and its enlarged ownership, the
/// node left behind keeps the old epoch and counts the typed refusals it
/// hands out.
#[test]
fn health_reflects_a_completed_rebalance() {
    let nets: Vec<NetServer> = (0..2)
        .map(|_| {
            NetServer::start(
                Server::start(small_config(None)),
                NetServerConfig::default(),
            )
            .unwrap()
        })
        .collect();
    let addrs: Vec<String> = nets.iter().map(|n| n.local_addr().to_string()).collect();
    let old = ShardMap::build(addrs.clone(), SHARDS, VNODES, 1);
    install_initial_map(&old, 50);

    let mut cc = ClusterClient::new(old.clone(), coord_cfg(51), 2);
    ack_writes(&mut cc, 0..32);
    drop(cc);

    let stat = |addr: &str, id: u64, key: &str| -> u64 {
        NetClient::new(addr.to_string(), coord_cfg(id))
            .health()
            .expect("health")
            .into_iter()
            .find(|(k, _)| k == key)
            .unwrap_or_else(|| panic!("health must carry {key}"))
            .1
    };
    let owned_before_0 = stat(&addrs[0], 52, "shards_owned");
    assert_eq!(stat(&addrs[0], 52, "shard_epoch"), old.epoch);
    assert!(owned_before_0 < SHARDS as u64, "two nodes split the shards");

    // Drain node 1 out entirely: node 0 gains everything.
    let new = old.without_node(&addrs[1]);
    let report = rebalance(&old, &new, &coord_cfg(53)).expect("rebalance completes");
    assert!(!report.moved.is_empty());

    assert_eq!(stat(&addrs[0], 54, "shard_epoch"), new.epoch);
    assert_eq!(stat(&addrs[0], 54, "shards_owned"), SHARDS as u64);
    assert_eq!(stat(&addrs[0], 54, "handoffs_in_flight"), 0);
    assert_eq!(stat(&addrs[0], 54, "handoffs_out_flight"), 0);

    // The node outside the new map still serves the old epoch and refuses
    // new-epoch traffic typed — and counts it.
    let refusals_before = stat(&addrs[1], 55, "stale_epoch_refusals");
    let mut wrong = NetClient::new(addrs[1].clone(), coord_cfg(56));
    let r = wrong.call_many_tagged(
        &[(Request::ChainInsert { keys: vec![7] }, new.shard_of_key(7))],
        new.epoch,
    );
    assert!(
        matches!(
            r[0],
            Err(fol_net::NetError::Serve(ServeError::WrongEpoch { .. }))
        ),
        "got {:?}",
        r[0]
    );
    assert_eq!(
        stat(&addrs[1], 57, "stale_epoch_refusals"),
        refusals_before + 1,
        "the refusal must be counted in Health"
    );

    write_cell_report(
        "shard_health_after_rebalance",
        &[
            ("nodes", "2".into()),
            ("to_epoch", new.epoch.to_string()),
            ("moved_shards", report.moved.len().to_string()),
            ("lost_acks", "0".into()),
            ("passed", "true".into()),
        ],
    );
    for net in nets {
        drop(net.shutdown());
    }
}
